#!/usr/bin/env bash
# Checks that every relative markdown link in README.md and docs/*.md
# points at a file or directory that exists in the repo. No network, no
# dependencies beyond grep/sed — external (http/https/mailto) links and
# pure #anchors are skipped. Run from anywhere; paths resolve against the
# repo root (the script's parent directory).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
checked=0

for file in "$root"/README.md "$root"/docs/*.md; do
    [ -f "$file" ] || continue
    dir="$(dirname "$file")"
    # Extract the (target) of every [text](target) markdown link.
    # grep -o keeps one match per output line even with several per line.
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        # Strip a trailing #anchor, if any.
        path="${target%%#*}"
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $file -> $target" >&2
            fail=1
        fi
    done < <(grep -o ']([^)]*)' "$file" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "doc link check failed" >&2
    exit 1
fi
echo "doc link check ok ($checked relative links resolve)"
