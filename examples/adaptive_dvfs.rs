//! Application-driven DVFS, end to end: profile a workload on the plain
//! GALS machine, let the [`DvfsAdvisor`] propose per-domain slowdowns from
//! the profile, then measure the planned machine — the workflow the paper
//! sketches as future work ("application-driven, multiple-domain dynamic
//! clock/voltage scaling").
//!
//! ```sh
//! cargo run --release --example adaptive_dvfs [benchmark]
//! ```

use gals::clocks::Domain;
use gals::core::{simulate, DomainUtilisation, DvfsAdvisor, ProcessorConfig, SimLimits};
use gals::workload::{generate, Benchmark};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or(Benchmark::Gcc);

    let program = generate(bench, 42);
    let limits = SimLimits::insts(60_000);

    // 1. Reference + profiling runs.
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), limits).expect("simulation failed");
    let profile =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(7), limits).expect("simulation failed");

    println!("profiling {bench} on the plain GALS machine:");
    println!();
    let util = DomainUtilisation::from_report(&profile);
    for d in Domain::ALL {
        let bar_len = (util.of(d) * 40.0).round() as usize;
        println!(
            "  {:<8} {:>5.1}%  {}",
            d.to_string(),
            100.0 * util.of(d),
            "#".repeat(bar_len)
        );
    }

    // 2. Plan.
    let plan = DvfsAdvisor::new().recommend(&profile);
    println!();
    println!("advisor plan (slowdown factor, voltage tracking):");
    for d in Domain::ALL {
        let s = plan.slowdown[d.index()];
        if s > 1.0 {
            println!(
                "  {:<8} {:>4.1}x slower, supply {:.2} V -> energy x{:.2}",
                d.to_string(),
                s,
                plan.tech.vdd_for_slowdown(s),
                plan.energy_factor(d)
            );
        }
    }
    if !plan.is_active() {
        println!("  (no domain idle enough — run at nominal)");
    }

    // 3. Measure the planned machine.
    let planned_cfg = ProcessorConfig::gals_equal_1ghz(7).with_dvfs(plan);
    let planned = simulate(&program, planned_cfg, limits).expect("simulation failed");

    println!();
    println!(
        "{:<24} {:>12} {:>10} {:>10}",
        "machine", "performance", "energy", "power"
    );
    for (label, r) in [
        ("gals (equal clocks)", &profile),
        ("gals + advisor plan", &planned),
    ] {
        println!(
            "{:<24} {:>11.1}% {:>10.3} {:>10.3}",
            label,
            100.0 * r.relative_performance(&base),
            r.relative_energy(&base),
            r.relative_power(&base)
        );
    }
    println!();
    println!("full report of the planned machine:");
    println!("{}", planned.summary());
}
