//! Application-driven DVFS exploration: find which clock domain a given
//! benchmark can afford to slow down, the way the paper's section 5.2
//! experiments do for perl/ijpeg/gcc.
//!
//! For each domain in turn, slow it 2x with voltage tracking and measure
//! the performance/energy trade against the synchronous base machine, then
//! report the best energy-per-performance knob.
//!
//! ```sh
//! cargo run --release --example dvfs_explorer [benchmark]
//! ```

use gals::clocks::Domain;
use gals::core::{simulate, DvfsPlan, ProcessorConfig, SimLimits};
use gals::workload::{generate, Benchmark};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "perl".to_string());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}; using perl");
            Benchmark::Perl
        });

    let program = generate(bench, 42);
    let limits = SimLimits::insts(60_000);
    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), limits).expect("simulation failed");
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(7), limits).expect("simulation failed");

    println!("DVFS explorer: {bench}");
    println!();
    println!(
        "{:<22} {:>12} {:>10} {:>10}",
        "configuration", "performance", "energy", "power"
    );
    println!(
        "{:<22} {:>11.1}% {:>10.3} {:>10.3}",
        "gals (equal clocks)",
        100.0 * gals.relative_performance(&base),
        gals.relative_energy(&base),
        gals.relative_power(&base)
    );

    let mut best: Option<(Domain, f64, f64)> = None;
    for domain in Domain::ALL {
        let plan = DvfsPlan::nominal().with_slowdown(domain, 2.0);
        let cfg = ProcessorConfig::gals_equal_1ghz(7).with_dvfs(plan);
        let r = simulate(&program, cfg, limits).expect("simulation failed");
        let perf = r.relative_performance(&base);
        let energy = r.relative_energy(&base);
        println!(
            "{:<22} {:>11.1}% {:>10.3} {:>10.3}",
            format!("gals + {domain} / 2"),
            100.0 * perf,
            energy,
            r.relative_power(&base)
        );
        // Best knob: most energy saved per point of performance lost,
        // relative to the plain GALS machine.
        let d_perf = (gals.relative_performance(&base) - perf).max(1e-3);
        let d_energy = gals.relative_energy(&base) - energy;
        let score = d_energy / d_perf;
        if best.map(|(_, s, _)| score > s).unwrap_or(true) {
            best = Some((domain, score, energy));
        }
    }

    let (domain, _, energy) = best.expect("five domains evaluated");
    println!();
    println!(
        "best knob for {bench}: slow the {domain} domain (energy {energy:.3} of base) — \
         \"the extent of the tradeoff we can achieve by slowing down various clock \
         domains is dictated by the nature of the application\"."
    );
}
