//! Inspect a synthetic workload: dynamic instruction mix, branch
//! behaviour and memory locality of the generated benchmark stand-ins,
//! next to the profile targets they were synthesised from.
//!
//! ```sh
//! cargo run --release --example workload_inspector [n_insts]
//! ```

use gals::isa::{DynStream, OpClass};
use gals::workload::{generate, Benchmark};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    println!("dynamic mix over the first {n} instructions of each workload");
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "bench", "branch%", "load%", "store%", "fp%", "other%", "tgt br%", "tgt mem%"
    );
    for bench in Benchmark::ALL {
        let program = generate(bench, 42);
        let mut counts = [0u64; 5]; // branch, load, store, fp, other
        for d in DynStream::new(&program).take(n) {
            let slot = match d.op {
                op if op.is_branch() => 0,
                OpClass::Load => 1,
                OpClass::Store => 2,
                op if op.is_fp() => 3,
                _ => 4,
            };
            counts[slot] += 1;
        }
        let total = counts.iter().sum::<u64>() as f64;
        let pct = |c: u64| 100.0 * c as f64 / total;
        let p = bench.profile();
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}% {:>9.1}%",
            bench.name(),
            pct(counts[0]),
            pct(counts[1]),
            pct(counts[2]),
            pct(counts[3]),
            pct(counts[4]),
            100.0 * p.frac_branch,
            100.0 * p.frac_mem(),
        );
    }
    println!();
    println!("the characteristics the paper leans on are visible directly:");
    println!("fpppp's ~1.5% branch density, perl/gcc's token FP, ijpeg's thin");
    println!("memory traffic. See DESIGN.md section 2 for the substitution");
    println!("argument replacing SPEC95/MediaBench binaries with these profiles.");
}
