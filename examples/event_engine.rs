//! The paper's Figure 4: three free-running clocks with periods 2 ns, 3 ns
//! and 2.5 ns on the general-purpose event-driven engine, printing each
//! rising edge in global time order.
//!
//! ```sh
//! cargo run --release --example event_engine
//! ```

use gals::events::{Control, Engine, Time};

#[derive(Default)]
struct EdgeLog(Vec<(u8, Time)>);

fn main() {
    let mut engine: Engine<EdgeLog> = Engine::new();

    // add_event(start, &clockN_logic, NULL, period) in the paper's C code.
    let clocks = [
        (1u8, Time::from_ps(500), Time::from_ns(2)),
        (2u8, Time::from_ns(1), Time::from_ns(3)),
        (3u8, Time::ZERO, Time::from_ps(2_500)),
    ];
    for (id, start, period) in clocks {
        engine.schedule_periodic(start, period, i32::from(id), move |log: &mut EdgeLog, e| {
            log.0.push((id, e.now()));
            Control::Keep
        });
    }

    // process_event_queue(), bounded at 8 ns like the figure's time axis.
    let mut log = EdgeLog::default();
    engine.run_until(&mut log, Time::from_ns(8));

    println!("Figure 4: event-driven simulation of three clock domains");
    println!();
    println!("{:>10}   clock 1   clock 2   clock 3", "time");
    for (id, t) in &log.0 {
        let col = match id {
            1 => "    |",
            2 => "              |",
            _ => "                        |",
        };
        println!("{:>10} {col}", format!("{t}"));
    }
    println!();
    println!(
        "{} edges processed in time order by one queue — the infrastructure that \
         lets the same simulator drive one global clock or five local ones.",
        log.0.len()
    );
}
