//! Quickstart: run one benchmark on both processor models and print the
//! paper's headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gals::core::{simulate, ProcessorConfig, SimLimits};
use gals::workload::{generate, Benchmark};

fn main() {
    let bench = Benchmark::Gcc;
    let program = generate(bench, 42);
    let limits = SimLimits::insts(60_000);

    println!(
        "workload: {bench} ({} static instructions)",
        program.static_inst_count()
    );

    let base =
        simulate(&program, ProcessorConfig::synchronous_1ghz(), limits).expect("simulation failed");
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(7), limits).expect("simulation failed");

    println!();
    println!("{:<28} {:>14} {:>14}", "", "synchronous", "GALS");
    println!(
        "{:<28} {:>14.3} {:>14.3}",
        "throughput (insts/ns)",
        base.insts_per_ns(),
        gals.insts_per_ns()
    );
    println!(
        "{:<28} {:>14.2} {:>14.2}",
        "mean slip (ns)",
        base.mean_slip().as_ns_f64(),
        gals.mean_slip().as_ns_f64()
    );
    println!(
        "{:<28} {:>13.1}% {:>13.1}%",
        "mis-speculated insts",
        100.0 * base.misspeculation_rate(),
        100.0 * gals.misspeculation_rate()
    );
    println!(
        "{:<28} {:>14.0} {:>14.0}",
        "total energy (EU)",
        base.total_energy(),
        gals.total_energy()
    );

    println!();
    println!(
        "GALS relative performance: {:.1}%   energy: {:.3}   power: {:.3}",
        100.0 * gals.relative_performance(&base),
        gals.relative_energy(&base),
        gals.relative_power(&base),
    );
    println!();
    println!("the paper's conclusion: removing the global clock is not in itself a");
    println!("solution for low power — the win comes from per-domain voltage scaling");
    println!("(see examples/dvfs_explorer.rs).");
}
