//! The paper's Table 1: trends in global clock skew across process
//! generations, plus the derived skew-budget fractions its argument relies
//! on.
//!
//! This is literature data (Alpha 21064/21164/21264 and Itanium clocking
//! papers), not simulation output; it motivates GALS design by showing skew
//! approaching 10 % of cycle time without active deskewing.

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewCaseStudy {
    /// Design name.
    pub design: &'static str,
    /// Process technology in micrometres.
    pub technology_um: f64,
    /// Market-entry year.
    pub year: u16,
    /// Device count in millions.
    pub devices_m: f64,
    /// Cycle time in picoseconds.
    pub cycle_ps: f64,
    /// Global clock skew in picoseconds.
    pub skew_ps: f64,
    /// The paper's remarks column.
    pub remarks: &'static str,
}

impl SkewCaseStudy {
    /// Skew as a fraction of the cycle time.
    pub fn skew_fraction(&self) -> f64 {
        self.skew_ps / self.cycle_ps
    }
}

/// The five rows of the paper's Table 1.
pub const TABLE1: [SkewCaseStudy; 5] = [
    SkewCaseStudy {
        design: "Alpha 21064",
        technology_um: 0.8,
        year: 1992,
        devices_m: 1.6,
        cycle_ps: 5_000.0,
        skew_ps: 200.0,
        remarks: "Single line of drivers for clock grid",
    },
    SkewCaseStudy {
        design: "Alpha 21164",
        technology_um: 0.5,
        year: 1995,
        devices_m: 9.3,
        cycle_ps: 3_300.0,
        skew_ps: 80.0,
        remarks: "Two lines of drivers for clock grid",
    },
    SkewCaseStudy {
        design: "Alpha 21264",
        technology_um: 0.35,
        year: 1998,
        devices_m: 15.2,
        cycle_ps: 1_700.0,
        skew_ps: 65.0,
        remarks: "16 distributed lines of drivers",
    },
    SkewCaseStudy {
        design: "Itanium (with active deskewing)",
        technology_um: 0.18,
        year: 2001,
        devices_m: 25.4,
        cycle_ps: 1_250.0,
        skew_ps: 28.0,
        remarks: "32 active deskewing circuits",
    },
    SkewCaseStudy {
        design: "Itanium (without active deskewing)",
        technology_um: 0.18,
        year: 2001,
        devices_m: 25.4,
        cycle_ps: 1_250.0,
        skew_ps: 110.0,
        remarks: "Projected skew without deskewing",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_designs() {
        assert_eq!(TABLE1.len(), 5);
        assert_eq!(TABLE1[0].design, "Alpha 21064");
    }

    #[test]
    fn itanium_without_deskew_approaches_ten_percent() {
        // The paper: "This skew is almost 10% of the total cycle time."
        let row = &TABLE1[4];
        let f = row.skew_fraction();
        assert!((0.08..0.10).contains(&f), "skew fraction {f}");
    }

    #[test]
    fn deskewing_cuts_skew_about_4x() {
        let with = TABLE1[3].skew_ps;
        let without = TABLE1[4].skew_ps;
        assert!(without / with > 3.5);
    }

    #[test]
    fn device_counts_grow_monotonically() {
        for w in TABLE1.windows(2) {
            assert!(w[1].devices_m >= w[0].devices_m);
            assert!(w[1].cycle_ps <= w[0].cycle_ps);
        }
    }
}
