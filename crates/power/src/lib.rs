//! # gals-power
//!
//! Architectural power modelling for the GALS reproduction, in the style of
//! Wattch (Brooks, Tiwari & Martonosi, ISCA 2000) as used by the paper:
//! per-macro-block switching energies with conditional clocking (idle
//! blocks draw 10 % of active power), explicit clock-grid capacitances
//! (one global grid + five local grids for the base machine, local grids
//! only for GALS), per-transfer FIFO energy, and per-domain dynamic-energy
//! scaling for multiple-voltage experiments.
//!
//! Energies are in relative units calibrated to the budget ratios the
//! paper's conclusions depend on — see [`EnergyParams`] and DESIGN.md §5.
//!
//! The crate also carries the paper's Table 1 clock-skew case study as a
//! dataset ([`skew::TABLE1`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accountant;
mod blocks;
mod params;
pub mod skew;

pub use accountant::{EnergyBreakdown, PowerAccountant};
pub use blocks::MacroBlock;
pub use params::EnergyParams;
