//! Energy parameters: per-block active-cycle energies and clock-grid
//! capacitances, in relative *energy units* (EU).
//!
//! Absolute calibration is impossible without the authors' 0.35/0.13 µm
//! capacitance extractions, so the parameter set encodes the *relative*
//! budgets that the paper's conclusions rest on (DESIGN.md §2 and §5):
//!
//! * total clock power ≈ 30–40 % of chip power when active (Wattch-era
//!   processors; the 21264 clock network was ≈ 32 %);
//! * the global grid is a large fraction of that (the global grid plus its
//!   drivers ≈ 40 % of clock power) — this is what GALS eliminates;
//! * idle (clock-gated) blocks draw 10 % of their active power (the paper's
//!   explicit modelling assumption);
//! * mixed-clock FIFOs cost energy per transfer, "modeled [as] power
//!   consumed by the FIFOs used for communication between domains".

use gals_clocks::Domain;

use crate::blocks::MacroBlock;

/// Relative per-cycle/per-access energies. See the module docs for the
/// calibration rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Energy per *active* local cycle of each macro block (EU), indexed by
    /// [`MacroBlock::index`].
    pub block_active: [f64; MacroBlock::ALL.len()],
    /// Fraction of active energy drawn by an idle (clock-gated) block.
    pub idle_fraction: f64,
    /// Energy per cycle of the global clock grid (base processor only).
    pub global_grid: f64,
    /// Energy per local cycle of each domain's clock grid, indexed by
    /// [`Domain::index`]. Present in both machines ("we … retained the five
    /// major clock grids").
    pub local_grid: [f64; 5],
    /// Energy per FIFO push or pop (GALS only), accounted to
    /// [`MacroBlock::Fifos`].
    pub fifo_access: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        let mut block_active = [0.0; MacroBlock::ALL.len()];
        // Non-clock active budget: 65 EU per fully active cycle.
        block_active[MacroBlock::ICache.index()] = 8.0;
        block_active[MacroBlock::BranchPredictor.index()] = 3.0;
        block_active[MacroBlock::RenameLogic.index()] = 6.0;
        block_active[MacroBlock::RegisterFile.index()] = 9.0;
        block_active[MacroBlock::IntIssueWindow.index()] = 7.0;
        block_active[MacroBlock::FpIssueWindow.index()] = 5.0;
        block_active[MacroBlock::MemIssueWindow.index()] = 5.0;
        block_active[MacroBlock::IntAlus.index()] = 6.0;
        block_active[MacroBlock::FpAlus.index()] = 4.0;
        block_active[MacroBlock::DCache.index()] = 8.0;
        block_active[MacroBlock::L2Cache.index()] = 4.0;
        // Fifos have no per-cycle cost; they are charged per access.
        block_active[MacroBlock::Fifos.index()] = 0.0;
        EnergyParams {
            block_active,
            idle_fraction: 0.10,
            // Clock budget: 35 EU per cycle, split 14 global / 21 local
            // (global ≈ 40 % of clock power).
            global_grid: 14.0,
            local_grid: [4.0, 4.5, 5.0, 3.5, 4.0],
            fifo_access: 0.55,
        }
    }
}

impl EnergyParams {
    /// Active energy of one block (EU per local cycle).
    #[inline]
    pub fn active(&self, block: MacroBlock) -> f64 {
        self.block_active[block.index()]
    }

    /// Idle energy of one block (EU per local cycle).
    #[inline]
    pub fn idle(&self, block: MacroBlock) -> f64 {
        self.active(block) * self.idle_fraction
    }

    /// Local grid energy of one domain (EU per local cycle).
    #[inline]
    pub fn grid(&self, domain: Domain) -> f64 {
        self.local_grid[domain.index()]
    }

    /// Sum of all local grids (EU per cycle, equal frequencies assumed).
    pub fn local_grid_total(&self) -> f64 {
        self.local_grid.iter().sum()
    }

    /// Peak per-cycle energy of the base machine: every block active plus
    /// global and local grids.
    pub fn peak_cycle_energy_base(&self) -> f64 {
        self.block_active.iter().sum::<f64>() + self.global_grid + self.local_grid_total()
    }

    /// Fraction of peak per-cycle energy spent in clocks (base machine).
    pub fn clock_fraction_base(&self) -> f64 {
        (self.global_grid + self.local_grid_total()) / self.peak_cycle_energy_base()
    }

    /// Fraction of clock energy in the global grid.
    pub fn global_grid_fraction_of_clock(&self) -> f64 {
        self.global_grid / (self.global_grid + self.local_grid_total())
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (negative energies
    /// or an idle fraction outside `[0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.idle_fraction) {
            return Err(format!(
                "idle fraction {} outside [0,1]",
                self.idle_fraction
            ));
        }
        if self.block_active.iter().any(|&e| !e.is_finite() || e < 0.0) {
            return Err("negative or non-finite block energy".into());
        }
        if self.global_grid < 0.0 || self.local_grid.iter().any(|&e| e < 0.0) {
            return Err("negative grid energy".into());
        }
        if self.fifo_access < 0.0 || !self.fifo_access.is_finite() {
            return Err("negative FIFO energy".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hits_calibration_targets() {
        let p = EnergyParams::default();
        p.validate().unwrap();
        let clock_frac = p.clock_fraction_base();
        assert!(
            (0.30..=0.40).contains(&clock_frac),
            "clock fraction {clock_frac} outside the 30-40% target"
        );
        let global_frac = p.global_grid_fraction_of_clock();
        assert!(
            (0.35..=0.45).contains(&global_frac),
            "global grid fraction of clock {global_frac} outside target"
        );
        assert_eq!(p.idle_fraction, 0.10);
    }

    #[test]
    fn idle_is_ten_percent_of_active() {
        let p = EnergyParams::default();
        for b in MacroBlock::ALL {
            assert!((p.idle(b) - 0.1 * p.active(b)).abs() < 1e-12);
        }
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one knob at a time is the point
    fn validation_catches_bad_values() {
        let mut p = EnergyParams::default();
        p.idle_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = EnergyParams::default();
        p.global_grid = -1.0;
        assert!(p.validate().is_err());
        let mut p = EnergyParams::default();
        p.block_active[0] = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn grid_lookup_by_domain() {
        let p = EnergyParams::default();
        assert_eq!(p.grid(Domain::Fetch), 4.0);
        assert_eq!(p.grid(Domain::IntCluster), 5.0);
        assert!((p.local_grid_total() - 21.0).abs() < 1e-12);
    }
}
