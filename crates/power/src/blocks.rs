//! The macro blocks of the paper's Figure 10 energy breakdown.

use std::fmt;

use gals_clocks::Domain;

/// A power-modelled macro block (the paper's Figure 10 legend, minus the
/// clock grids which are accounted separately, plus the inter-domain FIFOs
/// present only in the GALS machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MacroBlock {
    /// L1 instruction cache.
    ICache,
    /// Branch predictor (PHT + BTB + RAS).
    BranchPredictor,
    /// Decode + rename logic (alias tables, free lists).
    RenameLogic,
    /// Architectural/physical register files (int + fp).
    RegisterFile,
    /// Integer issue window (CAM + payload RAM).
    IntIssueWindow,
    /// FP issue window.
    FpIssueWindow,
    /// Memory issue window.
    MemIssueWindow,
    /// Integer ALUs.
    IntAlus,
    /// FP ALUs.
    FpAlus,
    /// L1 data cache.
    DCache,
    /// Unified L2 cache.
    L2Cache,
    /// Mixed-clock FIFOs (zero in the synchronous baseline).
    Fifos,
}

impl MacroBlock {
    /// All blocks in breakdown-report order.
    pub const ALL: [MacroBlock; 12] = [
        MacroBlock::ICache,
        MacroBlock::BranchPredictor,
        MacroBlock::RenameLogic,
        MacroBlock::RegisterFile,
        MacroBlock::IntIssueWindow,
        MacroBlock::FpIssueWindow,
        MacroBlock::MemIssueWindow,
        MacroBlock::IntAlus,
        MacroBlock::FpAlus,
        MacroBlock::DCache,
        MacroBlock::L2Cache,
        MacroBlock::Fifos,
    ];

    /// Dense index for table storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MacroBlock::ICache => 0,
            MacroBlock::BranchPredictor => 1,
            MacroBlock::RenameLogic => 2,
            MacroBlock::RegisterFile => 3,
            MacroBlock::IntIssueWindow => 4,
            MacroBlock::FpIssueWindow => 5,
            MacroBlock::MemIssueWindow => 6,
            MacroBlock::IntAlus => 7,
            MacroBlock::FpAlus => 8,
            MacroBlock::DCache => 9,
            MacroBlock::L2Cache => 10,
            MacroBlock::Fifos => 11,
        }
    }

    /// The clock domain that clocks this block in the GALS machine
    /// (Figure 3b). FIFOs straddle two domains; they are conventionally
    /// attributed to the consumer side and returned as their own domain
    /// here (`Decode`, the most connected domain).
    pub fn domain(self) -> Domain {
        match self {
            MacroBlock::ICache | MacroBlock::BranchPredictor => Domain::Fetch,
            MacroBlock::RenameLogic | MacroBlock::RegisterFile => Domain::Decode,
            MacroBlock::IntIssueWindow | MacroBlock::IntAlus => Domain::IntCluster,
            MacroBlock::FpIssueWindow | MacroBlock::FpAlus => Domain::FpCluster,
            MacroBlock::MemIssueWindow | MacroBlock::DCache | MacroBlock::L2Cache => {
                Domain::MemCluster
            }
            MacroBlock::Fifos => Domain::Decode,
        }
    }
}

impl fmt::Display for MacroBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MacroBlock::ICache => "I-cache",
            MacroBlock::BranchPredictor => "Branch predictor",
            MacroBlock::RenameLogic => "Rename logic",
            MacroBlock::RegisterFile => "Register file",
            MacroBlock::IntIssueWindow => "Integer issue window",
            MacroBlock::FpIssueWindow => "FP issue window",
            MacroBlock::MemIssueWindow => "Memory issue window",
            MacroBlock::IntAlus => "Integer ALUs",
            MacroBlock::FpAlus => "FP ALUs",
            MacroBlock::DCache => "D-cache",
            MacroBlock::L2Cache => "L2 cache",
            MacroBlock::Fifos => "FIFOs",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; MacroBlock::ALL.len()];
        for b in MacroBlock::ALL {
            assert!(!seen[b.index()], "duplicate index for {b}");
            seen[b.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn domains_follow_figure_3b() {
        assert_eq!(MacroBlock::ICache.domain(), Domain::Fetch);
        assert_eq!(MacroBlock::RegisterFile.domain(), Domain::Decode);
        assert_eq!(MacroBlock::IntAlus.domain(), Domain::IntCluster);
        assert_eq!(MacroBlock::FpIssueWindow.domain(), Domain::FpCluster);
        assert_eq!(MacroBlock::L2Cache.domain(), Domain::MemCluster);
    }
}
