//! The power accountant: turns per-cycle activity into energy, with
//! per-domain voltage scaling and a Figure 10-style breakdown.

use gals_clocks::Domain;
use gals_events::Time;

use crate::blocks::MacroBlock;
use crate::params::EnergyParams;

/// Energy totals of one simulation, in relative energy units (EU).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Per-block energy, indexed by [`MacroBlock::index`].
    pub blocks: [f64; MacroBlock::ALL.len()],
    /// Global clock grid energy (zero for GALS).
    pub global_clock: f64,
    /// Per-domain local grid energy, indexed by [`Domain::index`].
    pub local_clocks: [f64; 5],
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.blocks.iter().sum::<f64>() + self.global_clock + self.local_clocks.iter().sum::<f64>()
    }

    /// Total clock (grid) energy.
    pub fn clock_total(&self) -> f64 {
        self.global_clock + self.local_clocks.iter().sum::<f64>()
    }

    /// Energy of one block.
    pub fn block(&self, block: MacroBlock) -> f64 {
        self.blocks[block.index()]
    }

    /// Average power over a run of length `elapsed` (EU per second).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn average_power(&self, elapsed: Time) -> f64 {
        assert!(elapsed > Time::ZERO, "cannot compute power over zero time");
        self.total() / elapsed.as_secs_f64()
    }
}

/// Accumulates energy as the pipeline simulation reports activity.
///
/// The owning simulator calls, per local clock edge of each domain:
/// 1. [`PowerAccountant::tick_domain`] — charges that domain's clock grid;
/// 2. [`PowerAccountant::block_cycle`] for each block in the domain —
///    charges active or idle (10 %) energy;
/// 3. [`PowerAccountant::fifo_access`] for each FIFO push/pop.
///
/// The base machine additionally calls [`PowerAccountant::tick_global`]
/// every cycle; the GALS machine never does ("since there is no global
/// clock, we eliminated the switching capacitance of the global clock
/// grid").
///
/// Internally the accountant stores exact integer *cycle counts* and
/// defers the energy arithmetic to [`PowerAccountant::breakdown`]: the
/// per-tick charge is a counter increment, not a float multiply-add, and
/// bulk charges (`*_n` methods — e.g. the idle-tick back-fill of a parked
/// clock domain) are a single addition that yields bit-identical totals to
/// the same cycles charged one at a time. Voltage factors must therefore
/// be configured before simulation starts, as the pipeline does.
///
/// # Examples
///
/// ```
/// use gals_power::{PowerAccountant, EnergyParams, MacroBlock};
/// use gals_clocks::Domain;
///
/// let mut acc = PowerAccountant::new(EnergyParams::default());
/// acc.tick_global();
/// acc.tick_domain(Domain::Fetch);
/// acc.block_cycle(MacroBlock::ICache, true);
/// acc.block_cycle(MacroBlock::BranchPredictor, false); // idle: 10%
/// let e = acc.breakdown();
/// assert!(e.global_clock > 0.0);
/// assert!(e.block(MacroBlock::ICache) > e.block(MacroBlock::BranchPredictor));
/// ```
#[derive(Debug, Clone)]
pub struct PowerAccountant {
    params: EnergyParams,
    /// Dynamic-energy multiplier per domain ((V/Vnom)², 1.0 at nominal).
    domain_factor: [f64; 5],
    /// Multiplier for the global grid (base machine's single supply).
    global_factor: f64,
    /// `(active, idle)` cycle counts per block.
    block_cycles: [(u64, u64); MacroBlock::ALL.len()],
    /// Stretched nominal-cycle equivalents per domain (pausible clocking).
    stretched_cycles: [f64; 5],
    /// Cycle counters per domain.
    domain_cycles: [u64; 5],
    global_cycles: u64,
    fifo_accesses: u64,
}

impl PowerAccountant {
    /// Creates an accountant with all voltage factors at nominal.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation.
    pub fn new(params: EnergyParams) -> Self {
        params.validate().expect("invalid energy parameters");
        PowerAccountant {
            params,
            domain_factor: [1.0; 5],
            global_factor: 1.0,
            block_cycles: [(0, 0); MacroBlock::ALL.len()],
            stretched_cycles: [0.0; 5],
            domain_cycles: [0; 5],
            global_cycles: 0,
            fifo_accesses: 0,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Sets the dynamic-energy multiplier of one domain — `(V/Vnom)²` from
    /// [`gals_clocks::VoltageScaling::energy_factor_for_slowdown`]. Must be
    /// configured before activity is charged (factors apply to the whole
    /// run at [`PowerAccountant::breakdown`]).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`-ish sane range `(0, 4)`.
    pub fn set_domain_voltage_factor(&mut self, domain: Domain, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0 && factor < 4.0,
            "implausible voltage energy factor {factor}"
        );
        self.domain_factor[domain.index()] = factor;
    }

    /// Sets the global (base machine) voltage factor.
    pub fn set_global_voltage_factor(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0 && factor < 4.0);
        self.global_factor = factor;
        self.domain_factor = [factor; 5];
    }

    /// Charges one cycle of the global clock grid.
    #[inline]
    pub fn tick_global(&mut self) {
        self.global_cycles += 1;
    }

    /// Charges `n` cycles of the global clock grid at once.
    #[inline]
    pub fn tick_global_n(&mut self, n: u64) {
        self.global_cycles += n;
    }

    /// Charges one cycle of a domain's local clock grid.
    #[inline]
    pub fn tick_domain(&mut self, domain: Domain) {
        self.domain_cycles[domain.index()] += 1;
    }

    /// Charges `n` cycles of a domain's local clock grid at once.
    #[inline]
    pub fn tick_domain_n(&mut self, domain: Domain, n: u64) {
        self.domain_cycles[domain.index()] += n;
    }

    /// Charges one local cycle of a block: full energy when `active`, the
    /// idle fraction otherwise (Wattch-style conditional clocking, the
    /// paper's "unused modules … consuming 10 % of their full power").
    #[inline]
    pub fn block_cycle(&mut self, block: MacroBlock, active: bool) {
        let slot = &mut self.block_cycles[block.index()];
        if active {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }

    /// Charges `n` local cycles of a block at once, all active or all idle
    /// — bit-identical to `n` individual [`PowerAccountant::block_cycle`]
    /// calls (the counts are exact integers).
    #[inline]
    pub fn block_cycles_n(&mut self, block: MacroBlock, active: bool, n: u64) {
        let slot = &mut self.block_cycles[block.index()];
        if active {
            slot.0 += n;
        } else {
            slot.1 += n;
        }
    }

    /// Charges `extra_cycles` nominal-cycle equivalents of one domain's
    /// local clock grid. A pausible clock that stretches its phase keeps
    /// its local tree driven over the *effective* (stretched) period, so
    /// stretch time burns grid energy exactly as ordinary cycles do —
    /// pro-rated here in units of the nominal period.
    ///
    /// # Panics
    ///
    /// Panics if `extra_cycles` is negative or not finite.
    pub fn stretched_clock(&mut self, domain: Domain, extra_cycles: f64) {
        assert!(
            extra_cycles.is_finite() && extra_cycles >= 0.0,
            "implausible stretched-cycle count {extra_cycles}"
        );
        self.stretched_cycles[domain.index()] += extra_cycles;
    }

    /// Charges `count` FIFO push/pop operations.
    pub fn fifo_access(&mut self, count: u64) {
        self.fifo_accesses += count;
    }

    /// Cycles charged so far per domain.
    pub fn domain_cycles(&self) -> [u64; 5] {
        self.domain_cycles
    }

    /// Global clock cycles charged.
    pub fn global_cycles(&self) -> u64 {
        self.global_cycles
    }

    /// FIFO accesses charged.
    pub fn fifo_accesses(&self) -> u64 {
        self.fifo_accesses
    }

    /// The accumulated energy breakdown, computed from the exact cycle
    /// counts: `active·E_active + idle·E_idle` per block, `cycles·E_grid`
    /// per clock grid (the paper's Wattch-style model), voltage factors
    /// applied per domain. FIFOs straddle domains and charge at the
    /// nominal supply (level converters isolate them from scaled domains).
    pub fn breakdown(&self) -> EnergyBreakdown {
        let mut blocks = [0.0; MacroBlock::ALL.len()];
        for b in MacroBlock::ALL {
            let (active, idle) = self.block_cycles[b.index()];
            let factor = self.domain_factor[b.domain().index()];
            blocks[b.index()] = (active as f64 * self.params.active(b)
                + idle as f64 * self.params.idle(b))
                * factor;
        }
        blocks[MacroBlock::Fifos.index()] += self.params.fifo_access * self.fifo_accesses as f64;
        let local_clocks = std::array::from_fn(|i| {
            let d = Domain::ALL[i];
            (self.domain_cycles[i] as f64 + self.stretched_cycles[i])
                * self.params.grid(d)
                * self.domain_factor[i]
        });
        EnergyBreakdown {
            blocks,
            global_clock: self.global_cycles as f64 * self.params.global_grid * self.global_factor,
            local_clocks,
        }
    }

    /// Total energy so far.
    pub fn total_energy(&self) -> f64 {
        self.breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_vs_idle_ratio() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.block_cycle(MacroBlock::DCache, true);
        let active = acc.breakdown().block(MacroBlock::DCache);
        let mut acc2 = PowerAccountant::new(EnergyParams::default());
        acc2.block_cycle(MacroBlock::DCache, false);
        let idle = acc2.breakdown().block(MacroBlock::DCache);
        assert!((idle / active - 0.10).abs() < 1e-12);
    }

    #[test]
    fn gals_machine_skips_global_grid() {
        let p = EnergyParams::default();
        // Base: 100 cycles, everything idle, global + local grids.
        let mut base = PowerAccountant::new(p.clone());
        // GALS: same but no global grid.
        let mut gals = PowerAccountant::new(p);
        for _ in 0..100 {
            base.tick_global();
            for d in Domain::ALL {
                base.tick_domain(d);
                gals.tick_domain(d);
            }
        }
        let eb = base.breakdown();
        let eg = gals.breakdown();
        assert_eq!(eg.global_clock, 0.0);
        assert!((eb.total() - eg.total() - 100.0 * 14.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_factor_scales_domain_energy() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.set_domain_voltage_factor(Domain::FpCluster, 0.5);
        acc.block_cycle(MacroBlock::FpAlus, true);
        acc.block_cycle(MacroBlock::IntAlus, true);
        acc.tick_domain(Domain::FpCluster);
        let e = acc.breakdown();
        let p = EnergyParams::default();
        assert!((e.block(MacroBlock::FpAlus) - 0.5 * p.active(MacroBlock::FpAlus)).abs() < 1e-12);
        assert!((e.block(MacroBlock::IntAlus) - p.active(MacroBlock::IntAlus)).abs() < 1e-12);
        assert!(
            (e.local_clocks[Domain::FpCluster.index()] - 0.5 * p.grid(Domain::FpCluster)).abs()
                < 1e-12
        );
    }

    #[test]
    fn global_voltage_factor_applies_everywhere() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.set_global_voltage_factor(0.81);
        acc.tick_global();
        acc.block_cycle(MacroBlock::ICache, true);
        let e = acc.breakdown();
        let p = EnergyParams::default();
        assert!((e.global_clock - 0.81 * p.global_grid).abs() < 1e-12);
        assert!((e.block(MacroBlock::ICache) - 0.81 * p.active(MacroBlock::ICache)).abs() < 1e-12);
    }

    #[test]
    fn stretched_clock_charges_prorated_grid_energy() {
        let p = EnergyParams::default();
        let mut acc = PowerAccountant::new(p.clone());
        acc.tick_domain(Domain::Decode);
        acc.stretched_clock(Domain::Decode, 0.5);
        let e = acc.breakdown();
        let expect = p.grid(Domain::Decode) * 1.5;
        assert!((e.local_clocks[Domain::Decode.index()] - expect).abs() < 1e-12);
    }

    #[test]
    fn stretched_clock_respects_voltage_factor() {
        let p = EnergyParams::default();
        let mut acc = PowerAccountant::new(p.clone());
        acc.set_domain_voltage_factor(Domain::FpCluster, 0.5);
        acc.stretched_clock(Domain::FpCluster, 2.0);
        let e = acc.breakdown();
        let expect = p.grid(Domain::FpCluster) * 2.0 * 0.5;
        assert!((e.local_clocks[Domain::FpCluster.index()] - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "implausible stretched-cycle")]
    fn negative_stretch_cycles_rejected() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.stretched_clock(Domain::Fetch, -0.1);
    }

    #[test]
    fn fifo_energy_per_access() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.fifo_access(10);
        let e = acc.breakdown();
        let expect = EnergyParams::default().fifo_access * 10.0;
        assert!((e.block(MacroBlock::Fifos) - expect).abs() < 1e-12);
        assert_eq!(acc.fifo_accesses(), 10);
    }

    #[test]
    fn average_power_divides_by_time() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.tick_global();
        let e = acc.breakdown();
        let p = e.average_power(Time::from_ns(1));
        assert!((p - 14.0 / 1e-9).abs() / p < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero time")]
    fn power_over_zero_time_panics() {
        let acc = PowerAccountant::new(EnergyParams::default());
        let _ = acc.breakdown().average_power(Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "implausible")]
    fn bad_voltage_factor_rejected() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.set_domain_voltage_factor(Domain::Fetch, -1.0);
    }

    #[test]
    fn cycle_counters() {
        let mut acc = PowerAccountant::new(EnergyParams::default());
        acc.tick_global();
        acc.tick_global();
        acc.tick_domain(Domain::Fetch);
        assert_eq!(acc.global_cycles(), 2);
        assert_eq!(acc.domain_cycles()[0], 1);
    }
}
