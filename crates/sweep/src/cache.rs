//! The content-addressed result cache: a directory of one-line JSON
//! blobs, one per *successful* run, named by the run's [`RunKey`].
//!
//! ## Blob layout
//!
//! `<dir>/<16 hex digits>.json` holds exactly the journal's entry-line
//! rendering for that run (see the `journal` module) plus a trailing
//! newline. Reusing the journal's line format means the exact-float
//! round-trip proof there covers cache blobs too, and a blob is
//! self-describing enough to `cat`.
//!
//! ## Semantics
//!
//! * **Atomic writes.** A blob is written to a temporary name in the same
//!   directory and renamed into place, so a killed sweep can never leave
//!   a half-written blob under a valid key.
//! * **Corruption is a miss, never an error.** Anything unreadable,
//!   unparsable, truncated, or carrying the wrong embedded key counts as
//!   `corrupt` in [`CacheStats`] and simply re-simulates. The only loud
//!   cache failures are *write* failures — silently dropping results
//!   would defeat the cache without telling anyone.
//! * **Only `ok` records are stored.** Failures (panic/timeout/deadlock)
//!   are execution accidents, not content; they must re-run.
//! * **Deterministic eviction.** With a capacity bound, a store that
//!   pushes the blob count past it removes the lexicographically smallest
//!   blob names (never the one just written) until the bound holds — no
//!   wall-clock LRU, so two identical sweeps leave identical directories.
//!
//! Keys already include the report schema version, so a schema bump
//! simply misses against old blobs rather than misreading them; stale
//! blobs age out via the capacity bound (or `rm -r` — the directory holds
//! nothing else).

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{journal, RunKey, RunRecord, RunSpec};

/// Cache-traffic counters for one sweep (a snapshot of [`ResultCache`]'s
/// internal counters; all-zero when no cache is configured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups served from a blob.
    pub hits: u64,
    /// Lookups that found no usable blob (includes `corrupt`).
    pub misses: u64,
    /// Blobs written.
    pub stores: u64,
    /// Blobs removed by the capacity bound.
    pub evictions: u64,
    /// Misses caused by an unreadable or invalid blob.
    pub corrupt: u64,
}

/// A handle on one cache directory. Shared by reference across sweep
/// workers; every operation is a single filesystem action, so no internal
/// lock is needed beyond the atomic counters.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    tmp_seq: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory. A `capacity` of
    /// `Some(n)` bounds the directory to `n` blobs (clamped to at least
    /// one); `None` is unbounded.
    ///
    /// # Errors
    ///
    /// The directory cannot be created.
    pub fn open(dir: &Path, capacity: Option<usize>) -> Result<ResultCache, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache directory {}: {e}", dir.display()))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            capacity: capacity.map(|c| c.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    fn blob_name(key: RunKey) -> String {
        format!("{}.json", key.to_hex())
    }

    /// Looks `key` up, reconstructing the record for `spec`. Any defect in
    /// the blob — unreadable, truncated, wrong embedded key, a non-`ok`
    /// status — is a miss (counted `corrupt` where the blob existed but
    /// was unusable), never an error: the point simply re-simulates.
    pub fn load(&self, key: RunKey, spec: &RunSpec) -> Option<RunRecord> {
        let path = self.dir.join(Self::blob_name(key));
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                if e.kind() != ErrorKind::NotFound {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match journal::parse_blob(&text, spec, key) {
            Ok(Some(record)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            Ok(None) | Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a *successful* record under `key` (atomically: temp file in
    /// the cache directory, then rename), then enforces the capacity
    /// bound. Non-`ok` records are ignored — failures are not content.
    ///
    /// # Errors
    ///
    /// Write failures are loud (a cache that silently drops results is
    /// worse than no cache); the sweep surfaces them like journal errors.
    pub fn store(&self, record: &RunRecord, key: RunKey) -> Result<(), String> {
        if !record.status.is_ok() {
            return Ok(());
        }
        let name = Self::blob_name(key);
        let tmp = self.dir.join(format!(
            "{name}.tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut line = journal::entry_line(record, key);
        line.push('\n');
        fs::write(&tmp, line.as_bytes())
            .map_err(|e| format!("cannot write cache blob {}: {e}", tmp.display()))?;
        fs::rename(&tmp, self.dir.join(&name))
            .map_err(|e| format!("cannot commit cache blob {name}: {e}"))?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.enforce_capacity(&name);
        Ok(())
    }

    /// Removes the lexicographically smallest blobs (sparing `keep`, the
    /// one just stored) until the directory fits the capacity bound.
    /// Best-effort: eviction failures only mean a larger directory.
    fn enforce_capacity(&self, keep: &str) {
        let Some(cap) = self.capacity else { return };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.len() == 21 && n.ends_with(".json"))
            .collect();
        if names.len() <= cap {
            return;
        }
        names.sort_unstable();
        let mut excess = names.len() - cap;
        for name in names {
            if excess == 0 {
                break;
            }
            if name == keep {
                continue;
            }
            if fs::remove_file(self.dir.join(&name)).is_ok() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                excess -= 1;
            }
        }
    }

    /// A snapshot of this handle's traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvfsPoint, ModePoint, SweepMatrix, WORKLOAD_SEED};
    use gals_workload::Benchmark;

    fn specs() -> Vec<crate::RunSpec> {
        SweepMatrix {
            benchmarks: vec![Benchmark::Adpcm],
            modes: vec![
                ModePoint::Synchronous,
                ModePoint::Gals {
                    wakeup_filter: false,
                },
            ],
            dvfs: vec![DvfsPoint::nominal()],
            phase_seeds: vec![1],
            workload_seed: WORKLOAD_SEED,
            budget: 400,
            retries: 0,
            run_timeout_ms: None,
        }
        .expand()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "gals-sweep-cache-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn store_then_load_round_trips_and_counts() {
        let dir = temp_dir("round-trip");
        let cache = ResultCache::open(&dir, None).expect("open");
        let specs = specs();
        let record = specs[0].run();
        let key = RunKey::of(&specs[0]);
        assert_eq!(cache.load(key, &specs[0]), None, "cold miss");
        cache.store(&record, key).expect("store");
        assert_eq!(cache.load(key, &specs[0]), Some(record), "warm hit");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1,
                evictions: 0,
                corrupt: 0,
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blobs_are_misses_never_errors() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir, None).expect("open");
        let specs = specs();
        let record = specs[0].run();
        let key = RunKey::of(&specs[0]);
        cache.store(&record, key).expect("store");
        let blob = dir.join(ResultCache::blob_name(key));

        // Truncated mid-line.
        let text = fs::read_to_string(&blob).expect("blob");
        fs::write(&blob, &text[..text.len() / 2]).expect("truncate");
        assert_eq!(cache.load(key, &specs[0]), None);
        // Not JSON at all.
        fs::write(&blob, "not json\n").expect("garbage");
        assert_eq!(cache.load(key, &specs[0]), None);
        // A valid blob filed under the wrong name.
        let other = RunKey::of(&specs[1]);
        fs::write(&blob, {
            let mut l = crate::journal::entry_line(&specs[1].run(), other);
            l.push('\n');
            l
        })
        .expect("mismatched");
        assert_eq!(cache.load(key, &specs[0]), None);
        assert_eq!(cache.stats().corrupt, 3);
        assert_eq!(cache.stats().hits, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_records_are_never_stored() {
        let dir = temp_dir("failed");
        let cache = ResultCache::open(&dir, None).expect("open");
        let specs = specs();
        let failed = RunRecord::failed(&specs[0], crate::RunStatus::TimedOut);
        let key = RunKey::of(&specs[0]);
        cache.store(&failed, key).expect("no-op store");
        assert_eq!(cache.stats().stores, 0);
        assert_eq!(cache.load(key, &specs[0]), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_deterministically_sparing_the_new_blob() {
        let dir = temp_dir("evict");
        let cache = ResultCache::open(&dir, Some(1)).expect("open");
        let specs = specs();
        let (a, b) = (RunKey::of(&specs[0]), RunKey::of(&specs[1]));
        cache.store(&specs[0].run(), a).expect("store a");
        cache.store(&specs[1].run(), b).expect("store b");
        // Exactly one blob survives, and it is the one just written —
        // regardless of how the two keys happen to sort.
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.load(b, &specs[1]).is_some());
        assert_eq!(cache.load(a, &specs[0]), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
