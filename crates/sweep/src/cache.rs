//! The content-addressed result cache: a directory of one-line JSON
//! blobs, one per *successful* run, named by the run's [`RunKey`].
//!
//! ## Blob layout
//!
//! `<dir>/<16 hex digits>.json` holds exactly the journal's entry-line
//! rendering for that run (see the `journal` module) plus a trailing
//! newline. Reusing the journal's line format means the exact-float
//! round-trip proof there covers cache blobs too, and a blob is
//! self-describing enough to `cat`.
//!
//! ## Semantics
//!
//! * **Atomic writes.** A blob is written to a temporary name in the same
//!   directory and renamed into place, so a killed sweep can never leave
//!   a half-written blob under a valid key.
//! * **Corruption is a miss, never an error.** Anything unreadable,
//!   unparsable, truncated, or carrying the wrong embedded key counts as
//!   `corrupt` in [`CacheStats`] and simply re-simulates. The only loud
//!   cache failures are *write* failures — silently dropping results
//!   would defeat the cache without telling anyone.
//! * **Only `ok` records are stored.** Failures (panic/timeout/deadlock)
//!   are execution accidents, not content; they must re-run.
//! * **Deterministic eviction.** With a capacity bound, a store that
//!   pushes the blob count past it removes the lexicographically smallest
//!   blob names (never the one just written) until the bound holds — no
//!   wall-clock LRU, so two identical sweeps leave identical directories.
//!
//! Keys already include the report schema version, so a schema bump
//! simply misses against old blobs rather than misreading them; stale
//! blobs age out via the capacity bound (or `rm -r` — the directory holds
//! nothing else).

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{journal, RunKey, RunRecord, RunSpec};

/// Cache-traffic counters for one sweep (a snapshot of [`ResultCache`]'s
/// internal counters; all-zero when no cache is configured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups served from a blob.
    pub hits: u64,
    /// Lookups that found no usable blob (includes `corrupt`).
    pub misses: u64,
    /// Blobs written.
    pub stores: u64,
    /// Blobs removed by the capacity bound.
    pub evictions: u64,
    /// Misses caused by an unreadable or invalid blob.
    pub corrupt: u64,
}

/// What one cache lookup found. The counter-updating twin of a plain
/// `Option`: callers that tally per-request traffic (the shared-handle
/// server path) need to distinguish a clean miss from a corrupt one.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A usable blob; the reconstructed record (boxed — a `RunRecord`
    /// is large, and the misses carry nothing).
    Hit(Box<RunRecord>),
    /// No blob under this key.
    Absent,
    /// A blob existed but was unreadable, truncated, key-mismatched or
    /// non-`ok` — a miss, never an error.
    Corrupt,
}

/// A handle on one cache directory. Shared across sweep workers *and*
/// across concurrent server requests (behind an `Arc`); every operation
/// is a single filesystem action — atomic rename for stores, unlink for
/// evictions — so no internal lock is needed beyond the atomic
/// counters, and a peer handle (same process or another) racing on the
/// same directory is always safe: a blob deleted under us is a miss on
/// load and an already-done eviction on evict.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    tmp_seq: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory. A `capacity` of
    /// `Some(n)` bounds the directory to `n` blobs (clamped to at least
    /// one); `None` is unbounded.
    ///
    /// # Errors
    ///
    /// The directory cannot be created.
    pub fn open(dir: &Path, capacity: Option<usize>) -> Result<ResultCache, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache directory {}: {e}", dir.display()))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            capacity: capacity.map(|c| c.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    fn blob_name(key: RunKey) -> String {
        format!("{}.json", key.to_hex())
    }

    /// Looks `key` up, reconstructing the record for `spec`. Any defect in
    /// the blob — unreadable, truncated, wrong embedded key, a non-`ok`
    /// status — is a miss (counted `corrupt` where the blob existed but
    /// was unusable), never an error: the point simply re-simulates.
    pub fn load(&self, key: RunKey, spec: &RunSpec) -> Option<RunRecord> {
        match self.lookup(key, spec) {
            Lookup::Hit(record) => Some(*record),
            Lookup::Absent | Lookup::Corrupt => None,
        }
    }

    /// [`ResultCache::load`] with the miss kind surfaced (see
    /// [`Lookup`]). Updates this handle's counters identically.
    pub fn lookup(&self, key: RunKey, spec: &RunSpec) -> Lookup {
        let path = self.dir.join(Self::blob_name(key));
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return if e.kind() == ErrorKind::NotFound {
                    Lookup::Absent
                } else {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    Lookup::Corrupt
                };
            }
        };
        match journal::parse_blob(&text, spec, key) {
            Ok(Some(record)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Box::new(record))
            }
            Ok(None) | Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Corrupt
            }
        }
    }

    /// Stores a *successful* record under `key` (atomically: temp file in
    /// the cache directory, then rename), then enforces the capacity
    /// bound. Non-`ok` records are ignored — failures are not content.
    /// Returns how many blobs the capacity bound evicted (for callers
    /// keeping per-request tallies against a shared handle).
    ///
    /// # Errors
    ///
    /// Write failures are loud (a cache that silently drops results is
    /// worse than no cache); the sweep surfaces them like journal errors.
    pub fn store(&self, record: &RunRecord, key: RunKey) -> Result<u64, String> {
        if !record.status.is_ok() {
            return Ok(0);
        }
        let name = Self::blob_name(key);
        let tmp = self.dir.join(format!(
            "{name}.tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut line = journal::entry_line(record, key);
        line.push('\n');
        fs::write(&tmp, line.as_bytes())
            .map_err(|e| format!("cannot write cache blob {}: {e}", tmp.display()))?;
        fs::rename(&tmp, self.dir.join(&name))
            .map_err(|e| format!("cannot commit cache blob {name}: {e}"))?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(self.enforce_capacity(&name))
    }

    /// Lists the directory and hands the names to [`Self::evict_excess`].
    /// Returns the number of blobs this call actually removed.
    fn enforce_capacity(&self, keep: &str) -> u64 {
        let Some(cap) = self.capacity else { return 0 };
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let names: Vec<String> = entries
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.len() == 21 && n.ends_with(".json"))
            .collect();
        self.evict_excess(names, cap, keep)
    }

    /// Removes the lexicographically smallest of `names` (sparing `keep`,
    /// the blob just stored) until at most `cap` remain. Best-effort:
    /// eviction failures only mean a larger directory.
    ///
    /// Concurrent-writer safety: the listing is a snapshot, so a peer
    /// handle enforcing the same bound may delete a listed blob first.
    /// That `NotFound` is not a failure — the directory shrank all the
    /// same, so it consumes excess without counting as an eviction
    /// *here* (the peer already counted it); any other unlink error
    /// skips to the next candidate. Counters therefore stay consistent:
    /// summed across handles, `evictions` equals the number of blobs
    /// actually removed.
    fn evict_excess(&self, mut names: Vec<String>, cap: usize, keep: &str) -> u64 {
        if names.len() <= cap {
            return 0;
        }
        names.sort_unstable();
        let mut excess = names.len() - cap;
        let mut evicted = 0u64;
        for name in names {
            if excess == 0 {
                break;
            }
            if name == keep {
                continue;
            }
            match fs::remove_file(self.dir.join(&name)) {
                Ok(()) => {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted += 1;
                    excess -= 1;
                }
                Err(e) if e.kind() == ErrorKind::NotFound => excess -= 1,
                Err(_) => {}
            }
        }
        evicted
    }

    /// A snapshot of this handle's traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvfsPoint, ModePoint, SweepMatrix, WORKLOAD_SEED};
    use gals_workload::{Benchmark, Workload};

    fn specs() -> Vec<crate::RunSpec> {
        SweepMatrix {
            benchmarks: vec![Workload::Profile(Benchmark::Adpcm)],
            modes: vec![
                ModePoint::Synchronous,
                ModePoint::Gals {
                    wakeup_filter: false,
                },
            ],
            dvfs: vec![DvfsPoint::nominal()],
            phase_seeds: vec![1],
            workload_seed: WORKLOAD_SEED,
            budget: 400,
            retries: 0,
            run_timeout_ms: None,
        }
        .expand()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "gals-sweep-cache-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn store_then_load_round_trips_and_counts() {
        let dir = temp_dir("round-trip");
        let cache = ResultCache::open(&dir, None).expect("open");
        let specs = specs();
        let record = specs[0].run();
        let key = RunKey::of(&specs[0]);
        assert_eq!(cache.load(key, &specs[0]), None, "cold miss");
        cache.store(&record, key).expect("store");
        assert_eq!(cache.load(key, &specs[0]), Some(record), "warm hit");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1,
                evictions: 0,
                corrupt: 0,
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blobs_are_misses_never_errors() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir, None).expect("open");
        let specs = specs();
        let record = specs[0].run();
        let key = RunKey::of(&specs[0]);
        cache.store(&record, key).expect("store");
        let blob = dir.join(ResultCache::blob_name(key));

        // Truncated mid-line.
        let text = fs::read_to_string(&blob).expect("blob");
        fs::write(&blob, &text[..text.len() / 2]).expect("truncate");
        assert_eq!(cache.load(key, &specs[0]), None);
        // Not JSON at all.
        fs::write(&blob, "not json\n").expect("garbage");
        assert_eq!(cache.load(key, &specs[0]), None);
        // A valid blob filed under the wrong name.
        let other = RunKey::of(&specs[1]);
        fs::write(&blob, {
            let mut l = crate::journal::entry_line(&specs[1].run(), other);
            l.push('\n');
            l
        })
        .expect("mismatched");
        assert_eq!(cache.load(key, &specs[0]), None);
        assert_eq!(cache.stats().corrupt, 3);
        assert_eq!(cache.stats().hits, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_records_are_never_stored() {
        let dir = temp_dir("failed");
        let cache = ResultCache::open(&dir, None).expect("open");
        let specs = specs();
        let failed = RunRecord::failed(&specs[0], crate::RunStatus::TimedOut);
        let key = RunKey::of(&specs[0]);
        cache.store(&failed, key).expect("no-op store");
        assert_eq!(cache.stats().stores, 0);
        assert_eq!(cache.load(key, &specs[0]), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_deterministically_sparing_the_new_blob() {
        let dir = temp_dir("evict");
        let cache = ResultCache::open(&dir, Some(1)).expect("open");
        let specs = specs();
        let (a, b) = (RunKey::of(&specs[0]), RunKey::of(&specs[1]));
        cache.store(&specs[0].run(), a).expect("store a");
        cache.store(&specs[1].run(), b).expect("store b");
        // Exactly one blob survives, and it is the one just written —
        // regardless of how the two keys happen to sort.
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.load(b, &specs[1]).is_some());
        assert_eq!(cache.load(a, &specs[0]), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_tolerates_a_blob_deleted_by_a_peer() {
        let dir = temp_dir("peer-evict");
        let cache = ResultCache::open(&dir, Some(1)).expect("open");
        let specs = specs();
        let key = RunKey::of(&specs[1]);
        cache.store(&specs[1].run(), key).expect("store");
        let keep = ResultCache::blob_name(key);
        // A directory snapshot listing two phantom blobs a peer already
        // removed, plus the real one: the phantoms' NotFound must consume
        // the excess (the directory did shrink) without inflating the
        // eviction counter or touching the surviving blob.
        let stale = vec![
            "0000000000000000.json".to_string(),
            "0000000000000001.json".to_string(),
            keep.clone(),
        ];
        let removed = cache.evict_excess(stale, 1, &keep);
        assert_eq!(removed, 0, "phantom deletions are not our evictions");
        assert_eq!(cache.stats().evictions, 0);
        assert!(
            cache.load(key, &specs[1]).is_some(),
            "the real blob survives"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
