//! The one place the sweep's content hashing lives: FNV-1a 64-bit over a
//! canonical byte string, rendered as 16 lower-case hex digits.
//!
//! Three consumers share these primitives, so the on-disk formats cannot
//! drift apart:
//!
//! * [`RunKey`] — the per-run content hash behind the
//!   result cache's blob names and the journal's entry keys;
//! * [`matrix_identity`] — the journal header's whole-matrix hash;
//! * the pinned golden-vector test below, which fails loudly if the hash
//!   function (and therefore every cached blob and journal on disk) ever
//!   changes meaning.
//!
//! FNV-1a is deliberate: the workspace carries no external hash crates,
//! and collision resistance is not a goal — these hashes guard against
//! honest mistakes (resuming the wrong journal, reading a stale cache
//! blob), not adversaries.

use crate::RunKey;
use crate::SCHEMA_VERSION;

/// FNV-1a 64-bit over a byte string. The offset basis and prime are the
/// published constants; the reference vectors are pinned by a test so the
/// function can never drift silently under the on-disk formats built on
/// it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical rendering of a 64-bit hash everywhere it lands on disk
/// (journal headers and keys, cache blob file names): 16 lower-case hex
/// digits, zero-padded.
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

/// Identity hash of a whole matrix: the schema version plus every
/// expanded run's [`RunKey`], in matrix order. Written to the journal
/// header; execution policy (`retries`, `run_timeout_ms`, thread count)
/// never reaches a `RunKey`, so policy changes resume cleanly while any
/// change to an axis, seed, budget or config is caught loudly.
pub fn matrix_identity(keys: &[RunKey]) -> u64 {
    let mut canon = format!("v{}|{}", SCHEMA_VERSION, keys.len());
    for key in keys {
        canon.push('|');
        canon.push_str(&key.to_hex());
    }
    fnv1a(canon.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors: the golden pin under every
        // on-disk key. If this fails, cached blobs and journals written
        // by earlier builds are unreadable — bump the journal version and
        // say so in docs/SWEEP_FORMAT.md instead of bending the hash.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hex16_is_padded_lower_case() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xABC), "0000000000000abc");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn matrix_identity_is_order_sensitive() {
        let a = RunKey::from_raw(1);
        let b = RunKey::from_raw(2);
        assert_eq!(matrix_identity(&[a, b]), matrix_identity(&[a, b]));
        assert_ne!(matrix_identity(&[a, b]), matrix_identity(&[b, a]));
        assert_ne!(matrix_identity(&[a]), matrix_identity(&[a, a]));
    }
}
