//! The write-ahead sweep journal: one JSONL line per *completed* run,
//! appended atomically (a single `write` of one `\n`-terminated line on an
//! append-mode file), so a sweep killed at any instant loses at most the
//! runs that were still in flight.
//!
//! ## File format
//!
//! Line 1 is the header:
//!
//! ```text
//! {"journal": "gals-sweep", "journal_version": 1, "schema_version": 4,
//!  "matrix_hash": "<16 hex digits>", "run_count": <usize>}
//! ```
//!
//! Every further line is one run outcome, keyed by the run's content hash
//! (see [`RunKey`]):
//!
//! ```text
//! {"index": 3, "key": "...", "status": "ok", "committed": ..., <metrics>}
//! {"index": 5, "key": "...", "status": "panicked", "panic_msg": "..."}
//! {"index": 6, "key": "...", "status": "timed_out"}
//! {"index": 7, "key": "...", "status": "deadlocked"}
//! ```
//!
//! ## Resume semantics
//!
//! On `--resume`, [`load_journal`] replays the file against the expanded
//! matrix:
//!
//! * the header's `matrix_hash` must match the current matrix — resuming
//!   against a different matrix is a loud error, never a silent partial
//!   merge (the hash covers the schema version and every expanded run's
//!   content key, so any change to an axis, seed or budget is caught;
//!   execution policy like `retries` is deliberately excluded);
//! * `"ok"` entries pre-fill their slot (the metrics round-trip exactly:
//!   floats are serialised with the shortest representation that parses
//!   back bit-identically), so those points are skipped;
//! * failed entries (`panicked`/`timed_out`/`deadlocked`) are *not*
//!   skipped — a resumed sweep re-runs exactly the failed points;
//! * a torn final line (the process died mid-append) is ignored; a
//!   malformed line anywhere else is a loud error;
//! * when one index appears on several lines (a retry in a later
//!   invocation), the last line wins.
//!
//! Floats below 2^53 and the report's u64 counters round-trip through the
//! shared f64-based JSON reader exactly; sweep metrics are far below that
//! bound (simulated times are ~1e11 fs at the default budget).

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::matrix_file::{u64_field, Json, Parser};
use crate::stable_hash::hex16;
use crate::{RunKey, RunRecord, RunSpec, RunStatus, SCHEMA_VERSION};

/// Journal file-format version (independent of the report schema, but the
/// header records both).
pub(crate) const JOURNAL_VERSION: u32 = 1;

/// Shortest f64 representation that parses back to the same bits (Rust's
/// `{:?}` float formatting); non-finite values — which the report layer
/// never produces — degrade to 0 rather than poisoning the JSON.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".into()
    }
}

/// Renders one journal entry line (without the trailing newline). The
/// same rendering is the result cache's blob body ([`crate::cache`]), so
/// the metric round-trip proof below covers both formats.
pub(crate) fn entry_line(record: &RunRecord, key: RunKey) -> String {
    let head = format!(
        "{{\"index\": {}, \"key\": \"{}\", \"status\": \"{}\"",
        record.spec.index,
        key.to_hex(),
        record.status.label()
    );
    match &record.status {
        RunStatus::Ok => format!(
            "{head}, \"committed\": {}, \"fetched\": {}, \"wrong_path_fetched\": {}, \
             \"exec_time_fs\": {}, \"insts_per_ns\": {}, \"mean_slip_fs\": {}, \
             \"fifo_slip_fraction\": {}, \"misspeculation_rate\": {}, \
             \"channel_ops\": {}, \"total_stretches\": {}, \"stretch_time_fs\": {}, \
             \"rendezvous_block_cycles\": {}, \"min_effective_ghz\": {}, \
             \"total_energy\": {}, \"average_power\": {}}}",
            record.committed,
            record.fetched,
            record.wrong_path_fetched,
            record.exec_time_fs,
            fmt_f64(record.insts_per_ns),
            record.mean_slip_fs,
            fmt_f64(record.fifo_slip_fraction),
            fmt_f64(record.misspeculation_rate),
            record.channel_ops,
            record.total_stretches,
            record.stretch_time_fs,
            record.rendezvous_block_cycles,
            fmt_f64(record.min_effective_ghz),
            fmt_f64(record.total_energy),
            fmt_f64(record.average_power),
        ),
        RunStatus::Panicked { msg } => {
            format!("{head}, \"panic_msg\": \"{}\"}}", crate::json_escape(msg))
        }
        RunStatus::TimedOut | RunStatus::Deadlocked { .. } => format!("{head}}}"),
    }
}

/// The append-side of the journal: create (or reopen) the file, then emit
/// one line per completed run. Shared across sweep workers through an
/// internal mutex; each line is written and flushed in a single call.
///
/// Concurrent-writer safety: the file is always held in append mode
/// (`O_APPEND`), so every `write` positions at end-of-file atomically in
/// the kernel. Within one process the mutex already serializes lines;
/// the append mode additionally keeps whole lines intact even if a
/// second writer (another handle or process, against advice) shares the
/// path — interleaved lines, never torn ones, which the replay side's
/// last-line-wins rule then resolves.
pub(crate) struct JournalWriter {
    file: Mutex<File>,
}

impl JournalWriter {
    /// Starts a fresh journal (truncating any previous file) and writes
    /// the header line.
    pub(crate) fn create(path: &Path, matrix_hash: u64, run_count: usize) -> Result<Self, String> {
        // Truncate first, then reopen in append mode: one flag set for
        // every subsequent write (see the struct docs for why O_APPEND).
        File::create(path).map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        let writer = Self::append_existing(path)?;
        let header = format!(
            "{{\"journal\": \"gals-sweep\", \"journal_version\": {JOURNAL_VERSION}, \
             \"schema_version\": {SCHEMA_VERSION}, \"matrix_hash\": \"{}\", \
             \"run_count\": {run_count}}}\n",
            hex16(matrix_hash)
        );
        {
            let mut file = writer.file.lock().unwrap_or_else(|p| p.into_inner());
            file.write_all(header.as_bytes())
                .and_then(|()| file.flush())
                .map_err(|e| format!("cannot write journal {}: {e}", path.display()))?;
        }
        Ok(writer)
    }

    /// Reopens an existing journal (validated separately by
    /// [`load_journal`]) for appending resumed outcomes.
    pub(crate) fn append_existing(path: &Path) -> Result<Self, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?;
        Ok(JournalWriter {
            file: Mutex::new(file),
        })
    }

    /// Appends one completed-run line. A poisoned lock is recovered — a
    /// journal write must never be lost to an unrelated panic.
    pub(crate) fn append(&self, record: &RunRecord, key: RunKey) -> Result<(), String> {
        let mut line = entry_line(record, key);
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot append to journal: {e}"))
    }
}

fn parse_u64(v: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    u64_field(v, key)?.ok_or_else(|| format!("journal line {line_no}: missing {key:?}"))
}

fn parse_f64(v: &Json, key: &str, line_no: usize) -> Result<f64, String> {
    match v.get(key) {
        Some(Json::Num(f)) => Ok(*f),
        Some(other) => Err(format!(
            "journal line {line_no}: {key} must be a number, got {}",
            other.type_name()
        )),
        None => Err(format!("journal line {line_no}: missing {key:?}")),
    }
}

fn parse_str<'a>(v: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s),
        Some(other) => Err(format!(
            "journal line {line_no}: {key} must be a string, got {}",
            other.type_name()
        )),
        None => Err(format!("journal line {line_no}: missing {key:?}")),
    }
}

/// Replays a journal against the current matrix expansion: validates the
/// header, then returns the slot vector with every journaled-`ok` run
/// pre-filled (failed entries leave their slot empty so the resumed sweep
/// re-runs them). See the module docs for the full semantics.
pub(crate) fn load_journal(
    text: &str,
    expect_hash: u64,
    specs: &[RunSpec],
) -> Result<Vec<Option<RunRecord>>, String> {
    let mut slots: Vec<Option<RunRecord>> = vec![None; specs.len()];
    let lines: Vec<&str> = text.lines().collect();
    let Some(header_line) = lines.first() else {
        return Err("journal is empty (no header line)".into());
    };
    let header = Parser::new(header_line)
        .value()
        .map_err(|e| format!("journal header: {e}"))?;
    if parse_str(&header, "journal", 1)? != "gals-sweep" {
        return Err("journal header: not a gals-sweep journal".into());
    }
    let version = parse_u64(&header, "journal_version", 1)?;
    if version != u64::from(JOURNAL_VERSION) {
        return Err(format!(
            "journal version {version} is not the supported version {JOURNAL_VERSION}"
        ));
    }
    let schema = parse_u64(&header, "schema_version", 1)?;
    if schema != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "journal was written by schema v{schema}, this harness writes v{SCHEMA_VERSION} \
             — re-run without --resume"
        ));
    }
    let hash = parse_str(&header, "matrix_hash", 1)?;
    if hash != hex16(expect_hash) {
        return Err(format!(
            "journal matrix_hash {hash} does not match the current matrix ({}) — \
             the journal belongs to a different sweep; re-run without --resume \
             or point --journal elsewhere",
            hex16(expect_hash)
        ));
    }
    let run_count = parse_u64(&header, "run_count", 1)? as usize;
    if run_count != specs.len() {
        return Err(format!(
            "journal run_count {run_count} does not match the current matrix ({} runs)",
            specs.len()
        ));
    }

    for (i, line) in lines.iter().enumerate().skip(1) {
        let line_no = i + 1;
        let last = i + 1 == lines.len();
        let entry = match Parser::new(line).value() {
            Ok(v) => v,
            // A torn final line means the process died mid-append: that
            // run simply re-runs. Corruption anywhere else is loud.
            Err(_) if last => continue,
            Err(e) => return Err(format!("journal line {line_no}: {e}")),
        };
        let parsed = parse_entry(&entry, specs, line_no);
        match parsed {
            Ok((index, record)) => slots[index] = record,
            Err(_) if last => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(slots)
}

/// One journal entry → its slot index and (for `ok` entries) the
/// reconstructed record. Failed statuses return `None` so their slots
/// stay empty and the points re-run.
fn parse_entry(
    entry: &Json,
    specs: &[RunSpec],
    line_no: usize,
) -> Result<(usize, Option<RunRecord>), String> {
    let index = parse_u64(entry, "index", line_no)? as usize;
    let Some(spec) = specs.get(index) else {
        return Err(format!(
            "journal line {line_no}: index {index} is outside the matrix ({} runs)",
            specs.len()
        ));
    };
    let key = parse_str(entry, "key", line_no)?;
    if key != RunKey::of(spec).to_hex() {
        return Err(format!(
            "journal line {line_no}: key {key} does not match matrix point {index} — \
             the journal belongs to a different sweep"
        ));
    }
    let status = parse_str(entry, "status", line_no)?;
    if status != "ok" {
        // Failed outcomes re-run on resume; nothing to reconstruct.
        return Ok((index, None));
    }
    Ok((index, Some(parse_ok_record(entry, spec, line_no)?)))
}

/// Reconstructs the [`RunRecord`] of an `"ok"` entry from its parsed JSON
/// object. Shared by journal replay and the result cache's blob reader —
/// both store the [`entry_line`] rendering.
pub(crate) fn parse_ok_record(
    entry: &Json,
    spec: &RunSpec,
    line_no: usize,
) -> Result<RunRecord, String> {
    Ok(RunRecord {
        spec: spec.clone(),
        status: RunStatus::Ok,
        // Not journaled: a pure function of the spec, recomputed so the
        // resumed record is bit-identical to a fresh run's.
        analysis: spec.static_findings(),
        committed: parse_u64(entry, "committed", line_no)?,
        fetched: parse_u64(entry, "fetched", line_no)?,
        wrong_path_fetched: parse_u64(entry, "wrong_path_fetched", line_no)?,
        exec_time_fs: parse_u64(entry, "exec_time_fs", line_no)?,
        insts_per_ns: parse_f64(entry, "insts_per_ns", line_no)?,
        mean_slip_fs: parse_u64(entry, "mean_slip_fs", line_no)?,
        fifo_slip_fraction: parse_f64(entry, "fifo_slip_fraction", line_no)?,
        misspeculation_rate: parse_f64(entry, "misspeculation_rate", line_no)?,
        channel_ops: parse_u64(entry, "channel_ops", line_no)?,
        total_stretches: parse_u64(entry, "total_stretches", line_no)?,
        stretch_time_fs: parse_u64(entry, "stretch_time_fs", line_no)?,
        rendezvous_block_cycles: parse_u64(entry, "rendezvous_block_cycles", line_no)?,
        min_effective_ghz: parse_f64(entry, "min_effective_ghz", line_no)?,
        total_energy: parse_f64(entry, "total_energy", line_no)?,
        average_power: parse_f64(entry, "average_power", line_no)?,
    })
}

/// Parses one cache blob (a single [`entry_line`] rendering) for `spec`,
/// verifying its `key` field against the expected [`RunKey`].
///
/// Returns `Ok(Some(record))` for a well-formed `"ok"` entry,
/// `Ok(None)` for a well-formed non-ok entry (a failed run must never be
/// served from cache), and `Err` for anything malformed — the cache
/// treats every `Err` as a corrupt blob, i.e. a miss.
pub(crate) fn parse_blob(
    text: &str,
    spec: &RunSpec,
    key: RunKey,
) -> Result<Option<RunRecord>, String> {
    let line = text.lines().next().ok_or("empty blob")?;
    let entry = Parser::new(line)
        .value()
        .map_err(|e| format!("blob: {e}"))?;
    let got = parse_str(&entry, "key", 1)?;
    if got != key.to_hex() {
        return Err(format!("blob key {got} does not match {}", key.to_hex()));
    }
    if parse_str(&entry, "status", 1)? != "ok" {
        return Ok(None);
    }
    Ok(Some(parse_ok_record(&entry, spec, 1)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvfsPoint, ModePoint, SweepMatrix, WORKLOAD_SEED};
    use gals_workload::{Benchmark, Workload};

    fn specs() -> Vec<RunSpec> {
        SweepMatrix {
            benchmarks: vec![Workload::Profile(Benchmark::Adpcm)],
            modes: vec![
                ModePoint::Synchronous,
                ModePoint::Gals {
                    wakeup_filter: false,
                },
            ],
            dvfs: vec![DvfsPoint::nominal()],
            phase_seeds: vec![1],
            workload_seed: WORKLOAD_SEED,
            budget: 500,
            retries: 0,
            run_timeout_ms: None,
        }
        .expand()
    }

    fn identity(specs: &[RunSpec]) -> u64 {
        let keys: Vec<RunKey> = specs.iter().map(RunKey::of).collect();
        crate::stable_hash::matrix_identity(&keys)
    }

    fn header(specs: &[RunSpec]) -> String {
        format!(
            "{{\"journal\": \"gals-sweep\", \"journal_version\": 1, \
             \"schema_version\": {SCHEMA_VERSION}, \"matrix_hash\": \"{}\", \
             \"run_count\": {}}}",
            hex16(identity(specs)),
            specs.len()
        )
    }

    #[test]
    fn run_keys_separate_matrix_points_and_hash_is_stable() {
        let specs = specs();
        assert_ne!(RunKey::of(&specs[0]), RunKey::of(&specs[1]));
        assert_eq!(identity(&specs), identity(&specs));
        let mut other = specs.clone();
        other[1].budget += 1;
        assert_ne!(identity(&specs), identity(&other));
    }

    #[test]
    fn ok_entries_round_trip_through_the_line_format() {
        let specs = specs();
        let record = specs[0].run();
        assert!(record.status.is_ok());
        let key = RunKey::of(&specs[0]);
        let text = format!("{}\n{}\n", header(&specs), entry_line(&record, key));
        let slots = load_journal(&text, identity(&specs), &specs).expect("valid journal");
        assert_eq!(slots[0].as_ref(), Some(&record), "exact metric round-trip");
        assert!(slots[1].is_none());
    }

    #[test]
    fn torn_final_line_is_ignored_but_inner_corruption_is_loud() {
        let specs = specs();
        let record = specs[0].run();
        let key = RunKey::of(&specs[0]);
        let full = entry_line(&record, key);
        let torn = &full[..full.len() / 2];
        let text = format!("{}\n{torn}", header(&specs));
        let slots = load_journal(&text, identity(&specs), &specs).expect("torn tail tolerated");
        assert!(slots.iter().all(Option::is_none));

        let text = format!("{}\n{torn}\n{full}\n", header(&specs));
        let err = load_journal(&text, identity(&specs), &specs).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn mismatched_matrix_is_a_loud_error() {
        let specs = specs();
        let mut other = specs.clone();
        other[0].budget += 1;
        let err =
            load_journal(&format!("{}\n", header(&specs)), identity(&other), &other).unwrap_err();
        assert!(err.contains("does not match the current matrix"), "{err}");
        assert!(load_journal("", identity(&specs), &specs).is_err());
    }

    #[test]
    fn blobs_round_trip_and_reject_mismatched_keys_and_failed_runs() {
        let specs = specs();
        let record = specs[0].run();
        let key = RunKey::of(&specs[0]);
        let blob = format!("{}\n", entry_line(&record, key));
        assert_eq!(
            parse_blob(&blob, &specs[0], key).expect("valid blob"),
            Some(record.clone())
        );
        // A blob stored under one key never deserialises for another.
        let other = RunKey::of(&specs[1]);
        assert!(parse_blob(&blob, &specs[1], other).is_err());
        // Failed outcomes are well-formed but never served from cache.
        let failed = RunRecord {
            status: RunStatus::TimedOut,
            ..record
        };
        let blob = format!("{}\n", entry_line(&failed, key));
        assert_eq!(
            parse_blob(&blob, &specs[0], key).expect("well-formed"),
            None
        );
        // Truncation is an error (which the cache treats as a miss).
        assert!(parse_blob("", &specs[0], key).is_err());
        assert!(parse_blob("{\"ind", &specs[0], key).is_err());
    }
}
