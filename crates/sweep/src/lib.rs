//! # gals-sweep
//!
//! The parallel scenario-sweep harness: declare a cartesian experiment
//! matrix over the simulator's axes, fan the runs out across a
//! `std::thread` worker pool, and collect one machine-readable,
//! schema-versioned report — the shape in which the paper's core results
//! (and the retrospective ISCA reproducibility studies) present themselves:
//! many configurations, one results table.
//!
//! ## The matrix
//!
//! A [`SweepMatrix`] is the cartesian product of six axes:
//!
//! | axis | values |
//! |------|--------|
//! | workload | any subset of [`gals_workload::Workload`]: synthetic [`gals_workload::Benchmark`] profiles and/or `prog:`-prefixed `.gasm` kernels |
//! | clocking mode | [`ModePoint`]: synchronous, FIFO-GALS, or pausible — each optionally with the wakeup-filter / wakeup-coalescing features |
//! | handshake duration | carried inside pausible [`ModePoint`]s (one mode point per duration) |
//! | pausible transfer model | carried inside pausible [`ModePoint`]s: latched (full channel capacity) or rendezvous (single-entry ports, producers block) |
//! | DVFS point | [`DvfsPoint`]: per-domain slowdown factors with voltage tracking |
//! | phase seed | the GALS local-clock phase seed |
//!
//! One collapse rule keeps the product honest: a synchronous machine has a
//! single clock, so **non-uniform DVFS points are skipped on synchronous
//! mode points** (they would panic in `ProcessorConfig::with_dvfs`); every
//! other combination expands to exactly one [`RunSpec`].
//!
//! ## Determinism
//!
//! Each run is an independent, deterministic simulation (`simulate` is
//! bit-reproducible for a given program + configuration), and results are
//! stored by matrix index, not completion order. An N-worker sweep is
//! therefore **bit-identical to the serial sweep** — including the rendered
//! JSON — which `tests/sweep_determinism.rs` pins with a property test.
//!
//! ## Failure isolation
//!
//! One bad matrix point must not cost the other hundred: each run executes
//! on its own thread behind `catch_unwind` and a wall-clock deadline, and
//! its outcome is a [`RunStatus`] recorded *in* the report instead of an
//! abort. A panic becomes [`RunStatus::Panicked`] with the payload
//! message; a run that exceeds its deadline (default: 60 s + 1 ms per
//! budgeted instruction, override via [`SweepOptions::run_timeout`])
//! becomes [`RunStatus::TimedOut`] and its thread is detached; a machine
//! that stops making progress surfaces the simulator's structured
//! [`SimError::Deadlock`](gals_core::SimError) as
//! [`RunStatus::Deadlocked`] carrying the deterministic
//! [`gals_core::DeadlockReport`]. Failed records zero
//! their metrics, are excluded from the derived tables, and leave every
//! surviving run bit-identical to a failure-free sweep (pinned by
//! `tests/fault_tolerance.rs` under the `chaos` feature).
//!
//! ## Journal and resume
//!
//! With [`SweepOptions::journal`] set, the harness appends one JSONL line
//! per completed run (write-ahead, atomically appended, content-hash
//! keyed); [`SweepOptions::resume`] replays the journal, skips the runs
//! that already succeeded, and re-runs only the failed or missing points
//! — converging to output bit-identical to a clean sweep. Resuming
//! against a different matrix is a loud error (the journal header hashes
//! the matrix identity). [`SweepOptions::retries`] re-attempts failed
//! points in-process. See the `journal` module source for the format.
//!
//! ## Deterministic fault injection (`chaos` feature)
//!
//! Built with `--features chaos`, a `FaultPlan` forces chosen matrix
//! points to panic, wedge (a withheld writeback deadlocks the pipeline,
//! exercising the real watchdog path), or stall past the deadline — so
//! the whole failure-handling layer is testable end-to-end. With the
//! feature compiled in but no faults armed, output is bit-identical to a
//! build without it.
//!
//! ## Report schema (`SWEEP_results.json`)
//!
//! Hand-rolled JSON (the workspace carries no serde), versioned by
//! [`SCHEMA_VERSION`]:
//!
//! ```text
//! {
//!   "schema_version": 4,
//!   "tool": "gals-sweep",
//!   "budget": <u64>,            // committed-instruction budget per run
//!   "workload_seed": <u64>,
//!   "run_count": <usize>,
//!   "failed_count": <usize>,    // runs whose status is not "ok"
//!   "runs": [                   // one object per RunSpec, in matrix order
//!     { "index", "benchmark", "clocking", "mode",
//!       "handshake_ps",         // null outside pausible modes
//!       "pausible_model",       // "latched"/"rendezvous"; null otherwise
//!       "wakeup_filter", "coalesce_wakeup", "dvfs", "phase_seed",
//!       "committed", "fetched", "wrong_path_fetched", "exec_time_fs",
//!       "insts_per_ns", "mean_slip_fs", "fifo_slip_fraction",
//!       "misspeculation_rate", "channel_ops", "total_stretches",
//!       "stretch_time_fs", "rendezvous_block_cycles",
//!       "min_effective_ghz", "total_energy",
//!       "average_power",
//!       "status",               // "ok"/"panicked"/"timed_out"/"deadlocked"
//!       "panic_msg",            // panicked runs only
//!       "deadlock" }, ...       // deadlocked runs only: the structured
//!                               // DeadlockReport (trigger, parked clocks,
//!                               // channel occupancy, ROB/IQ heads, ...)
//!   ],
//!   "tables": {                 // derived paper-figure tables
//!     "pausible_slowdown_vs_handshake": [
//!       { "handshake_ps", "benchmarks", "seeds",
//!         "geomean_slowdown_vs_gals" (+ "_min"/"_max"),
//!         "geomean_slowdown_vs_sync" (+ "_min"/"_max") }, ... ],
//!     "rendezvous_vs_latched": [
//!       { "handshake_ps", "benchmarks", "seeds",
//!         "geomean_slowdown_vs_latched" (+ "_min"/"_max") }, ... ],
//!     "energy_perf_vs_frequency": [
//!       { "dvfs", "benchmarks", "seeds",
//!         "geomean_relative_performance" (+ "_min"/"_max"),
//!         "geomean_relative_energy" (+ "_min"/"_max"),
//!         "geomean_relative_power" (+ "_min"/"_max") }, ... ],
//!     "wakeup_feature_ablation": [
//!       { "mode", "baseline_mode", "benchmarks", "seeds",
//!         "geomean_channel_ops_ratio" (+ "_min"/"_max"),
//!         "geomean_stretch_ratio" (+ "_min"/"_max"),
//!         "geomean_exec_time_ratio" (+ "_min"/"_max") }, ... ]
//!   }
//! }
//! ```
//!
//! The derived tables are computed from runs at the **nominal DVFS
//! point**, aggregated over the **phase-seed axis**: each metric is the
//! per-seed geomean over benchmarks, reported as the mean across seeds
//! with `_min`/`_max` spread fields (confidence intervals for the paper
//! figures; all three coincide for a single-seed matrix). Axes missing
//! from a matrix simply produce empty tables (an empty or singleton
//! matrix still renders a valid, schema-versioned report).
//!
//! ## User-defined matrices
//!
//! `sweep --matrix FILE` loads a matrix from a JSON file instead of the
//! in-code builder — see [`SweepMatrix::from_json`] and the
//! `matrix_file` module docs for the format;
//! [`SweepMatrix::to_matrix_json`] renders the same format back
//! (round-trip pinned by a test).
//!
//! ## Entry point: requests and responses
//!
//! The one public entry point is [`sweep`], taking a [`SweepRequest`]
//! (*what* to simulate: the matrix; *how* to execute: [`SweepOptions`])
//! and returning a [`SweepResponse`] (the results plus how the answer
//! was produced: points actually simulated, cache hit/miss counters).
//! [`run_sweep`] and [`run_sweep_with`] survive as thin wrappers for the
//! historical signatures; new code should prefer [`sweep`].
//!
//! ```
//! use gals_sweep::{sweep, run_sweep, SweepMatrix, SweepRequest};
//!
//! let matrix = SweepMatrix::paper_default(500);
//! let serial = run_sweep(&matrix, 1);
//! let response = sweep(&SweepRequest::new(matrix)).unwrap();
//! assert_eq!(serial.to_json(), response.results.to_json());
//! ```
//!
//! ## Content-addressed result cache
//!
//! Every matrix point is a pure function of its spec, so each run has a
//! canonical identity — a [`RunKey`], the FNV-1a content hash of the
//! semantic run inputs (benchmark, mode point, DVFS, seeds, budget,
//! schema version, and the [`ProcessorConfig`] identity), explicitly
//! *excluding* execution policy (threads, retries, timeouts). With
//! [`SweepOptions::cache`] set, completed runs are stored as
//! atomically-written JSON blobs keyed by their `RunKey` and looked up
//! before simulating: a 116-point matrix sharing 100 points with a
//! previous run simulates only 16. A corrupt or truncated blob is a
//! miss, never an error. See the [`cache`] module ([`ResultCache`]) and
//! `docs/SWEEP_FORMAT.md` § "Cache & serve".
//!
//! ## Sweep as a service (`sweep --serve`)
//!
//! [`SweepServer`] runs the harness as a resident process: clients send
//! newline-delimited JSON sweep requests over a local TCP socket, the
//! server shards cache misses across the worker pool and streams per-run
//! records back incrementally (in matrix order) followed by the derived
//! tables — the payload is bit-identical whether served from cache or
//! freshly simulated. The server is concurrent: every connection gets
//! its own handler, all requests share one [`WorkerPool`] and one
//! [`ResultCache`] handle (the [`exec`] module's [`SweepExecutor`]),
//! requests carry optional deadlines and can be cancelled in-band, and
//! shutdown drains in-flight streams to their `done` trailers. See the
//! [`server`] module docs for the framing and the [`exec`] module for
//! the concurrency model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod exec;
mod journal;
mod matrix_file;
pub mod server;
pub mod stable_hash;

pub use cache::{CacheStats, Lookup, ResultCache};
pub use exec::{RunControl, ServedSweep, SweepExecutor, WorkerPool};
#[cfg(feature = "chaos")]
pub use server::ServerChaos;
pub use server::SweepServer;

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use gals_analysis::checks;
use gals_clocks::{Domain, PausibleModel};
use gals_core::{
    simulate, DeadlockReport, DvfsPlan, PortState, ProcessorConfig, SimError, SimLimits, SimReport,
};
use gals_events::Time;
use gals_workload::{generate_workload, Benchmark, Workload};

pub use gals_analysis::{Finding, Severity};

/// Version of the `SWEEP_results.json` schema produced by
/// [`SweepResults::to_json`]. Bump on any field rename/removal or meaning
/// change; additions are backward-compatible and keep the version.
///
/// v2: derived tables aggregate across the phase-seed axis — each metric
/// reports the mean across seeds (identical to v1 for single-seed
/// matrices) plus `*_min`/`*_max` spread fields and a `seeds` count.
///
/// v3: the pausible transfer-capacity axis. Each run gains
/// `pausible_model` (`"latched"`/`"rendezvous"`, `null` outside pausible
/// modes) and `rendezvous_block_cycles`; the plain-pausible selection rule
/// of `pausible_slowdown_vs_handshake` now means *latched* plain points
/// (the v2 meaning, stated explicitly), and a new
/// `rendezvous_vs_latched` table derives the latched-to-rendezvous
/// slowdown per handshake duration. See `docs/SWEEP_FORMAT.md`.
///
/// v4: fault-tolerant execution. The top level gains `failed_count`;
/// each run gains `status` (`"ok"`/`"panicked"`/`"timed_out"`/
/// `"deadlocked"`), plus `panic_msg` on panicked runs and the structured
/// `deadlock` object (the simulator's [`DeadlockReport`]) on deadlocked
/// runs. Failed runs zero their metric fields and are excluded from the
/// derived tables; a failure-free v4 report differs from v3 only by the
/// two new always-present fields.
///
/// v5: static analysis. Each run gains an optional `analysis` array (the
/// pre-flight [`Finding`]s for that point — omitted when clean, which is
/// every paper-matrix point), the `deadlock` object gains
/// `static_finding` (the analyzer's verdict code when the wedge was
/// flagged at submit, else `null`), and configuration rejections carry
/// the stable `GA…` finding code in their `panic_msg`. See
/// `docs/ANALYSIS.md` for the code table and `sweep --check` for the
/// zero-simulation matrix vetting path.
///
/// v6: program-driven workloads. The benchmark axis becomes a workload
/// axis: alongside the synthetic profiles, matrix files may name
/// checked-in `.gasm` kernels as `"prog:<kernel>"` (the run's
/// `benchmark` field carries that prefixed name). Kernel run keys are
/// content-addressed — the key canon's benchmark component becomes
/// [`Workload::identity`], which for kernels appends an FNV-1a hash of
/// the kernel source, so editing a `.gasm` file invalidates exactly the
/// cached results built from it. Profile-only reports differ from v5
/// only by the version number. See `docs/PROGRAM_FORMAT.md`.
pub const SCHEMA_VERSION: u32 = 6;

/// Default workload seed (matches the bench harness's "input set").
pub const WORKLOAD_SEED: u64 = 0x5EC9_5201;

/// Default phase seed for GALS/pausible local clocks (matches the bench
/// harness).
pub const PHASE_SEED: u64 = 2002;

/// One point on the matrix's clocking-mode axis. Pausible points carry the
/// handshake duration (the section-3.2 sweep variable) and the
/// wakeup-coalescing feature gate; GALS and pausible points carry the
/// producer-side wakeup-filter gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModePoint {
    /// The paper's synchronous base machine.
    Synchronous,
    /// The FIFO-GALS machine, optionally with the cross-cluster wakeup
    /// filter.
    Gals {
        /// Producer-side cross-cluster wakeup filter.
        wakeup_filter: bool,
    },
    /// The pausible-clock ablation machine.
    Pausible {
        /// Arbiter handshake duration in picoseconds.
        handshake_ps: u64,
        /// One wakeup handshake per cycle per link instead of one per tag.
        coalesce: bool,
        /// Producer-side cross-cluster wakeup filter.
        wakeup_filter: bool,
        /// Transfer-capacity model: `false` keeps full latch capacity on
        /// every crossing ([`gals_clocks::PausibleModel::Latched`]),
        /// `true` strips the crossings to single-entry rendezvous ports
        /// ([`gals_clocks::PausibleModel::Rendezvous`]) so producers
        /// block until the consumer pops.
        rendezvous: bool,
    },
}

impl ModePoint {
    /// The clocking family, for the report's `clocking` field.
    pub fn clocking(&self) -> &'static str {
        match self {
            ModePoint::Synchronous => "sync",
            ModePoint::Gals { .. } => "gals",
            ModePoint::Pausible { .. } => "pausible",
        }
    }

    /// A compact human-readable label, e.g. `pausible@300ps+coalesce`.
    pub fn label(&self) -> String {
        match *self {
            ModePoint::Synchronous => "sync".into(),
            ModePoint::Gals { wakeup_filter } => {
                format!("gals{}", if wakeup_filter { "+filter" } else { "" })
            }
            ModePoint::Pausible {
                handshake_ps,
                coalesce,
                wakeup_filter,
                rendezvous,
            } => format!(
                "pausible@{handshake_ps}ps{}{}{}",
                if rendezvous { "+rendezvous" } else { "" },
                if coalesce { "+coalesce" } else { "" },
                if wakeup_filter { "+filter" } else { "" }
            ),
        }
    }

    /// Handshake duration in picoseconds (pausible points only).
    pub fn handshake_ps(&self) -> Option<u64> {
        match self {
            ModePoint::Pausible { handshake_ps, .. } => Some(*handshake_ps),
            _ => None,
        }
    }

    fn wakeup_filter(&self) -> bool {
        match self {
            ModePoint::Synchronous => false,
            ModePoint::Gals { wakeup_filter } => *wakeup_filter,
            ModePoint::Pausible { wakeup_filter, .. } => *wakeup_filter,
        }
    }

    fn coalesce(&self) -> bool {
        matches!(self, ModePoint::Pausible { coalesce: true, .. })
    }

    /// The pausible transfer-capacity model (`"latched"`/`"rendezvous"`
    /// for pausible points, `None` otherwise) — the report's
    /// `pausible_model` field.
    pub fn pausible_model(&self) -> Option<&'static str> {
        match self {
            ModePoint::Pausible { rendezvous, .. } => {
                Some(if *rendezvous { "rendezvous" } else { "latched" })
            }
            _ => None,
        }
    }
}

/// One point on the matrix's DVFS axis: per-domain slowdown factors in
/// [`Domain::index`] order, with the supply voltage tracking the clock.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsPoint {
    /// Label used in the report (`nominal`, `uniform1.5x`, `fp2x`, ...).
    pub label: String,
    /// Per-domain slowdown factors (1.0 = nominal).
    pub slowdown: [f64; 5],
}

impl DvfsPoint {
    /// The unscaled machine.
    pub fn nominal() -> Self {
        DvfsPoint {
            label: "nominal".into(),
            slowdown: [1.0; 5],
        }
    }

    /// Every domain slowed by `factor` (valid on the synchronous machine
    /// too: a uniform plan is a single-clock frequency point).
    pub fn uniform(factor: f64) -> Self {
        DvfsPoint {
            label: format!("uniform{factor}x"),
            slowdown: [factor; 5],
        }
    }

    /// A labelled per-domain point.
    pub fn per_domain(label: impl Into<String>, slowdown: [f64; 5]) -> Self {
        DvfsPoint {
            label: label.into(),
            slowdown,
        }
    }

    /// True when every domain shares one factor (applicable to the
    /// synchronous machine).
    pub fn is_uniform(&self) -> bool {
        self.slowdown.iter().all(|&s| s == self.slowdown[0])
    }

    fn plan(&self) -> DvfsPlan {
        let mut plan = DvfsPlan::nominal();
        plan.slowdown = self.slowdown;
        plan
    }
}

/// A declarative cartesian experiment matrix. [`SweepMatrix::expand`]
/// produces the concrete [`RunSpec`] list; see the crate docs for the
/// collapse rule (non-uniform DVFS × synchronous is skipped).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepMatrix {
    /// Workload axis: synthetic benchmark profiles and/or checked-in
    /// `.gasm` program kernels.
    pub benchmarks: Vec<Workload>,
    /// Clocking-mode axis (handshake durations live inside pausible
    /// points).
    pub modes: Vec<ModePoint>,
    /// DVFS axis.
    pub dvfs: Vec<DvfsPoint>,
    /// GALS/pausible local-clock phase-seed axis (the synchronous machine
    /// has no phases, but the seed is still recorded per run).
    pub phase_seeds: Vec<u64>,
    /// Workload generation seed (shared by every run: all configurations
    /// execute identical "binaries", as in the paper).
    pub workload_seed: u64,
    /// Committed-instruction budget per run.
    pub budget: u64,
    /// Default extra attempts for failed points (execution policy, not
    /// matrix identity: excluded from the journal's matrix hash; the
    /// `sweep` binary's `--retries` flag overrides it).
    pub retries: u32,
    /// Default per-run wall-clock deadline in milliseconds (`None` = the
    /// harness's budget-scaled default). Execution policy, like
    /// [`SweepMatrix::retries`]; `--run-timeout-ms` overrides it.
    pub run_timeout_ms: Option<u64>,
}

impl SweepMatrix {
    /// The default paper matrix: the four section-3.2 ablation benchmarks ×
    /// {sync, FIFO-GALS, FIFO-GALS+filter, pausible @ 100/300/600 ps in
    /// both transfer models (latched and rendezvous), pausible @ 300 ps +
    /// coalescing} × {nominal, uniform 1.5×, FP 2×} DVFS points × one
    /// phase seed — covering the handshake-duration sweep, the
    /// latched-vs-rendezvous capacity axis, the DVFS energy/performance
    /// trade-off and both wakeup-path features head-to-head.
    pub fn paper_default(budget: u64) -> Self {
        SweepMatrix {
            benchmarks: vec![
                Workload::Profile(Benchmark::Gcc),
                Workload::Profile(Benchmark::Fpppp),
                Workload::Profile(Benchmark::Ijpeg),
                Workload::Profile(Benchmark::Compress),
            ],
            modes: vec![
                ModePoint::Synchronous,
                ModePoint::Gals {
                    wakeup_filter: false,
                },
                ModePoint::Gals {
                    wakeup_filter: true,
                },
                ModePoint::Pausible {
                    handshake_ps: 100,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous: false,
                },
                ModePoint::Pausible {
                    handshake_ps: 300,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous: false,
                },
                ModePoint::Pausible {
                    handshake_ps: 600,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous: false,
                },
                ModePoint::Pausible {
                    handshake_ps: 100,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous: true,
                },
                ModePoint::Pausible {
                    handshake_ps: 300,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous: true,
                },
                ModePoint::Pausible {
                    handshake_ps: 600,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous: true,
                },
                ModePoint::Pausible {
                    handshake_ps: 300,
                    coalesce: true,
                    wakeup_filter: false,
                    rendezvous: false,
                },
            ],
            dvfs: vec![
                DvfsPoint::nominal(),
                DvfsPoint::uniform(1.5),
                DvfsPoint::per_domain("fp2x", [1.0, 1.0, 1.0, 2.0, 1.0]),
            ],
            phase_seeds: vec![PHASE_SEED],
            workload_seed: WORKLOAD_SEED,
            budget,
            retries: 0,
            run_timeout_ms: None,
        }
    }

    /// Parses a user-defined matrix file (the `sweep --matrix FILE`
    /// format; see the `matrix_file` module source for the schema).
    /// `default_budget` fills in when the file carries no `budget`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first problem (malformed JSON,
    /// unknown benchmark/mode/dvfs, missing or empty axis).
    pub fn from_json(text: &str, default_budget: u64) -> Result<Self, String> {
        matrix_file::matrix_from_json(text, default_budget)
    }

    /// Renders the matrix in the `--matrix FILE` format;
    /// [`SweepMatrix::from_json`] parses it back to an equal matrix (the
    /// round-trip is pinned by a test). User-supplied DVFS labels are
    /// escaped; benchmark and mode names come from fixed ASCII sets.
    pub fn to_matrix_json(&self) -> String {
        let mut s = String::from("{\n");
        let quoted_list = |items: Vec<String>| -> String {
            items
                .into_iter()
                .map(|i| format!("\"{i}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            s,
            "  \"benchmarks\": [{}],",
            quoted_list(self.benchmarks.iter().map(|b| b.name()).collect())
        );
        let _ = writeln!(
            s,
            "  \"modes\": [{}],",
            quoted_list(self.modes.iter().map(|m| m.label()).collect())
        );
        s.push_str("  \"dvfs\": [\n");
        for (i, d) in self.dvfs.iter().enumerate() {
            let comma = if i + 1 == self.dvfs.len() { "" } else { "," };
            let slowdown = d
                .slowdown
                .iter()
                .map(|f| format!("{f}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                s,
                "    {{\"label\": \"{}\", \"slowdown\": [{slowdown}]}}{comma}",
                json_escape(&d.label)
            );
        }
        s.push_str("  ],\n");
        let _ = writeln!(
            s,
            "  \"phase_seeds\": [{}],",
            self.phase_seeds
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(s, "  \"workload_seed\": {},", self.workload_seed);
        let _ = writeln!(s, "  \"budget\": {},", self.budget);
        match self.run_timeout_ms {
            Some(ms) => {
                let _ = writeln!(s, "  \"retries\": {},", self.retries);
                let _ = writeln!(s, "  \"run_timeout_ms\": {ms}");
            }
            None => {
                let _ = writeln!(s, "  \"retries\": {}", self.retries);
            }
        }
        s.push_str("}\n");
        s
    }

    /// Expands the matrix into its concrete run list, in deterministic
    /// matrix order (benchmark-major, then mode, DVFS, seed).
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &benchmark in &self.benchmarks {
            for mode in &self.modes {
                for dvfs in &self.dvfs {
                    if matches!(mode, ModePoint::Synchronous) && !dvfs.is_uniform() {
                        continue; // a single clock cannot split domains
                    }
                    for &phase_seed in &self.phase_seeds {
                        specs.push(RunSpec {
                            index: specs.len(),
                            benchmark,
                            mode: *mode,
                            dvfs: dvfs.clone(),
                            phase_seed,
                            workload_seed: self.workload_seed,
                            budget: self.budget,
                        });
                    }
                }
            }
        }
        specs
    }
}

/// One fully-specified simulation run of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position in matrix order — the report's ordering key, independent of
    /// worker scheduling.
    pub index: usize,
    /// Workload (synthetic profile or program kernel).
    pub benchmark: Workload,
    /// Clocking/feature point.
    pub mode: ModePoint,
    /// DVFS point.
    pub dvfs: DvfsPoint,
    /// Local-clock phase seed.
    pub phase_seed: u64,
    /// Workload generation seed.
    pub workload_seed: u64,
    /// Committed-instruction budget.
    pub budget: u64,
}

impl RunSpec {
    /// The processor configuration this spec describes.
    pub fn config(&self) -> ProcessorConfig {
        let base = match self.mode {
            ModePoint::Synchronous => ProcessorConfig::synchronous_1ghz(),
            ModePoint::Gals { .. } => ProcessorConfig::gals_equal_1ghz(self.phase_seed),
            ModePoint::Pausible {
                handshake_ps,
                rendezvous,
                ..
            } => ProcessorConfig::pausible_equal_1ghz(self.phase_seed)
                .with_pausible_handshake(Time::from_ps(handshake_ps))
                .with_pausible_model(if rendezvous {
                    PausibleModel::Rendezvous
                } else {
                    PausibleModel::Latched
                }),
        };
        base.with_wakeup_filter(self.mode.wakeup_filter())
            .with_wakeup_coalescing(self.mode.coalesce())
            .with_dvfs(self.dvfs.plan())
    }

    /// Executes the run and summarises the report. A point that deadlocks
    /// (or fails static analysis) returns a failed record with the
    /// appropriate [`RunStatus`] instead of aborting; panic and
    /// wall-clock isolation live one layer up, in [`run_sweep_with`].
    pub fn run(&self) -> RunRecord {
        self.run_with_limits(SimLimits::insts(self.budget))
    }

    /// Static pre-flight findings for this point under its default run
    /// limits — a pure function of the spec (no simulation, no chaos
    /// arming), so it is recomputable from a journal line and identical
    /// across worker schedules.
    pub fn static_findings(&self) -> Vec<Finding> {
        self.static_findings_with(&SimLimits::insts(self.budget))
    }

    /// Static pre-flight findings under explicit limits (the `--check`
    /// path passes the chaos-armed limits so a planned wedge shows up in
    /// the finding table). DVFS range errors are caught *before* the
    /// config is built — the clock constructors assert on factors below
    /// 1.0, and an analysis pass must out-run the assert.
    pub fn static_findings_with(&self, limits: &SimLimits) -> Vec<Finding> {
        let plan = self.dvfs.plan();
        let mut pre = checks::dvfs(&plan.slowdown);
        pre.extend(checks::dvfs_uniform_on_sync(
            matches!(self.mode, ModePoint::Synchronous),
            &plan.slowdown,
        ));
        if !pre.is_empty() {
            return pre;
        }
        gals_core::analyze(&self.config(), limits).findings
    }

    fn run_with_limits(&self, limits: SimLimits) -> RunRecord {
        let program = generate_workload(self.benchmark, self.workload_seed);
        match simulate(&program, self.config(), limits) {
            Ok(report) => RunRecord::new(self, &report),
            Err(SimError::Deadlock(report)) => {
                RunRecord::failed(self, RunStatus::Deadlocked { report })
            }
            Err(e @ SimError::InvalidConfig(_)) => {
                RunRecord::failed(self, RunStatus::Panicked { msg: e.to_string() })
            }
        }
    }

    /// The canonical content identity of this run — [`RunKey::of`].
    pub fn key(&self) -> RunKey {
        RunKey::of(self)
    }

    /// The [`ProcessorConfig::stable_identity`] contribution to the run
    /// key. Mirrors [`RunSpec::static_findings_with`]'s pre-check: an
    /// invalid DVFS point would assert inside the clock constructors,
    /// and a key must be computable for *every* spec (the matrix hash
    /// covers points that will fail at run time too), so a statically
    /// rejected config is keyed by its rejection code instead.
    fn config_identity(&self) -> String {
        let plan = self.dvfs.plan();
        let mut pre = checks::dvfs(&plan.slowdown);
        pre.extend(checks::dvfs_uniform_on_sync(
            matches!(self.mode, ModePoint::Synchronous),
            &plan.slowdown,
        ));
        match pre.first() {
            None => self.config().stable_identity(),
            Some(f) => format!("invalid:{}", f.code),
        }
    }
}

/// The canonical content identity of one matrix point: an FNV-1a hash
/// (see [`stable_hash`]) of everything that determines the run's
/// simulation output — schema version, workload identity
/// ([`Workload::identity`]: the plain benchmark name for profiles, a
/// content-addressed `prog:<kernel>#<hash>` for `.gasm` kernels, so
/// editing a kernel source changes its keys), mode point (clocking
/// family, handshake duration, transfer model, wakeup features), DVFS
/// label and per-domain slowdowns, phase seed, workload seed, budget, and
/// the [`ProcessorConfig::stable_identity`] of the configuration the spec
/// builds. Two specs with equal keys produce bit-identical records.
///
/// Execution policy — thread count, retries, timeouts, journal paths —
/// is deliberately **excluded**: it changes how failures are handled and
/// how fast the answer arrives, never what is simulated. That split is
/// what makes the key safe to use as a cache address: the result cache
/// ([`ResultCache`]) names its blobs by `RunKey`, and the journal keys
/// its entries the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunKey(u64);

impl RunKey {
    /// Computes the content key of a run spec.
    pub fn of(spec: &RunSpec) -> RunKey {
        let canon = format!(
            "v{}|{}|{}|{}|{:?}|{}|{}|{}|{}",
            SCHEMA_VERSION,
            spec.benchmark.identity(),
            spec.mode.label(),
            spec.dvfs.label,
            spec.dvfs.slowdown,
            spec.phase_seed,
            spec.workload_seed,
            spec.budget,
            spec.config_identity(),
        );
        RunKey(stable_hash::fnv1a(canon.as_bytes()))
    }

    /// The raw 64-bit hash value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The canonical on-disk rendering: 16 lower-case hex digits
    /// ([`stable_hash::hex16`]) — the journal's `key` field and the
    /// cache's blob file stem.
    pub fn to_hex(self) -> String {
        stable_hash::hex16(self.0)
    }

    /// Parses the canonical 16-hex-digit rendering back; `None` for
    /// anything that is not exactly what [`RunKey::to_hex`] produces.
    pub fn from_hex(s: &str) -> Option<RunKey> {
        if s.len() != 16
            || !s
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunKey)
    }

    /// A key from a raw hash value (tests and the matrix-identity hash).
    #[cfg(test)]
    pub(crate) fn from_raw(raw: u64) -> RunKey {
        RunKey(raw)
    }
}

/// How one matrix point ended — recorded per run in the report, so one
/// bad point cannot cost the rest of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// The run completed and its metrics are valid.
    Ok,
    /// The run panicked; the record's metrics are zeroed.
    Panicked {
        /// The panic payload (or the configuration error), verbatim.
        msg: String,
    },
    /// The run exceeded its wall-clock deadline and was abandoned
    /// (its thread is detached; metrics are zeroed).
    TimedOut,
    /// The simulated machine stopped making progress; the boxed report is
    /// the simulator's deterministic snapshot of the stuck state.
    Deadlocked {
        /// Structured diagnostics — deterministic for a given point, so
        /// the wedge is reproducible from the report alone.
        report: Box<DeadlockReport>,
    },
}

impl RunStatus {
    /// True for a completed run with valid metrics.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Ok)
    }

    /// The report's stable `status` label.
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Panicked { .. } => "panicked",
            RunStatus::TimedOut => "timed_out",
            RunStatus::Deadlocked { .. } => "deadlocked",
        }
    }
}

/// The per-run summary recorded in the report — the [`SimReport`] fields
/// the paper's figures are computed from, flattened to plain numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The spec that produced this record.
    pub spec: RunSpec,
    /// How the run ended. Every metric below is zero unless this is
    /// [`RunStatus::Ok`].
    pub status: RunStatus,
    /// Static pre-flight findings for this point
    /// ([`RunSpec::static_findings`]) — empty for every clean config,
    /// which is the whole paper matrix. A pure function of the spec, so
    /// journal resume recomputes it bit-identically.
    pub analysis: Vec<Finding>,
    /// Committed (architectural) instructions.
    pub committed: u64,
    /// Total fetched (correct + wrong path).
    pub fetched: u64,
    /// Wrong-path fetches.
    pub wrong_path_fetched: u64,
    /// Simulated wall-clock time in femtoseconds.
    pub exec_time_fs: u64,
    /// Committed instructions per simulated nanosecond.
    pub insts_per_ns: f64,
    /// Mean fetch-to-commit latency in femtoseconds.
    pub mean_slip_fs: u64,
    /// Fraction of slip spent in inter-domain channels.
    pub fifo_slip_fraction: f64,
    /// Wrong-path fraction of issued instructions.
    pub misspeculation_rate: f64,
    /// Total channel pushes + pops.
    pub channel_ops: u64,
    /// Total clock-stretch events (pausible only).
    pub total_stretches: u64,
    /// Total stretch time across domains in femtoseconds.
    pub stretch_time_fs: u64,
    /// Total producer cycles blocked on occupied rendezvous ports
    /// (rendezvous pausible points only; zero everywhere else).
    pub rendezvous_block_cycles: u64,
    /// Slowest measured per-domain effective frequency in GHz.
    pub min_effective_ghz: f64,
    /// Total energy in relative units.
    pub total_energy: f64,
    /// Average power (energy units per second).
    pub average_power: f64,
}

impl RunRecord {
    fn new(spec: &RunSpec, r: &SimReport) -> Self {
        RunRecord {
            spec: spec.clone(),
            status: RunStatus::Ok,
            analysis: spec.static_findings(),
            committed: r.committed,
            fetched: r.fetched,
            wrong_path_fetched: r.wrong_path_fetched,
            exec_time_fs: r.exec_time.as_fs(),
            insts_per_ns: r.insts_per_ns(),
            mean_slip_fs: r.mean_slip().as_fs(),
            fifo_slip_fraction: r.fifo_slip_fraction(),
            misspeculation_rate: r.misspeculation_rate(),
            channel_ops: r.channel_ops,
            total_stretches: r.total_stretches(),
            stretch_time_fs: r.stretch_time.iter().map(|t| t.as_fs()).sum(),
            rendezvous_block_cycles: r.total_rendezvous_blocked(),
            min_effective_ghz: Domain::ALL
                .iter()
                .map(|&d| r.effective_ghz(d))
                .fold(f64::INFINITY, f64::min)
                .min(f64::MAX), // empty-run guard: never serialise inf
            total_energy: r.total_energy(),
            average_power: r.average_power(),
        }
    }

    /// A failed run: the status carries the diagnostics, every metric is
    /// zeroed (failed records are excluded from the derived tables).
    fn failed(spec: &RunSpec, status: RunStatus) -> Self {
        RunRecord {
            spec: spec.clone(),
            status,
            analysis: spec.static_findings(),
            committed: 0,
            fetched: 0,
            wrong_path_fetched: 0,
            exec_time_fs: 0,
            insts_per_ns: 0.0,
            mean_slip_fs: 0,
            fifo_slip_fraction: 0.0,
            misspeculation_rate: 0.0,
            channel_ops: 0,
            total_stretches: 0,
            stretch_time_fs: 0,
            rendezvous_block_cycles: 0,
            min_effective_ghz: 0.0,
            total_energy: 0.0,
            average_power: 0.0,
        }
    }

    /// The same metrics attributed to another spec with the same
    /// [`RunKey`]: equal keys mean equal semantic inputs, so the metric
    /// fields are bit-identical by the cache contract — only the spec
    /// (matrix index) and its static findings belong to the new owner.
    /// How the in-flight table shares one simulation across concurrent
    /// overlapping requests.
    pub(crate) fn rebase(&self, spec: &RunSpec) -> RunRecord {
        RunRecord {
            spec: spec.clone(),
            analysis: spec.static_findings(),
            ..self.clone()
        }
    }

    /// One run as a single-line JSON object — exactly the element the
    /// report's `runs` array contains (the report adds only indentation
    /// and commas), and the `"run"` payload a `sweep --serve` response
    /// streams. One rendering path means cached, resumed, fresh and
    /// served records are bit-identical by construction.
    pub fn to_json_object(&self) -> String {
        let mut s = String::new();
        let handshake = match self.spec.mode.handshake_ps() {
            Some(ps) => ps.to_string(),
            None => "null".into(),
        };
        let pausible_model = match self.spec.mode.pausible_model() {
            Some(m) => format!("\"{m}\""),
            None => "null".into(),
        };
        let _ = write!(
            s,
            "{{\"index\": {}, \"benchmark\": \"{}\", \"clocking\": \"{}\", \
             \"mode\": \"{}\", \"handshake_ps\": {}, \"pausible_model\": {}, \
             \"wakeup_filter\": {}, \
             \"coalesce_wakeup\": {}, \"dvfs\": \"{}\", \"phase_seed\": {}, \
             \"committed\": {}, \"fetched\": {}, \"wrong_path_fetched\": {}, \
             \"exec_time_fs\": {}, \"insts_per_ns\": {:.6}, \"mean_slip_fs\": {}, \
             \"fifo_slip_fraction\": {:.6}, \"misspeculation_rate\": {:.6}, \
             \"channel_ops\": {}, \"total_stretches\": {}, \"stretch_time_fs\": {}, \
             \"rendezvous_block_cycles\": {}, \
             \"min_effective_ghz\": {:.6}, \"total_energy\": {:.3}, \
             \"average_power\": {:.6}",
            self.spec.index,
            self.spec.benchmark.name(),
            self.spec.mode.clocking(),
            self.spec.mode.label(),
            handshake,
            pausible_model,
            self.spec.mode.wakeup_filter(),
            self.spec.mode.coalesce(),
            self.spec.dvfs.label,
            self.spec.phase_seed,
            self.committed,
            self.fetched,
            self.wrong_path_fetched,
            self.exec_time_fs,
            self.insts_per_ns,
            self.mean_slip_fs,
            self.fifo_slip_fraction,
            self.misspeculation_rate,
            self.channel_ops,
            self.total_stretches,
            self.stretch_time_fs,
            self.rendezvous_block_cycles,
            self.min_effective_ghz,
            self.total_energy,
            self.average_power,
        );
        let _ = write!(s, ", \"status\": \"{}\"", self.status.label());
        match &self.status {
            RunStatus::Panicked { msg } => {
                let _ = write!(s, ", \"panic_msg\": \"{}\"", json_escape(msg));
            }
            RunStatus::Deadlocked { report } => {
                let _ = write!(s, ", \"deadlock\": {}", deadlock_json(report));
            }
            RunStatus::Ok | RunStatus::TimedOut => {}
        }
        // v5: the static analyzer's pre-flight findings, omitted when
        // clean so a clean sweep's report shape matches v4 plus nothing.
        if !self.analysis.is_empty() {
            let list: Vec<String> = self.analysis.iter().map(|f| f.json()).collect();
            let _ = write!(s, ", \"analysis\": [{}]", list.join(", "));
        }
        s.push('}');
        s
    }
}

/// The complete result of one sweep: every run record in matrix order,
/// plus the matrix metadata the report echoes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// The matrix that was run.
    pub matrix: SweepMatrix,
    /// Run records, ordered by [`RunSpec::index`].
    pub runs: Vec<RunRecord>,
}

/// Execution policy for a sweep: worker count, failure handling, the
/// journal, and the result cache. The matrix stays purely declarative —
/// these knobs change how a sweep executes, never what it simulates
/// (none of them reaches a [`RunKey`]).
///
/// `#[non_exhaustive]`: construct through the builder —
/// `SweepOptions::new().threads(8).cache(dir)` — so future policy fields
/// stop being breaking changes.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SweepOptions {
    /// Worker threads (0 or 1 = serial). The result is bit-identical for
    /// every value.
    pub threads: usize,
    /// Extra in-process attempts for a failed point (the last attempt's
    /// outcome is recorded).
    pub retries: u32,
    /// Per-run wall-clock deadline; `None` uses the budget-scaled default
    /// (60 s + 1 ms per budgeted instruction).
    pub run_timeout: Option<Duration>,
    /// Write-ahead journal path: one atomically-appended JSONL line per
    /// completed run (see the `journal` module source for the format).
    pub journal: Option<PathBuf>,
    /// Replay the journal first and re-run only failed or missing points.
    /// Requires [`SweepOptions::journal`]; a journal written for a
    /// different matrix is a loud error. A missing journal file starts a
    /// fresh (fully journaled) sweep.
    pub resume: bool,
    /// Content-addressed result cache directory ([`ResultCache`]): looked
    /// up before simulating, written after every completed run. `None`
    /// disables caching. Composes with [`SweepOptions::resume`] — the
    /// journal pre-fills first, the cache covers the rest.
    pub cache: Option<PathBuf>,
    /// Bound on the number of cached blobs; storing past it evicts
    /// deterministically ([`ResultCache`] docs). `None` = unbounded.
    pub cache_capacity: Option<usize>,
    /// Deterministic fault injection (the `chaos` feature).
    #[cfg(feature = "chaos")]
    pub faults: FaultPlan,
}

impl SweepOptions {
    /// Default options: host-serial, no retries, budget-scaled deadline,
    /// no journal, no cache. The start of every builder chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the extra in-process attempts per failed point.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-run wall-clock deadline.
    #[must_use]
    pub fn run_timeout(mut self, timeout: Duration) -> Self {
        self.run_timeout = Some(timeout);
        self
    }

    /// Sets the write-ahead journal path.
    #[must_use]
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Enables (or disables) resuming from the journal.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the content-addressed result cache directory.
    #[must_use]
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(dir.into());
        self
    }

    /// Bounds the cache to at most `capacity` blobs.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Arms a deterministic fault-injection plan (the `chaos` feature).
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Deterministic fault injection: which matrix points to sabotage, and
/// how. Only compiled under the `chaos` feature; an empty (default) plan
/// leaves the sweep bit-identical to a non-chaos build.
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Matrix indices that panic (message:
    /// `chaos: injected panic at matrix point <i>`).
    pub panic_at: Vec<usize>,
    /// Matrix indices whose pipeline wedges: the completion of one chosen
    /// instruction is withheld ([`gals_core::ChaosFaults`]), so the ROB
    /// head never retires and the real deadlock detectors fire.
    pub wedge_at: Vec<usize>,
    /// `(index, milliseconds)` pairs: stall the run past its wall-clock
    /// deadline to force [`RunStatus::TimedOut`].
    pub stall_at: Vec<(usize, u64)>,
    /// Sequence-number threshold past which a wedged run withholds every
    /// writeback ([`gals_core::ChaosFaults::withhold_writeback`]). Must be
    /// at or below the run budget — sequence numbers grow at least as
    /// fast as commits, so that guarantees a correct-path instruction
    /// trips the threshold and wedges commit before the budget is met;
    /// past the budget the fault may never arm (then a no-op).
    pub wedge_after_seq: u64,
    /// Watchdog window (slow-domain cycles) applied to wedged runs so the
    /// wedge is detected promptly even when a domain keeps ticking.
    pub wedge_watchdog_cycles: u64,
}

#[cfg(feature = "chaos")]
impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            panic_at: Vec::new(),
            wedge_at: Vec::new(),
            stall_at: Vec::new(),
            wedge_after_seq: 200,
            wedge_watchdog_cycles: 5_000,
        }
    }
}

#[cfg(feature = "chaos")]
impl FaultPlan {
    /// True when no fault is armed.
    pub fn is_empty(&self) -> bool {
        self.panic_at.is_empty() && self.wedge_at.is_empty() && self.stall_at.is_empty()
    }

    /// A seeded plan choosing `panics` + `wedges` distinct victim indices
    /// out of `run_count` (splitmix64; deterministic for a given seed).
    pub fn seeded(seed: u64, run_count: usize, panics: usize, wedges: usize) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut chosen: Vec<usize> = Vec::new();
        let want = (panics + wedges).min(run_count);
        while chosen.len() < want {
            let i = (next() % run_count.max(1) as u64) as usize;
            if !chosen.contains(&i) {
                chosen.push(i);
            }
        }
        let panic_at: Vec<usize> = chosen.iter().copied().take(panics).collect();
        let wedge_at: Vec<usize> = chosen.iter().copied().skip(panics).collect();
        FaultPlan {
            panic_at,
            wedge_at,
            ..FaultPlan::default()
        }
    }

    fn stall_ms(&self, index: usize) -> u64 {
        self.stall_at
            .iter()
            .find(|(i, _)| *i == index)
            .map_or(0, |&(_, ms)| ms)
    }
}

/// The budget-scaled default per-run deadline: a generous floor plus a
/// term linear in the simulated work.
fn default_run_timeout(budget: u64) -> Duration {
    Duration::from_millis(60_000 + budget)
}

/// Locks a mutex, recovering from poisoning: a worker panic mid-update
/// can only leave a slot `None` (re-runnable), never torn, because slot
/// assignment is a single `Option` store.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// One fully isolated run attempt: its own thread (panics cannot take the
/// worker down), `catch_unwind` (the payload becomes the record), and a
/// wall-clock deadline (an overrunning thread is detached, not joined).
fn run_isolated(
    spec: &RunSpec,
    limits: SimLimits,
    timeout: Duration,
    inject_panic: bool,
    stall_ms: u64,
) -> RunRecord {
    let (tx, rx) = mpsc::channel();
    let spec_owned = spec.clone();
    let handle = std::thread::Builder::new()
        .name(format!("sweep-run-{}", spec.index))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if stall_ms > 0 {
                    std::thread::sleep(Duration::from_millis(stall_ms));
                }
                if inject_panic {
                    panic!("chaos: injected panic at matrix point {}", spec_owned.index);
                }
                spec_owned.run_with_limits(limits)
            }));
            // The receiver may be gone already (deadline hit): that run
            // was recorded as timed out; its late result is dropped.
            let _ = tx.send(outcome);
        })
        .expect("cannot spawn sweep run thread");
    match rx.recv_timeout(timeout) {
        Ok(Ok(record)) => {
            let _ = handle.join();
            record
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            RunRecord::failed(
                spec,
                RunStatus::Panicked {
                    msg: panic_message(payload.as_ref()),
                },
            )
        }
        Err(_) => RunRecord::failed(spec, RunStatus::TimedOut),
    }
}

/// The limits one matrix point actually runs under: the spec's budget,
/// with any armed chaos faults applied (chaos builds only). Shared by
/// the execution path ([`run_point`]) and the static path
/// ([`check_matrix`]), so `sweep --check` vets exactly the limits the
/// sweep would simulate with — a planned wedge shows up in the table.
fn armed_limits(spec: &RunSpec, opts: &SweepOptions) -> SimLimits {
    #[cfg_attr(not(feature = "chaos"), allow(unused_mut))]
    let mut limits = SimLimits::insts(spec.budget);
    #[cfg(not(feature = "chaos"))]
    let _ = opts;
    #[cfg(feature = "chaos")]
    if opts.faults.wedge_at.contains(&spec.index) {
        limits.chaos.withhold_writeback = Some(opts.faults.wedge_after_seq);
        limits.watchdog_cycles = opts.faults.wedge_watchdog_cycles;
    }
    limits
}

/// Statically vets every point of a matrix without simulating a cycle:
/// each spec is analyzed under the limits it would actually run with
/// (including any armed chaos faults) and its findings returned in
/// matrix order — milliseconds for the full paper matrix. Powers
/// `sweep --check` (exit code 4 on any warning-or-worse finding).
pub fn check_matrix(matrix: &SweepMatrix, opts: &SweepOptions) -> Vec<(RunSpec, Vec<Finding>)> {
    matrix
        .expand()
        .into_iter()
        .map(|spec| {
            let limits = armed_limits(&spec, opts);
            let findings = spec.static_findings_with(&limits);
            (spec, findings)
        })
        .collect()
}

/// One matrix point end to end: fault arming (chaos builds), the isolated
/// attempt, and the retry loop. Returns the final outcome.
fn run_point(spec: &RunSpec, opts: &SweepOptions, timeout: Duration) -> RunRecord {
    let limits = armed_limits(spec, opts);
    #[cfg(feature = "chaos")]
    let (inject_panic, stall_ms) = (
        opts.faults.panic_at.contains(&spec.index),
        opts.faults.stall_ms(spec.index),
    );
    #[cfg(not(feature = "chaos"))]
    let (inject_panic, stall_ms) = (false, 0u64);

    let mut attempt = 0;
    loop {
        let record = run_isolated(spec, limits, timeout, inject_panic, stall_ms);
        if record.status.is_ok() || attempt >= opts.retries {
            return record;
        }
        attempt += 1;
    }
}

/// A complete sweep request: the declarative matrix (what to simulate)
/// plus the execution policy (how to run it). The one public entry point
/// — [`sweep`] and [`sweep_streaming`] consume it, and `sweep --serve`
/// accepts its JSON rendering over a socket.
///
/// `#[non_exhaustive]`: construct with
/// `SweepRequest::new(matrix).with_options(...)`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepRequest {
    /// The matrix to run. Only this (plus the schema version) reaches a
    /// [`RunKey`] — two requests with equal matrices share cache entries
    /// regardless of policy.
    pub matrix: SweepMatrix,
    /// Execution policy: threads, retries, deadline, journal, cache.
    pub options: SweepOptions,
}

impl SweepRequest {
    /// A request for `matrix` under default [`SweepOptions`].
    pub fn new(matrix: SweepMatrix) -> Self {
        SweepRequest {
            matrix,
            options: SweepOptions::default(),
        }
    }

    /// Replaces the execution policy.
    #[must_use]
    pub fn with_options(mut self, options: SweepOptions) -> Self {
        self.options = options;
        self
    }
}

/// What a sweep produced, and how: the results themselves plus the
/// provenance split between freshly simulated points and cache traffic.
/// [`SweepResponse::results`] is bit-identical however the records were
/// obtained (fresh, cached, journal-resumed, any thread count).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepResponse {
    /// Every run record in matrix order, plus the derived tables
    /// (rendered via [`SweepResults::to_json`] / `tables_json`).
    pub results: SweepResults,
    /// Points actually simulated by this call (neither journal-prefilled
    /// nor served from cache).
    pub simulated: usize,
    /// Result-cache traffic for this call; all-zero when no cache is
    /// configured.
    pub cache: CacheStats,
}

/// Runs every point of `matrix` across a pool of `threads` workers
/// (clamped to at least one) and returns the records in deterministic
/// matrix order. Work is handed out through an atomic cursor; each worker
/// stores its record at the run's matrix index, so the result — and the
/// JSON rendered from it — is bit-identical for every thread count.
///
/// Thin wrapper over [`sweep`], kept for convenience; new callers should
/// prefer building a [`SweepRequest`]. Failed points are isolated and
/// recorded per run rather than aborting the sweep.
pub fn run_sweep(matrix: &SweepMatrix, threads: usize) -> SweepResults {
    run_sweep_with(matrix, &SweepOptions::new().threads(threads))
        .expect("a journal-less, cache-less sweep has no fallible I/O")
}

/// [`run_sweep`] with full execution policy: panic/timeout isolation per
/// run, in-process retries, the write-ahead journal, `resume`, and the
/// result cache.
///
/// Thin wrapper over [`sweep`] that drops the provenance counters; new
/// callers should prefer [`sweep`], which also reports cache traffic.
///
/// Every surviving run is bit-identical to the same run in a serial,
/// failure-free sweep; a resumed sweep that converges (all points `ok`)
/// renders JSON bit-identical to a clean sweep's.
///
/// # Errors
///
/// See [`sweep`].
pub fn run_sweep_with(matrix: &SweepMatrix, opts: &SweepOptions) -> Result<SweepResults, String> {
    sweep(&SweepRequest::new(matrix.clone()).with_options(opts.clone())).map(|r| r.results)
}

/// Executes a [`SweepRequest`] and returns the complete [`SweepResponse`].
/// Equivalent to [`sweep_streaming`] with a no-op sink.
///
/// # Errors
///
/// Journal or cache I/O problems, and on `resume`: a journal whose matrix
/// hash, schema version, or entry keys do not match the current matrix (a
/// journal from a different sweep must never silently merge), or `resume`
/// without a journal path. Simulation failures are *not* errors — they
/// are per-run [`RunStatus`] records.
pub fn sweep(request: &SweepRequest) -> Result<SweepResponse, String> {
    sweep_streaming(request, &mut |_| {})
}

/// Executes a [`SweepRequest`], handing each completed [`RunRecord`] to
/// `sink` *in matrix order* as soon as it (and every record before it) is
/// available — the streaming backbone of `sweep --serve`. The sink runs
/// on the calling thread and never blocks the worker pool: records are
/// cloned out under the slot lock, then delivered outside it.
///
/// Record provenance is invisible to the sink: a cached or
/// journal-prefilled record is bit-identical to a freshly simulated one.
///
/// # Errors
///
/// See [`sweep`]. The sink is infallible; socket-level write errors are
/// the server's concern.
pub fn sweep_streaming(
    request: &SweepRequest,
    sink: &mut dyn FnMut(&RunRecord),
) -> Result<SweepResponse, String> {
    let threads = request
        .options
        .threads
        .max(1)
        .min(request.matrix.expand().len().max(1));
    // A transient executor: the same engine `sweep --serve` keeps
    // resident, torn down (pool joined) when this call returns. With
    // one request and a fresh cache handle, its per-request tallies are
    // exactly the handle's own counters, so the response is identical
    // to the pre-pool implementation's.
    let executor = exec::SweepExecutor::new(threads, None);
    let served = executor.run(request, sink, &exec::RunControl::unbounded())?;
    Ok(served
        .response
        .expect("an unbounded RunControl never cancels"))
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes and the control characters the matrix parser understands).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a [`DeadlockReport`] as the report's structured `deadlock`
/// object. Channel/port occupancies use the simulator's compact
/// `len/capacity[r]` notation (`r` marks a rendezvous port).
fn deadlock_json(r: &DeadlockReport) -> String {
    fn nums<T: std::fmt::Display>(xs: &[T]) -> String {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
    fn ports(ps: &[PortState]) -> String {
        ps.iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    }
    fn opt(o: Option<u64>) -> String {
        o.map_or_else(|| "null".into(), |v| v.to_string())
    }
    format!(
        "{{\"trigger\": \"{}\", \"time_fs\": {}, \"last_commit_fs\": {}, \
         \"watchdog_cycles\": {}, \"committed\": {}, \"parked\": [{}], \
         \"rob_len\": {}, \"rob_head_seq\": {}, \"decode_buf_len\": {}, \
         \"iq_len\": [{}], \"writeback_pending_len\": [{}], \
         \"ch_fetch_decode\": \"{}\", \"ch_dispatch\": [{}], \
         \"ch_complete\": [{}], \"ch_redirect\": \"{}\", \
         \"ch_wakeup_total\": {}, \"rendezvous_blocked\": [{}], \
         \"pending_recovery\": {}, \"fetch_halted\": {}, \"wrong_path\": {}, \
         \"static_finding\": {}}}",
        r.trigger.as_str(),
        r.now.as_fs(),
        r.last_commit_time.as_fs(),
        r.watchdog_cycles,
        r.committed,
        nums(&r.parked),
        r.rob_len,
        opt(r.rob_head_seq),
        r.decode_buf_len,
        nums(&r.iq_len),
        nums(&r.writeback_pending_len),
        r.ch_fetch_decode,
        ports(&r.ch_dispatch),
        ports(&r.ch_complete),
        r.ch_redirect,
        r.ch_wakeup_total,
        nums(&r.rendezvous_blocked),
        opt(r.pending_recovery),
        r.fetch_halted,
        r.wrong_path,
        r.static_finding
            .as_ref()
            .map_or_else(|| "null".into(), |c| format!("\"{}\"", json_escape(c))),
    )
}

/// Geometric mean; `None` for an empty slice or non-positive values.
fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0 || x.is_nan()) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Min/mean/max of a per-seed metric across the phase-seed axis (equal
/// values for a single-seed matrix).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SeedSpread {
    min: f64,
    mean: f64,
    max: f64,
}

fn spread(values: &[f64]) -> Option<SeedSpread> {
    if values.is_empty() {
        return None;
    }
    Some(SeedSpread {
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        mean: values.iter().sum::<f64>() / values.len() as f64,
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    })
}

fn spread_fields(s: &mut String, name: &str, v: Option<SeedSpread>) {
    match v {
        Some(sp) => {
            let _ = write!(
                s,
                "\"{name}\": {:.6}, \"{name}_min\": {:.6}, \"{name}_max\": {:.6}",
                sp.mean, sp.min, sp.max
            );
        }
        None => {
            let _ = write!(
                s,
                "\"{name}\": null, \"{name}_min\": null, \"{name}_max\": null"
            );
        }
    }
}

impl SweepResults {
    /// The record of `(benchmark, mode, dvfs-label)` at one phase seed, if
    /// that matrix point ran *and succeeded* — failed runs carry zeroed
    /// metrics and must never contribute to a derived table.
    fn find(
        &self,
        benchmark: Workload,
        mode: ModePoint,
        dvfs_label: &str,
        seed: u64,
    ) -> Option<&RunRecord> {
        self.runs.iter().find(|r| {
            r.status.is_ok()
                && r.spec.benchmark == benchmark
                && r.spec.mode == mode
                && r.spec.dvfs.label == dvfs_label
                && r.spec.phase_seed == seed
        })
    }

    /// Number of runs that did not end [`RunStatus::Ok`] (the report's
    /// `failed_count`; the `sweep` binary exits non-zero when positive).
    pub fn failed_count(&self) -> usize {
        self.runs.iter().filter(|r| !r.status.is_ok()).count()
    }

    /// Geomean over benchmarks, at one phase seed, of a per-benchmark
    /// ratio between two modes at nominal DVFS:
    /// `metric(mode) / metric(baseline)`.
    fn mode_ratio_at(
        &self,
        seed: u64,
        mode: ModePoint,
        baseline: ModePoint,
        metric: &impl Fn(&RunRecord) -> f64,
    ) -> Option<(f64, usize)> {
        let ratios: Vec<f64> = self
            .matrix
            .benchmarks
            .iter()
            .filter_map(|&b| {
                let num = metric(self.find(b, mode, "nominal", seed)?);
                let den = metric(self.find(b, baseline, "nominal", seed)?);
                (den > 0.0).then_some(num / den)
            })
            .collect();
        geomean(&ratios).map(|g| (g, ratios.len()))
    }

    /// Min/mean/max across phase seeds of the per-seed
    /// [`SweepResults::mode_ratio_at`] geomean, with the benchmark count
    /// of the first contributing seed.
    fn mode_ratio(
        &self,
        mode: ModePoint,
        baseline: ModePoint,
        metric: impl Fn(&RunRecord) -> f64,
    ) -> Option<(SeedSpread, usize)> {
        let mut per_seed = Vec::new();
        let mut benchmarks = 0;
        for &seed in &self.matrix.phase_seeds {
            if let Some((g, n)) = self.mode_ratio_at(seed, mode, baseline, &metric) {
                per_seed.push(g);
                if benchmarks == 0 {
                    benchmarks = n;
                }
            }
        }
        spread(&per_seed).map(|sp| (sp, benchmarks))
    }

    /// Number of phase seeds in the matrix (echoed into the tables).
    fn seed_count(&self) -> usize {
        self.matrix.phase_seeds.len()
    }

    /// Renders the schema-versioned JSON report (see the crate docs for
    /// the schema).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"tool\": \"gals-sweep\",");
        let _ = writeln!(s, "  \"budget\": {},", self.matrix.budget);
        let _ = writeln!(s, "  \"workload_seed\": {},", self.matrix.workload_seed);
        let _ = writeln!(s, "  \"run_count\": {},", self.runs.len());
        let _ = writeln!(s, "  \"failed_count\": {},", self.failed_count());
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            s.push_str("    ");
            s.push_str(&r.to_json_object());
            s.push_str(comma);
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str("  \"tables\": {\n");
        self.tables_body(&mut s);
        s.push_str("  }\n}\n");
        s
    }

    /// The four derived tables as one compact (single-line) JSON object —
    /// the `"tables"` payload of a `sweep --serve` response. Rendered by
    /// the same code as [`SweepResults::to_json`]'s `tables` member, so
    /// the two can never disagree.
    pub fn tables_json(&self) -> String {
        let mut body = String::new();
        self.tables_body(&mut body);
        let mut out = String::from("{");
        for line in body.lines() {
            out.push_str(line.trim_start());
        }
        out.push('}');
        out
    }

    /// Writes the members of the report's `tables` object (indented
    /// multi-line form, no surrounding braces).
    fn tables_body(&self, s: &mut String) {
        self.write_handshake_table(s);
        self.write_rendezvous_table(s);
        self.write_dvfs_table(s);
        self.write_feature_table(s);
    }

    /// Figure: pausible slowdown vs handshake duration (nominal DVFS,
    /// plain *latched* pausible points), against both the FIFO-GALS and
    /// synchronous baselines; min/mean/max across phase seeds.
    fn write_handshake_table(&self, s: &mut String) {
        s.push_str("    \"pausible_slowdown_vs_handshake\": [\n");
        let mut rows = Vec::new();
        for mode in &self.matrix.modes {
            let ModePoint::Pausible {
                handshake_ps,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: false,
            } = *mode
            else {
                continue;
            };
            let gals = ModePoint::Gals {
                wakeup_filter: false,
            };
            let exec = |r: &RunRecord| r.exec_time_fs as f64;
            let Some((vs_gals, n)) = self.mode_ratio(*mode, gals, exec) else {
                continue;
            };
            let vs_sync = self
                .mode_ratio(*mode, ModePoint::Synchronous, exec)
                .map(|(g, _)| g);
            let mut row = format!(
                "      {{\"handshake_ps\": {handshake_ps}, \"benchmarks\": {n}, \
                 \"seeds\": {}, ",
                self.seed_count()
            );
            spread_fields(&mut row, "geomean_slowdown_vs_gals", Some(vs_gals));
            row.push_str(", ");
            spread_fields(&mut row, "geomean_slowdown_vs_sync", vs_sync);
            row.push('}');
            rows.push(row);
        }
        s.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            s.push('\n');
        }
        s.push_str("    ],\n");
    }

    /// Table: the capacity cost of unbuffered pausible transfers — for
    /// each handshake duration with both plain transfer-model points in
    /// the matrix, the execution-time ratio of the rendezvous machine
    /// over the latched one (nominal DVFS, geomean over benchmarks,
    /// min/mean/max across phase seeds).
    fn write_rendezvous_table(&self, s: &mut String) {
        s.push_str("    \"rendezvous_vs_latched\": [\n");
        let mut rows = Vec::new();
        for mode in &self.matrix.modes {
            let ModePoint::Pausible {
                handshake_ps,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: true,
            } = *mode
            else {
                continue;
            };
            let latched = ModePoint::Pausible {
                handshake_ps,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: false,
            };
            if !self.matrix.modes.contains(&latched) {
                continue;
            }
            let Some((vs_latched, n)) = self.mode_ratio(*mode, latched, |r| r.exec_time_fs as f64)
            else {
                continue;
            };
            let mut row = format!(
                "      {{\"handshake_ps\": {handshake_ps}, \"benchmarks\": {n}, \
                 \"seeds\": {}, ",
                self.seed_count()
            );
            spread_fields(&mut row, "geomean_slowdown_vs_latched", Some(vs_latched));
            row.push('}');
            rows.push(row);
        }
        s.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            s.push('\n');
        }
        s.push_str("    ],\n");
    }

    /// Figure: energy/performance vs frequency point (the DVFS axis on the
    /// plain FIFO-GALS machine, relative to its nominal point); min/mean/
    /// max across phase seeds.
    fn write_dvfs_table(&self, s: &mut String) {
        s.push_str("    \"energy_perf_vs_frequency\": [\n");
        let gals = ModePoint::Gals {
            wakeup_filter: false,
        };
        let mut rows = Vec::new();
        for point in &self.matrix.dvfs {
            let mut perf_seeds = Vec::new();
            let mut energy_seeds = Vec::new();
            let mut power_seeds = Vec::new();
            let mut benchmarks = 0;
            for &seed in &self.matrix.phase_seeds {
                let mut perf = Vec::new();
                let mut energy = Vec::new();
                let mut power = Vec::new();
                for &b in &self.matrix.benchmarks {
                    let (Some(run), Some(nominal)) = (
                        self.find(b, gals, &point.label, seed),
                        self.find(b, gals, "nominal", seed),
                    ) else {
                        continue;
                    };
                    if run.exec_time_fs == 0 || nominal.exec_time_fs == 0 {
                        continue;
                    }
                    // Relative performance: nominal time over scaled time
                    // (1.0 = nominal speed, < 1 = slower).
                    perf.push(nominal.exec_time_fs as f64 / run.exec_time_fs as f64);
                    if nominal.total_energy > 0.0 {
                        energy.push(run.total_energy / nominal.total_energy);
                    }
                    if nominal.average_power > 0.0 {
                        power.push(run.average_power / nominal.average_power);
                    }
                }
                let (Some(p), Some(e), Some(w)) =
                    (geomean(&perf), geomean(&energy), geomean(&power))
                else {
                    continue;
                };
                perf_seeds.push(p);
                energy_seeds.push(e);
                power_seeds.push(w);
                if benchmarks == 0 {
                    benchmarks = perf.len();
                }
            }
            let (Some(p), Some(e), Some(w)) = (
                spread(&perf_seeds),
                spread(&energy_seeds),
                spread(&power_seeds),
            ) else {
                continue;
            };
            let mut row = format!(
                "      {{\"dvfs\": \"{}\", \"benchmarks\": {benchmarks}, \"seeds\": {}, ",
                point.label,
                self.seed_count()
            );
            spread_fields(&mut row, "geomean_relative_performance", Some(p));
            row.push_str(", ");
            spread_fields(&mut row, "geomean_relative_energy", Some(e));
            row.push_str(", ");
            spread_fields(&mut row, "geomean_relative_power", Some(w));
            row.push('}');
            rows.push(row);
        }
        s.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            s.push('\n');
        }
        s.push_str("    ],\n");
    }

    /// Table: the wakeup-path features (producer-side filter, handshake
    /// coalescing) against their featureless baseline mode; min/mean/max
    /// across phase seeds.
    fn write_feature_table(&self, s: &mut String) {
        s.push_str("    \"wakeup_feature_ablation\": [\n");
        let mut rows = Vec::new();
        for mode in &self.matrix.modes {
            let baseline = match *mode {
                ModePoint::Gals {
                    wakeup_filter: true,
                } => ModePoint::Gals {
                    wakeup_filter: false,
                },
                ModePoint::Pausible {
                    handshake_ps,
                    coalesce,
                    wakeup_filter,
                    rendezvous,
                } if coalesce || wakeup_filter => ModePoint::Pausible {
                    handshake_ps,
                    coalesce: false,
                    wakeup_filter: false,
                    rendezvous,
                },
                _ => continue,
            };
            if !self.matrix.modes.contains(&baseline) {
                continue;
            }
            let Some((ops, n)) = self.mode_ratio(*mode, baseline, |r| r.channel_ops as f64) else {
                continue;
            };
            let stretch = self
                .mode_ratio(*mode, baseline, |r| r.total_stretches as f64)
                .map(|(g, _)| g);
            let Some((exec, _)) = self.mode_ratio(*mode, baseline, |r| r.exec_time_fs as f64)
            else {
                continue;
            };
            let mut row = format!(
                "      {{\"mode\": \"{}\", \"baseline_mode\": \"{}\", \
                 \"benchmarks\": {n}, \"seeds\": {}, ",
                mode.label(),
                baseline.label(),
                self.seed_count()
            );
            spread_fields(&mut row, "geomean_channel_ops_ratio", Some(ops));
            row.push_str(", ");
            spread_fields(&mut row, "geomean_stretch_ratio", stretch);
            row.push_str(", ");
            spread_fields(&mut row, "geomean_exec_time_ratio", Some(exec));
            row.push('}');
            rows.push(row);
        }
        s.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            s.push('\n');
        }
        s.push_str("    ]\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_matrix() -> SweepMatrix {
        SweepMatrix {
            benchmarks: vec![Workload::Profile(Benchmark::Adpcm)],
            modes: vec![
                ModePoint::Synchronous,
                ModePoint::Gals {
                    wakeup_filter: false,
                },
            ],
            dvfs: vec![
                DvfsPoint::nominal(),
                DvfsPoint::per_domain("fp2x", [1.0, 1.0, 1.0, 2.0, 1.0]),
            ],
            phase_seeds: vec![1],
            workload_seed: WORKLOAD_SEED,
            budget: 1_000,
            retries: 0,
            run_timeout_ms: None,
        }
    }

    #[test]
    fn matrix_file_round_trips() {
        let mut matrix = SweepMatrix::paper_default(2_000);
        matrix.phase_seeds = vec![PHASE_SEED, 7, 99];
        matrix.dvfs.push(DvfsPoint::per_domain(
            "2\u{00d7} \"mem\"",
            [1.0, 1.0, 1.0, 1.0, 2.0],
        ));
        // The execution-policy fields round-trip too.
        matrix.retries = 2;
        matrix.run_timeout_ms = Some(120_000);
        let rendered = matrix.to_matrix_json();
        let parsed = SweepMatrix::from_json(&rendered, 0).expect("rendered matrix parses");
        assert_eq!(parsed, matrix);

        // And the no-timeout form (the field is omitted, not null).
        matrix.run_timeout_ms = None;
        let rendered = matrix.to_matrix_json();
        assert!(!rendered.contains("run_timeout_ms"));
        let parsed = SweepMatrix::from_json(&rendered, 0).expect("rendered matrix parses");
        assert_eq!(parsed, matrix);
    }

    #[test]
    fn matrix_file_defaults_and_overrides() {
        let text = r#"{
            "benchmarks": ["gcc"],
            "modes": ["gals"],
            "dvfs": ["uniform1.5x"],
            "phase_seeds": [3]
        }"#;
        let m = SweepMatrix::from_json(text, 4_321).expect("valid file");
        assert_eq!(m.budget, 4_321, "missing budget falls back to the default");
        assert_eq!(m.workload_seed, WORKLOAD_SEED);
        assert_eq!(m.retries, 0, "missing retries defaults to none");
        assert_eq!(m.run_timeout_ms, None);
        assert_eq!(m.dvfs[0], DvfsPoint::uniform(1.5));
        assert_eq!(
            m.modes[0],
            ModePoint::Gals {
                wakeup_filter: false
            }
        );
        assert!(SweepMatrix::from_json("not json", 1).is_err());
    }

    #[test]
    fn multi_seed_tables_report_min_mean_max() {
        let mut matrix = tiny_matrix();
        matrix.modes = vec![
            ModePoint::Synchronous,
            ModePoint::Gals {
                wakeup_filter: false,
            },
            ModePoint::Gals {
                wakeup_filter: true,
            },
        ];
        matrix.phase_seeds = vec![1, 2, 3];
        let results = run_sweep(&matrix, 2);
        let json = results.to_json();
        assert!(json.contains("\"seeds\": 3"), "{json}");
        assert!(json.contains("geomean_channel_ops_ratio_min"), "{json}");
        assert!(json.contains("geomean_channel_ops_ratio_max"), "{json}");
        // Spread fields must bracket the mean.
        let get = |key: &str| -> f64 {
            let needle = format!("\"{key}\": ");
            let at = json
                .find(&needle)
                .unwrap_or_else(|| panic!("{key} missing"))
                + needle.len();
            json[at..]
                .split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("{key} not a number"))
        };
        let (lo, mid, hi) = (
            get("geomean_channel_ops_ratio_min"),
            get("geomean_channel_ops_ratio"),
            get("geomean_channel_ops_ratio_max"),
        );
        assert!(
            lo <= mid && mid <= hi,
            "spread must bracket the mean: {lo} {mid} {hi}"
        );
        assert!(lo > 0.0);
    }

    #[test]
    fn expand_skips_nonuniform_dvfs_on_sync() {
        let specs = tiny_matrix().expand();
        // sync gets only the nominal point; gals gets both.
        assert_eq!(specs.len(), 3);
        assert!(specs
            .iter()
            .all(|s| !(s.mode == ModePoint::Synchronous && s.dvfs.label == "fp2x")));
        // Indices are dense and ordered.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn paper_default_covers_the_acceptance_floor() {
        let specs = SweepMatrix::paper_default(2_000).expand();
        assert!(specs.len() >= 24, "matrix too small: {}", specs.len());
        // Every benchmark × clocking family appears.
        for kind in ["sync", "gals", "pausible"] {
            for b in [
                Benchmark::Gcc,
                Benchmark::Fpppp,
                Benchmark::Ijpeg,
                Benchmark::Compress,
            ] {
                assert!(
                    specs
                        .iter()
                        .any(|s| s.benchmark == Workload::Profile(b) && s.mode.clocking() == kind),
                    "missing {kind}/{b:?}"
                );
            }
        }
    }

    #[test]
    fn mode_labels_round_trip_the_feature_flags() {
        let m = ModePoint::Pausible {
            handshake_ps: 300,
            coalesce: true,
            wakeup_filter: false,
            rendezvous: false,
        };
        assert_eq!(m.label(), "pausible@300ps+coalesce");
        assert_eq!(m.clocking(), "pausible");
        assert_eq!(m.handshake_ps(), Some(300));
        assert_eq!(m.pausible_model(), Some("latched"));
        let rdv = ModePoint::Pausible {
            handshake_ps: 600,
            coalesce: false,
            wakeup_filter: false,
            rendezvous: true,
        };
        assert_eq!(rdv.label(), "pausible@600ps+rendezvous");
        assert_eq!(rdv.pausible_model(), Some("rendezvous"));
        assert_eq!(ModePoint::Synchronous.pausible_model(), None);
        assert_eq!(
            ModePoint::Gals {
                wakeup_filter: true
            }
            .label(),
            "gals+filter"
        );
        assert_eq!(ModePoint::Synchronous.label(), "sync");
    }

    #[test]
    fn run_sweep_fills_every_slot_in_matrix_order() {
        let results = run_sweep(&tiny_matrix(), 2);
        assert_eq!(results.runs.len(), 3);
        for (i, r) in results.runs.iter().enumerate() {
            assert_eq!(r.spec.index, i);
            assert_eq!(r.committed, 1_000);
            assert!(r.exec_time_fs > 0);
        }
    }

    #[test]
    fn json_is_schema_versioned_and_balanced() {
        let json = run_sweep(&tiny_matrix(), 1).to_json();
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"runs\": ["));
        assert!(json.contains("\"tables\": {"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
        assert!(json.contains("\"failed_count\": 0"));
        assert!(json.contains("\"status\": \"ok\""));
    }

    /// A unique temp path per call (tests share one process).
    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "gals-sweep-test-{}-{}-{tag}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn journaled_sweep_resumes_to_identical_output() {
        let matrix = tiny_matrix();
        let path = temp_path("resume");
        let opts = SweepOptions::new().journal(path.clone());
        let clean = run_sweep_with(&matrix, &opts).expect("journaled sweep");
        let journal_text = std::fs::read_to_string(&path).expect("journal written");
        assert_eq!(
            journal_text.lines().count(),
            1 + clean.runs.len(),
            "header + one line per run:\n{journal_text}"
        );

        // Resume over a complete journal re-runs nothing and renders
        // bit-identical JSON.
        let resumed = run_sweep_with(
            &matrix,
            &SweepOptions::new().journal(path.clone()).resume(true),
        )
        .expect("resumed sweep");
        assert_eq!(resumed.to_json(), clean.to_json());

        // A torn tail (killed mid-append) re-runs only that point and
        // still converges to identical output.
        let torn: String = journal_text[..journal_text.len() - 20].to_string();
        std::fs::write(&path, torn).expect("truncate journal");
        let resumed = run_sweep_with(
            &matrix,
            &SweepOptions::new().journal(path.clone()).resume(true),
        )
        .expect("resumed sweep over torn journal");
        assert_eq!(resumed.to_json(), clean.to_json());

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_matrix() {
        let matrix = tiny_matrix();
        let path = temp_path("mismatch");
        run_sweep_with(&matrix, &SweepOptions::new().journal(path.clone()))
            .expect("journaled sweep");

        let mut other = matrix.clone();
        other.budget += 1;
        let err = run_sweep_with(
            &other,
            &SweepOptions::new().journal(path.clone()).resume(true),
        )
        .unwrap_err();
        assert!(err.contains("does not match the current matrix"), "{err}");

        // Changing only execution policy is NOT an identity change.
        let mut policy = matrix.clone();
        policy.retries = 3;
        policy.run_timeout_ms = Some(999_999);
        run_sweep_with(
            &policy,
            &SweepOptions::new().journal(path.clone()).resume(true),
        )
        .expect("policy-only change resumes fine");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_without_a_journal_is_an_error() {
        let err = run_sweep_with(&tiny_matrix(), &SweepOptions::new().resume(true)).unwrap_err();
        assert!(err.contains("journal"), "{err}");
    }

    #[test]
    fn failed_records_zero_metrics_and_render_with_status() {
        let specs = tiny_matrix().expand();
        let failed = RunRecord::failed(
            &specs[0],
            RunStatus::Panicked {
                msg: "boom with \"quotes\"".into(),
            },
        );
        assert_eq!(failed.committed, 0);
        assert!(!failed.status.is_ok());
        let mut results = run_sweep(&tiny_matrix(), 1);
        results.runs[0] = failed;
        let json = results.to_json();
        assert!(json.contains("\"failed_count\": 1"), "{json}");
        assert!(
            json.contains("\"status\": \"panicked\", \"panic_msg\": \"boom with \\\"quotes\\\"\""),
            "{json}"
        );
        // Balanced even with the escaped payload embedded.
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // The timed-out label renders too.
        results.runs[1] = RunRecord::failed(&specs[1], RunStatus::TimedOut);
        assert!(results.to_json().contains("\"status\": \"timed_out\""));
    }
}
