//! The user-defined matrix file: a small JSON schema describing a
//! [`SweepMatrix`](crate::SweepMatrix), loaded by `sweep --matrix FILE`
//! as an alternative to the in-code builder.
//!
//! ## File format
//!
//! ```json
//! {
//!   "benchmarks": ["gcc", "fpppp"],
//!   "modes": ["sync", "gals+filter", "pausible@300ps+coalesce"],
//!   "dvfs": [
//!     "nominal",
//!     "uniform1.5x",
//!     { "label": "fp2x", "slowdown": [1.0, 1.0, 1.0, 2.0, 1.0] }
//!   ],
//!   "phase_seeds": [2002, 7],
//!   "workload_seed": 1590088705,
//!   "budget": 60000,
//!   "retries": 1,
//!   "run_timeout_ms": 120000
//! }
//! ```
//!
//! * `benchmarks` — workload names from [`Workload::name`]: lower-case
//!   synthetic benchmark names (`"gcc"`) and/or `prog:`-prefixed program
//!   kernels (`"prog:gcc_like"`, see `docs/PROGRAM_FORMAT.md`).
//! * `modes` — [`ModePoint::label`](crate::ModePoint::label) strings:
//!   `sync`, `gals[+filter]`,
//!   `pausible@<N>ps[+rendezvous][+coalesce][+filter]` (`+rendezvous`
//!   selects the unbuffered transfer-capacity model).
//! * `dvfs` — `"nominal"`, `"uniform<F>x"`, or an object with `label` and
//!   five per-domain `slowdown` factors.
//! * `workload_seed` and `budget` are optional (defaults:
//!   [`WORKLOAD_SEED`](crate::WORKLOAD_SEED) and 60 000; the `sweep`
//!   binary's `--budget` flag overrides the file).
//! * `retries` and `run_timeout_ms` are optional execution-policy
//!   defaults (extra attempts for failed points, and the per-run
//!   wall-clock deadline): defaults 0 and unset (the harness then uses
//!   its budget-scaled deadline), overridable by the `sweep` binary's
//!   `--retries`/`--run-timeout-ms` flags. They do not change *what* is
//!   simulated, only how failures are handled, so they are excluded from
//!   the journal's matrix identity hash.
//!
//! [`SweepMatrix::to_matrix_json`](crate::SweepMatrix::to_matrix_json)
//! renders this format back, and the loader/renderer pair round-trips
//! every representable matrix (pinned by a test).
//!
//! The parser is a self-contained minimal JSON reader (the workspace
//! carries no serde); errors are human-readable strings the binary routes
//! to stderr with the uniform usage exit code.

use gals_workload::Workload;

use crate::{DvfsPoint, ModePoint, SweepMatrix, WORKLOAD_SEED};

/// A parsed JSON value (just enough of the grammar for matrix files and
/// the sweep journal, which shares this reader).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("matrix JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    pub(crate) fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    // The input is a &str, so unescaped content is valid
                    // UTF-8 byte-for-byte; collecting bytes (not
                    // byte-as-char, which would Latin-1-mangle multi-byte
                    // sequences) preserves it.
                    return String::from_utf8(out).map_err(|_| self.err("malformed UTF-8"));
                }
                Some(b'\\') => {
                    // Matrix files carry benchmark/mode names; the escapes
                    // that can appear are the simple ones.
                    let esc = *self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or_else(|| self.err("dangling escape"))?;
                    out.push(match esc {
                        b'"' => b'"',
                        b'\\' => b'\\',
                        b'/' => b'/',
                        b'n' => b'\n',
                        b't' => b'\t',
                        other => {
                            return Err(self.err(&format!("unsupported escape \\{}", other as char)))
                        }
                    });
                    self.pos += 2;
                }
                Some(&c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn benchmark_by_name(name: &str) -> Result<Workload, String> {
    Workload::by_name(name).ok_or_else(|| {
        format!(
            "unknown benchmark {name:?} (expected one of: {})",
            Workload::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

/// Parses a [`ModePoint::label`] string back into the mode point.
pub(crate) fn mode_from_label(label: &str) -> Result<ModePoint, String> {
    let (base, features) = match label.find('+') {
        Some(i) => (&label[..i], &label[i + 1..]),
        None => (label, ""),
    };
    let mut coalesce = false;
    let mut wakeup_filter = false;
    let mut rendezvous = false;
    for feature in features.split('+').filter(|f| !f.is_empty()) {
        match feature {
            "coalesce" => coalesce = true,
            "filter" => wakeup_filter = true,
            "rendezvous" => rendezvous = true,
            other => return Err(format!("unknown mode feature {other:?} in {label:?}")),
        }
    }
    match base {
        "sync" => {
            if coalesce || wakeup_filter || rendezvous {
                return Err(format!("{label:?}: the synchronous mode takes no features"));
            }
            Ok(ModePoint::Synchronous)
        }
        "gals" => {
            if coalesce || rendezvous {
                return Err(format!(
                    "{label:?}: +coalesce/+rendezvous need pausible clocking"
                ));
            }
            Ok(ModePoint::Gals { wakeup_filter })
        }
        _ => {
            let ps = base
                .strip_prefix("pausible@")
                .and_then(|rest| rest.strip_suffix("ps"))
                .ok_or_else(|| {
                    format!(
                        "unknown mode {label:?} (expected sync, gals[+filter] or \
                         pausible@<N>ps[+rendezvous][+coalesce][+filter])"
                    )
                })?;
            let handshake_ps: u64 = ps
                .parse()
                .map_err(|_| format!("bad handshake duration in {label:?}"))?;
            Ok(ModePoint::Pausible {
                handshake_ps,
                coalesce,
                wakeup_filter,
                rendezvous,
            })
        }
    }
}

fn dvfs_from_json(v: &Json) -> Result<DvfsPoint, String> {
    match v {
        Json::Str(s) if s == "nominal" => Ok(DvfsPoint::nominal()),
        Json::Str(s) => {
            let factor = s
                .strip_prefix("uniform")
                .and_then(|rest| rest.strip_suffix('x'))
                .and_then(|f| f.parse::<f64>().ok())
                .ok_or_else(|| {
                    format!("unknown dvfs point {s:?} (expected nominal or uniform<F>x)")
                })?;
            Ok(DvfsPoint::uniform(factor))
        }
        Json::Obj(_) => {
            let label = match v.get("label") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err("dvfs object needs a string \"label\"".into()),
            };
            let Some(Json::Arr(items)) = v.get("slowdown") else {
                return Err(format!("dvfs {label:?} needs a \"slowdown\" array"));
            };
            if items.len() != 5 {
                return Err(format!(
                    "dvfs {label:?}: slowdown needs 5 per-domain factors, got {}",
                    items.len()
                ));
            }
            let mut slowdown = [0.0; 5];
            for (i, item) in items.iter().enumerate() {
                match item {
                    Json::Num(f) if *f >= 1.0 => slowdown[i] = *f,
                    Json::Num(f) => return Err(format!("dvfs {label:?}: slowdown {f} below 1.0")),
                    other => {
                        return Err(format!(
                            "dvfs {label:?}: slowdown entries must be numbers, got {}",
                            other.type_name()
                        ))
                    }
                }
            }
            Ok(DvfsPoint::per_domain(label, slowdown))
        }
        other => Err(format!(
            "dvfs entries must be strings or objects, got {}",
            other.type_name()
        )),
    }
}

pub(crate) fn u64_field(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(f)) if *f >= 0.0 && f.fract() == 0.0 => Ok(Some(*f as u64)),
        Some(other) => Err(format!(
            "{key} must be a non-negative integer, got {}",
            other.type_name()
        )),
    }
}

/// Parses a matrix file (see the module docs for the format).
///
/// # Errors
///
/// A human-readable message naming the first problem — malformed JSON, an
/// unknown benchmark/mode/dvfs name, a missing axis, or an empty one.
pub(crate) fn matrix_from_json(text: &str, default_budget: u64) -> Result<SweepMatrix, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after the matrix object"));
    }
    matrix_from_value(&root, default_budget)
}

/// Converts an already-parsed matrix object (a file's root, or the
/// `"matrix"` member of a `sweep --serve` request) into a [`SweepMatrix`].
pub(crate) fn matrix_from_value(root: &Json, default_budget: u64) -> Result<SweepMatrix, String> {
    if !matches!(root, Json::Obj(_)) {
        return Err(format!(
            "matrix file must be a JSON object, got {}",
            root.type_name()
        ));
    }

    let list = |key: &str| -> Result<&Vec<Json>, String> {
        match root.get(key) {
            Some(Json::Arr(items)) if !items.is_empty() => Ok(items),
            Some(Json::Arr(_)) => Err(format!("{key} must not be empty")),
            Some(other) => Err(format!("{key} must be an array, got {}", other.type_name())),
            None => Err(format!("matrix file is missing the {key:?} axis")),
        }
    };

    let mut benchmarks = Vec::new();
    for item in list("benchmarks")? {
        match item {
            Json::Str(name) => benchmarks.push(benchmark_by_name(name)?),
            other => {
                return Err(format!(
                    "benchmarks entries must be strings, got {}",
                    other.type_name()
                ))
            }
        }
    }
    let mut modes = Vec::new();
    for item in list("modes")? {
        match item {
            Json::Str(label) => modes.push(mode_from_label(label)?),
            other => {
                return Err(format!(
                    "modes entries must be strings, got {}",
                    other.type_name()
                ))
            }
        }
    }
    let mut dvfs = Vec::new();
    for item in list("dvfs")? {
        dvfs.push(dvfs_from_json(item)?);
    }
    let mut phase_seeds = Vec::new();
    for item in list("phase_seeds")? {
        match item {
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 => phase_seeds.push(*f as u64),
            other => {
                return Err(format!(
                    "phase_seeds entries must be non-negative integers, got {}",
                    other.type_name()
                ))
            }
        }
    }

    let retries = match u64_field(root, "retries")? {
        None => 0,
        Some(n) => u32::try_from(n).map_err(|_| format!("retries {n} is out of range"))?,
    };

    Ok(SweepMatrix {
        benchmarks,
        modes,
        dvfs,
        phase_seeds,
        workload_seed: u64_field(root, "workload_seed")?.unwrap_or(WORKLOAD_SEED),
        budget: u64_field(root, "budget")?.unwrap_or(default_budget),
        retries,
        run_timeout_ms: u64_field(root, "run_timeout_ms")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_parse_back() {
        for mode in [
            ModePoint::Synchronous,
            ModePoint::Gals {
                wakeup_filter: false,
            },
            ModePoint::Gals {
                wakeup_filter: true,
            },
            ModePoint::Pausible {
                handshake_ps: 300,
                coalesce: true,
                wakeup_filter: true,
                rendezvous: false,
            },
            ModePoint::Pausible {
                handshake_ps: 100,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: false,
            },
            ModePoint::Pausible {
                handshake_ps: 300,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: true,
            },
            ModePoint::Pausible {
                handshake_ps: 600,
                coalesce: true,
                wakeup_filter: true,
                rendezvous: true,
            },
        ] {
            assert_eq!(mode_from_label(&mode.label()).unwrap(), mode);
        }
        assert!(mode_from_label("sync+filter").is_err());
        assert!(mode_from_label("gals+coalesce").is_err());
        assert!(mode_from_label("gals+rendezvous").is_err());
        assert!(mode_from_label("sync+rendezvous").is_err());
        assert!(mode_from_label("pausible@ps").is_err());
        assert!(mode_from_label("warp").is_err());
    }

    #[test]
    fn strings_preserve_utf8_and_escapes() {
        let text = r#"{
            "benchmarks": ["gcc"], "modes": ["gals"],
            "dvfs": [{"label": "2\u00d7mem \"fast\"", "slowdown": [1, 1, 1, 1, 2]}],
            "phase_seeds": [1]
        }"#
        .replace("\\u00d7", "\u{00d7}");
        let m = matrix_from_json(&text, 1).expect("valid file");
        assert_eq!(m.dvfs[0].label, "2\u{00d7}mem \"fast\"");
    }

    #[test]
    fn loader_reports_bad_axes() {
        let e = matrix_from_json("[]", 1).unwrap_err();
        assert!(e.contains("object"), "{e}");
        let e = matrix_from_json(r#"{"benchmarks": []}"#, 1).unwrap_err();
        assert!(e.contains("must not be empty"), "{e}");
        let e = matrix_from_json(
            r#"{"benchmarks": ["gcc"], "modes": ["sync"], "dvfs": ["nominal"]}"#,
            1,
        )
        .unwrap_err();
        assert!(e.contains("phase_seeds"), "{e}");
        let e = matrix_from_json(
            r#"{"benchmarks": ["notabench"], "modes": ["sync"],
                "dvfs": ["nominal"], "phase_seeds": [1]}"#,
            1,
        )
        .unwrap_err();
        assert!(e.contains("unknown benchmark"), "{e}");
        let e = matrix_from_json("{", 1).unwrap_err();
        assert!(e.contains("JSON error"), "{e}");
    }
}
