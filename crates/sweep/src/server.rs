//! Sweep as a service: a long-lived process that answers newline-delimited
//! JSON sweep requests over a local TCP socket, sharding cache misses
//! across one shared worker pool and streaming records back as they
//! complete.
//!
//! ## Framing
//!
//! One JSON object per `\n`-terminated line, in both directions. Requests:
//!
//! ```text
//! {"request": "ping"}
//! {"request": "sweep", "matrix": {...}, "deadline_ms": 30000}
//! {"request": "cancel"}
//! {"request": "shutdown"}
//! ```
//!
//! The `"matrix"` member uses exactly the matrix-file format (including
//! its optional `budget`, `retries` and `run_timeout_ms` members — the
//! server's default budget fills in like the CLI's `--budget`).
//! `"deadline_ms"` bounds the request's wall clock: when it expires the
//! stream ends early with a cancelled trailer (below). A legacy
//! `"threads"` member is accepted and ignored — every request shares the
//! server's one worker pool.
//!
//! A sweep response streams, in order:
//!
//! ```text
//! {"response": "sweep", "schema_version": 5, "run_count": R}
//! {"run": {...}}                    × R, in matrix order
//! {"tables": {...}}
//! {"done": true, "failed_count": F, "simulated": S,
//!  "cache_hits": H, "cache_misses": M}
//! ```
//!
//! Every `run` line is [`RunRecord::to_json_object`] and the `tables`
//! line is [`SweepResults::tables_json`](crate::SweepResults::tables_json)
//! — the same renderings the file report uses — so the payload lines of a
//! fully cached response are byte-identical to a freshly simulated one,
//! and byte-identical across concurrent clients. Only the `done` trailer
//! says how the answer was produced. A `ping` answers
//! `{"ok": "pong", "schema_version": 5}`; a `shutdown` answers
//! `{"ok": "shutdown"}` and makes [`SweepServer::serve`] return.
//!
//! ## Concurrency
//!
//! Every accepted connection gets its own handler thread; all handlers
//! share one [`SweepExecutor`] — one worker pool whose queue interleaves
//! runs from concurrent requests, one [`ResultCache`] handle, and one
//! in-flight table so overlapping matrices simulate each distinct
//! [`RunKey`](crate::RunKey) at most once. Failure isolation is
//! per-request: one client's panicking point, deadline, or disconnect
//! never perturbs another client's stream (its payload stays
//! byte-identical to a serial single-client session).
//!
//! ## Cancellation
//!
//! `{"request": "cancel"}` sent while a sweep response is streaming stops
//! scheduling that request's remaining runs (runs already simulating
//! complete and stay cached) and ends the stream with:
//!
//! ```text
//! {"done": false, "cancelled": true, "streamed": K}
//! ```
//!
//! after the `K` records that were already delivered (always a
//! matrix-order prefix; no `tables` line). The connection stays usable.
//! A cancel with no sweep streaming is a no-op. Client disconnect
//! mid-stream cancels the same way (nobody is reading), and a deadline
//! expiry produces the same trailer.
//!
//! ## Admission control & errors
//!
//! A malformed or unserviceable request answers one `{"error": "..."}`
//! line and leaves the connection usable. Overload shedding adds
//! `"retryable": true` to the error object — the `sweep --submit`
//! client backs off and retries exactly these:
//!
//! * `--max-clients N`: a connection past the limit is answered with one
//!   retryable error line and closed;
//! * `--max-pending-runs N`: a sweep whose runs would push the pool's
//!   queued+running total past the limit is refused with a retryable
//!   error (the connection stays open).
//!
//! ## Shutdown
//!
//! `{"request": "shutdown"}` stops accepting new connections, lets every
//! in-flight sweep stream to its `done` trailer, then closes the
//! remaining connections and returns from [`SweepServer::serve`].
//! Requests queued on a connection but not yet started are dropped (the
//! client sees EOF and may retry elsewhere). Transient `accept` failures
//! (`ECONNABORTED`, `EMFILE`, interrupts) are logged and served around —
//! only a fatal listener error ends `serve` with `Err`.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::exec::{RunControl, SweepExecutor};
use crate::matrix_file::{matrix_from_value, u64_field, Json, Parser};
use crate::{json_escape, lock_unpoisoned, RunRecord, SweepOptions, SweepRequest, SCHEMA_VERSION};

/// How often an idle connection handler re-checks the shutdown flag
/// while waiting for its reader thread to forward a request line.
const DRAIN_POLL: Duration = Duration::from_millis(100);

/// Server-side fault injection (chaos builds only): sabotage for the
/// *response* path, so client retry behaviour is testable against a
/// real server instead of a mock.
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Default)]
pub struct ServerChaos {
    /// After streaming this many `run` lines of a sweep response, hard-
    /// close the connection mid-stream (the client sees a torn stream
    /// with no `done` trailer and must retry).
    pub drop_after_runs: Option<usize>,
    /// How many streams to sabotage before the fault disarms (so a
    /// retrying client eventually succeeds). `0` behaves as `1`.
    pub drop_times: usize,
}

/// The resident sweep front end: bind once, then [`SweepServer::serve`]
/// until a `shutdown` request.
#[derive(Debug)]
pub struct SweepServer {
    listener: TcpListener,
    budget: u64,
    options: SweepOptions,
    max_clients: Option<usize>,
    max_pending_runs: Option<usize>,
    #[cfg(feature = "chaos")]
    chaos: ServerChaos,
}

/// What one request line did to the connection.
enum Reply {
    /// Keep reading request lines.
    Continue,
    /// A `shutdown` request: stop accepting entirely.
    Shutdown,
    /// The client vanished mid-write: drop this connection, keep serving.
    ClientGone,
}

fn send(out: &mut TcpStream, line: &str) -> std::io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

fn send_error(out: &mut TcpStream, msg: &str, retryable: bool) -> Reply {
    let line = if retryable {
        format!(
            "{{\"error\": \"{}\", \"retryable\": true}}",
            json_escape(msg)
        )
    } else {
        format!("{{\"error\": \"{}\"}}", json_escape(msg))
    };
    match send(out, &line) {
        Ok(()) => Reply::Continue,
        Err(_) => Reply::ClientGone,
    }
}

/// `accept` errors worth serving around: the *connection* failed, not
/// the listener. `ECONNABORTED`/reset (client gave up in the backlog),
/// interrupts, and descriptor exhaustion (`EMFILE`/`ENFILE` — shedding
/// one client beats killing the server for all of them).
fn transient_accept_error(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    if matches!(
        e.kind(),
        ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::Interrupted
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
    ) {
        return true;
    }
    // EMFILE (24) / ENFILE (23) have no stable ErrorKind mapping.
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    exec: SweepExecutor,
    shutdown: AtomicBool,
    active: AtomicUsize,
    addr: SocketAddr,
    budget: u64,
    base: SweepOptions,
    max_pending_runs: Option<usize>,
    #[cfg(feature = "chaos")]
    chaos_drop_after: Option<usize>,
    #[cfg(feature = "chaos")]
    chaos_drops_left: AtomicUsize,
}

#[cfg(feature = "chaos")]
impl Shared {
    /// Consumes one armed mid-stream drop, if any remain.
    fn take_chaos_drop(&self) -> bool {
        self.chaos_drops_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// Per-connection cancellation bookkeeping, shared between the reader
/// thread (which sees `cancel` lines and EOF) and the handler (which
/// runs sweeps). Stream order decides what a cancel applies to: each
/// forwarded request line is tagged with the count of cancel lines seen
/// *before* it, and a sweep is cancelled exactly when the count has
/// grown past its tag (or the client dropped). All transitions happen
/// under one mutex, so a cancel racing the start of its sweep is never
/// lost.
#[derive(Default)]
struct ConnControl {
    state: Mutex<ConnState>,
}

#[derive(Default)]
struct ConnState {
    /// Cancel lines seen on this connection so far.
    cancels: usize,
    /// The streaming sweep's (tag, cancel flag), if one is active.
    active: Option<(usize, Arc<AtomicBool>)>,
    /// The client hung up (EOF or read error).
    dropped: bool,
}

impl ConnControl {
    /// The tag for a request line forwarded now.
    fn tag(&self) -> usize {
        lock_unpoisoned(&self.state).cancels
    }

    /// A `cancel` line arrived: it applies to any sweep whose request
    /// line preceded it.
    fn on_cancel(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.cancels += 1;
        if let Some((tag, flag)) = &st.active {
            if st.cancels > *tag {
                flag.store(true, Ordering::Relaxed);
            }
        }
    }

    /// The client vanished: cancel whatever is streaming.
    fn on_drop(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.dropped = true;
        if let Some((_, flag)) = &st.active {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Registers a sweep that is about to stream; pre-cancels it if its
    /// cancel (or the disconnect) already arrived.
    fn begin(&self, tag: usize, flag: &Arc<AtomicBool>) {
        let mut st = lock_unpoisoned(&self.state);
        if st.dropped || st.cancels > tag {
            flag.store(true, Ordering::Relaxed);
        }
        st.active = Some((tag, Arc::clone(flag)));
    }

    fn end(&self) {
        lock_unpoisoned(&self.state).active = None;
    }
}

/// Detects `{"request": "cancel"}` in the reader thread without a full
/// dispatch round-trip (a cancel must take effect while the handler is
/// busy streaming). Unparsable lines are not cancels — they forward and
/// answer an error like any other request.
fn is_cancel_line(line: &str) -> bool {
    matches!(
        Parser::new(line).value().ok().as_ref().and_then(|v| v.get("request")),
        Some(Json::Str(s)) if s == "cancel"
    )
}

impl SweepServer {
    /// Binds `addr` (e.g. `127.0.0.1:4601`; port 0 picks a free port).
    /// `default_budget` fills in for matrices that carry no `budget`;
    /// `options` is the per-request execution-policy base — its `journal`
    /// and `resume` are ignored (a journal describes exactly one matrix,
    /// a server answers many; the cache is the cross-request memory), its
    /// `threads` sizes the one shared worker pool, and its `cache` opens
    /// the one shared [`ResultCache`] handle.
    ///
    /// # Errors
    ///
    /// The address cannot be bound.
    pub fn bind(addr: &str, default_budget: u64, options: SweepOptions) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let mut options = options;
        options.journal = None;
        options.resume = false;
        Ok(SweepServer {
            listener,
            budget: default_budget,
            options,
            max_clients: None,
            max_pending_runs: None,
            #[cfg(feature = "chaos")]
            chaos: ServerChaos::default(),
        })
    }

    /// Bounds concurrently served connections; a connection past the
    /// limit is answered with one retryable `error` line and closed.
    /// `None` (the default) is unbounded.
    #[must_use]
    pub fn max_clients(mut self, limit: usize) -> Self {
        self.max_clients = Some(limit.max(1));
        self
    }

    /// Bounds the worker pool's queued+running total; a sweep that would
    /// exceed it is refused with a retryable `error` line (the
    /// connection stays open). `None` (the default) is unbounded.
    #[must_use]
    pub fn max_pending_runs(mut self, limit: usize) -> Self {
        self.max_pending_runs = Some(limit.max(1));
        self
    }

    /// Arms server-side fault injection (chaos builds only).
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn chaos(mut self, chaos: ServerChaos) -> Self {
        self.chaos = chaos;
        self
    }

    /// The bound address (the OS-chosen port when bound to port 0).
    ///
    /// # Errors
    ///
    /// The socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// Accepts connections concurrently until a client sends
    /// `{"request": "shutdown"}`, then drains in-flight streams to their
    /// `done` trailers before returning. Client-side failures
    /// (disconnects, malformed requests, panicking runs) never end the
    /// loop; transient `accept` errors are logged and skipped.
    ///
    /// # Errors
    ///
    /// Binding-level failures only: a fatal listener `accept` error or
    /// an unopenable cache directory. Everything request-scoped is
    /// answered in-band as an `error` line.
    pub fn serve(&self) -> Result<(), String> {
        let cache = match &self.options.cache {
            Some(dir) => Some(Arc::new(ResultCache::open(
                dir,
                self.options.cache_capacity,
            )?)),
            None => None,
        };
        let addr = self.local_addr()?;
        let mut base = self.options.clone();
        // The executor owns the one shared cache handle; a per-request
        // open would split the counters and re-stat the directory.
        base.cache = None;
        base.cache_capacity = None;
        let shared = Arc::new(Shared {
            exec: SweepExecutor::new(self.options.threads.max(1), cache),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            addr,
            budget: self.budget,
            base,
            max_pending_runs: self.max_pending_runs,
            #[cfg(feature = "chaos")]
            chaos_drop_after: self.chaos.drop_after_runs,
            #[cfg(feature = "chaos")]
            chaos_drops_left: AtomicUsize::new(if self.chaos.drop_after_runs.is_some() {
                self.chaos.drop_times.max(1)
            } else {
                0
            }),
        });
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let result = loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if transient_accept_error(&e) => {
                    eprintln!("sweep-serve: transient accept error ({e}); continuing");
                    // Descriptor exhaustion clears only when a client
                    // leaves; don't spin at full speed waiting.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                Err(e) => break Err(format!("accept failed: {e}")),
            };
            if shared.shutdown.load(Ordering::Relaxed) {
                break Ok(());
            }
            if let Some(limit) = self.max_clients {
                if shared.active.load(Ordering::Relaxed) >= limit {
                    let mut stream = stream;
                    let _ = send_error(
                        &mut stream,
                        &format!("server busy: too many clients (limit {limit}); retry later"),
                        true,
                    );
                    continue;
                }
            }
            handlers.retain(|h| !h.is_finished());
            shared.active.fetch_add(1, Ordering::Relaxed);
            let conn_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name("sweep-conn".into())
                .spawn(move || handle_connection(&conn_shared, stream))
            {
                Ok(handle) => handlers.push(handle),
                Err(e) => {
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    eprintln!("sweep-serve: cannot spawn connection handler ({e}); client dropped");
                }
            }
        };
        // Drain: no new requests start past this flag; handlers finish
        // their in-flight streams (to the done trailer) and exit.
        shared.shutdown.store(true, Ordering::Relaxed);
        for handle in handlers {
            let _ = handle.join();
        }
        result
    }
}

/// One connection, start to finish: spawn the reader thread, serve
/// forwarded request lines until disconnect or shutdown, then tear both
/// halves down.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    connection_loop(shared, stream);
    shared.active.fetch_sub(1, Ordering::Relaxed);
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let control = Arc::new(ConnControl::default());
    let (tx, rx) = mpsc::channel::<(String, usize)>();
    let reader_control = Arc::clone(&control);
    let reader = std::thread::Builder::new()
        .name("sweep-conn-reader".into())
        .spawn(move || {
            for line in BufReader::new(read_half).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                if is_cancel_line(&line) {
                    reader_control.on_cancel();
                    continue;
                }
                let tag = reader_control.tag();
                if tx.send((line, tag)).is_err() {
                    break;
                }
            }
            // EOF or read error: nobody is reading responses anymore.
            reader_control.on_drop();
        });
    let mut out = stream;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let (line, tag) = match rx.recv_timeout(DRAIN_POLL) {
            Ok(forwarded) => forwarded,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match handle_line(shared, &control, &line, tag, &mut out) {
            Reply::Continue => {}
            Reply::Shutdown => {
                shared.shutdown.store(true, Ordering::Relaxed);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
                break;
            }
            Reply::ClientGone => break,
        }
    }
    // Closing the write half also unblocks the reader thread's read.
    let _ = out.shutdown(Shutdown::Both);
    if let Ok(reader) = reader {
        let _ = reader.join();
    }
}

/// Parses and answers one request line. Request-level problems are
/// answered as an `{"error": ...}` line on the same connection.
fn handle_line(
    shared: &Arc<Shared>,
    control: &Arc<ConnControl>,
    line: &str,
    tag: usize,
    out: &mut TcpStream,
) -> Reply {
    match dispatch(shared, control, line, tag, out) {
        Ok(reply) => reply,
        Err(msg) => send_error(out, &msg, false),
    }
}

fn dispatch(
    shared: &Arc<Shared>,
    control: &Arc<ConnControl>,
    line: &str,
    tag: usize,
    out: &mut TcpStream,
) -> Result<Reply, String> {
    let root = Parser::new(line)
        .value()
        .map_err(|e| format!("bad request: {e}"))?;
    let kind = match root.get("request") {
        Some(Json::Str(s)) => s.clone(),
        Some(other) => {
            return Err(format!(
                "bad request: \"request\" must be a string, got {}",
                other.type_name()
            ))
        }
        None => return Err("bad request: missing \"request\"".into()),
    };
    match kind.as_str() {
        "ping" => {
            let pong = format!("{{\"ok\": \"pong\", \"schema_version\": {SCHEMA_VERSION}}}");
            Ok(match send(out, &pong) {
                Ok(()) => Reply::Continue,
                Err(_) => Reply::ClientGone,
            })
        }
        "shutdown" => {
            let _ = send(out, "{\"ok\": \"shutdown\"}");
            Ok(Reply::Shutdown)
        }
        "sweep" => handle_sweep(shared, control, &root, tag, out),
        // The reader intercepts cancel lines; one reaching dispatch was
        // sent with no sweep to cancel, which is a harmless no-op.
        "cancel" => Ok(Reply::Continue),
        other => Err(format!("bad request: unknown request {other:?}")),
    }
}

/// Runs one sweep request on the shared executor, streaming the
/// response as records land.
fn handle_sweep(
    shared: &Arc<Shared>,
    control: &Arc<ConnControl>,
    root: &Json,
    tag: usize,
    out: &mut TcpStream,
) -> Result<Reply, String> {
    let matrix_value = root
        .get("matrix")
        .ok_or("bad request: sweep needs a \"matrix\"")?;
    let matrix =
        matrix_from_value(matrix_value, shared.budget).map_err(|e| format!("bad matrix: {e}"))?;
    // Accepted for wire compatibility, deliberately ignored: the pool is
    // shared, so no single request may resize it.
    let _ = u64_field(root, "threads").map_err(|e| format!("bad request: {e}"))?;
    let deadline = u64_field(root, "deadline_ms")
        .map_err(|e| format!("bad request: {e}"))?
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut opts = shared.base.clone();
    opts.retries = matrix.retries;
    if let Some(ms) = matrix.run_timeout_ms {
        opts.run_timeout = Some(Duration::from_millis(ms));
    }
    let run_count = matrix.expand().len();
    if let Some(limit) = shared.max_pending_runs {
        let pending = shared.exec.pending();
        if pending + run_count > limit {
            return Ok(send_error(
                out,
                &format!(
                    "server busy: run queue full ({pending} pending + {run_count} requested \
                     > limit {limit}); retry later"
                ),
                true,
            ));
        }
    }
    let header = format!(
        "{{\"response\": \"sweep\", \"schema_version\": {SCHEMA_VERSION}, \
         \"run_count\": {run_count}}}"
    );
    if send(out, &header).is_err() {
        return Ok(Reply::ClientGone);
    }
    let run_control = match deadline {
        Some(deadline) => RunControl::with_deadline(deadline),
        None => RunControl::unbounded(),
    };
    control.begin(tag, &run_control.cancel);
    // The sink is infallible by signature; a vanished client mutes
    // further writes *and* cancels the request's remaining runs (nobody
    // is reading — completed records are already cached for the retry).
    let mut gone = false;
    let mut emitted = 0usize;
    #[cfg(feature = "chaos")]
    let drop_after = shared.chaos_drop_after;
    let request = SweepRequest::new(matrix).with_options(opts);
    let served = {
        let cancel = &run_control.cancel;
        let sink_out: &mut TcpStream = out;
        let served = shared.exec.run(
            &request,
            &mut |record: &RunRecord| {
                if gone {
                    return;
                }
                #[cfg(feature = "chaos")]
                if drop_after == Some(emitted) && shared.take_chaos_drop() {
                    // Injected mid-stream drop: hard-close so the next
                    // write fails like a real torn connection.
                    let _ = sink_out.shutdown(Shutdown::Both);
                }
                let line = format!("{{\"run\": {}}}", record.to_json_object());
                if send(sink_out, &line).is_err() {
                    gone = true;
                    cancel.store(true, Ordering::Relaxed);
                } else {
                    emitted += 1;
                }
            },
            &run_control,
        );
        control.end();
        served?
    };
    if served.cancelled {
        if gone {
            return Ok(Reply::ClientGone);
        }
        let trailer = format!(
            "{{\"done\": false, \"cancelled\": true, \"streamed\": {}}}",
            served.streamed
        );
        return Ok(match send(out, &trailer) {
            Ok(()) => Reply::Continue,
            Err(_) => Reply::ClientGone,
        });
    }
    let response = served
        .response
        .expect("an uncancelled sweep has a response");
    if gone {
        return Ok(Reply::ClientGone);
    }
    let tables = format!("{{\"tables\": {}}}", response.results.tables_json());
    if send(out, &tables).is_err() {
        return Ok(Reply::ClientGone);
    }
    let trailer = format!(
        "{{\"done\": true, \"failed_count\": {}, \"simulated\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        response.results.failed_count(),
        response.simulated,
        response.cache.hits,
        response.cache.misses,
    );
    Ok(match send(out, &trailer) {
        Ok(()) => Reply::Continue,
        Err(_) => Reply::ClientGone,
    })
}
