//! Sweep as a service: a long-lived process that answers newline-delimited
//! JSON sweep requests over a local TCP socket, sharding cache misses
//! across the worker pool and streaming records back as they complete.
//!
//! ## Framing
//!
//! One JSON object per `\n`-terminated line, in both directions. Requests:
//!
//! ```text
//! {"request": "ping"}
//! {"request": "sweep", "matrix": {...}, "threads": 4}
//! {"request": "shutdown"}
//! ```
//!
//! The `"matrix"` member uses exactly the matrix-file format (including
//! its optional `budget`, `retries` and `run_timeout_ms` members — the
//! server's default budget fills in like the CLI's `--budget`); `"threads"`
//! optionally overrides the server's worker count for this request.
//!
//! A sweep response streams, in order:
//!
//! ```text
//! {"response": "sweep", "schema_version": 5, "run_count": R}
//! {"run": {...}}                    × R, in matrix order
//! {"tables": {...}}
//! {"done": true, "failed_count": F, "simulated": S,
//!  "cache_hits": H, "cache_misses": M}
//! ```
//!
//! Every `run` line is [`RunRecord::to_json_object`] and the `tables`
//! line is [`SweepResults::tables_json`](crate::SweepResults::tables_json)
//! — the same renderings the file report uses — so the payload lines of a
//! fully cached response are byte-identical to a freshly simulated one.
//! Only the `done` trailer says how the answer was produced. A `ping`
//! answers `{"ok": "pong", "schema_version": 5}`; a `shutdown` answers
//! `{"ok": "shutdown"}` and makes [`SweepServer::serve`] return.
//!
//! A malformed or unserviceable request answers one `{"error": "..."}`
//! line and leaves the connection usable. Connections are handled one at
//! a time (the worker pool already saturates the machine); a dropped
//! client aborts nothing — the sweep finishes and its results stay cached
//! for the retry.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::matrix_file::{matrix_from_value, u64_field, Json, Parser};
use crate::{json_escape, sweep_streaming, RunRecord, SweepOptions, SweepRequest, SCHEMA_VERSION};

/// The resident sweep front end: bind once, then [`SweepServer::serve`]
/// until a `shutdown` request.
#[derive(Debug)]
pub struct SweepServer {
    listener: TcpListener,
    budget: u64,
    options: SweepOptions,
}

/// What one request line did to the connection.
enum Reply {
    /// Keep reading request lines.
    Continue,
    /// A `shutdown` request: stop accepting entirely.
    Shutdown,
    /// The client vanished mid-write: drop this connection, keep serving.
    ClientGone,
}

fn send(out: &mut TcpStream, line: &str) -> std::io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

impl SweepServer {
    /// Binds `addr` (e.g. `127.0.0.1:4601`; port 0 picks a free port).
    /// `default_budget` fills in for matrices that carry no `budget`;
    /// `options` is the per-request execution-policy base — its `journal`
    /// and `resume` are ignored (a journal describes exactly one matrix,
    /// a server answers many; the cache is the cross-request memory).
    ///
    /// # Errors
    ///
    /// The address cannot be bound.
    pub fn bind(addr: &str, default_budget: u64, options: SweepOptions) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let mut options = options;
        options.journal = None;
        options.resume = false;
        Ok(SweepServer {
            listener,
            budget: default_budget,
            options,
        })
    }

    /// The bound address (the OS-chosen port when bound to port 0).
    ///
    /// # Errors
    ///
    /// The socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// Accepts and serves connections, one at a time, until a client sends
    /// `{"request": "shutdown"}`. Client-side failures (disconnects,
    /// malformed requests) never end the loop.
    ///
    /// # Errors
    ///
    /// Listener-level `accept` failures only; everything request-scoped is
    /// answered in-band as an `error` line.
    pub fn serve(&self) -> Result<(), String> {
        loop {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| format!("accept failed: {e}"))?;
            if self.handle_connection(stream) {
                return Ok(());
            }
        }
    }

    /// Reads request lines until the client disconnects or asks for
    /// shutdown. Returns `true` on shutdown.
    fn handle_connection(&self, stream: TcpStream) -> bool {
        let Ok(reading) = stream.try_clone() else {
            return false;
        };
        let mut out = stream;
        for line in BufReader::new(reading).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match self.handle_line(&line, &mut out) {
                Reply::Continue => {}
                Reply::Shutdown => return true,
                Reply::ClientGone => break,
            }
        }
        false
    }

    /// Parses and answers one request line. Request-level problems are
    /// answered as an `{"error": ...}` line on the same connection.
    fn handle_line(&self, line: &str, out: &mut TcpStream) -> Reply {
        match self.dispatch(line, out) {
            Ok(reply) => reply,
            Err(msg) => {
                let err = format!("{{\"error\": \"{}\"}}", json_escape(&msg));
                match send(out, &err) {
                    Ok(()) => Reply::Continue,
                    Err(_) => Reply::ClientGone,
                }
            }
        }
    }

    fn dispatch(&self, line: &str, out: &mut TcpStream) -> Result<Reply, String> {
        let root = Parser::new(line)
            .value()
            .map_err(|e| format!("bad request: {e}"))?;
        let kind = match root.get("request") {
            Some(Json::Str(s)) => s.clone(),
            Some(other) => {
                return Err(format!(
                    "bad request: \"request\" must be a string, got {}",
                    other.type_name()
                ))
            }
            None => return Err("bad request: missing \"request\"".into()),
        };
        match kind.as_str() {
            "ping" => {
                let pong = format!("{{\"ok\": \"pong\", \"schema_version\": {SCHEMA_VERSION}}}");
                Ok(match send(out, &pong) {
                    Ok(()) => Reply::Continue,
                    Err(_) => Reply::ClientGone,
                })
            }
            "shutdown" => {
                let _ = send(out, "{\"ok\": \"shutdown\"}");
                Ok(Reply::Shutdown)
            }
            "sweep" => self.handle_sweep(&root, out),
            other => Err(format!("bad request: unknown request {other:?}")),
        }
    }

    /// Runs one sweep request, streaming the response as records land.
    fn handle_sweep(&self, root: &Json, out: &mut TcpStream) -> Result<Reply, String> {
        let matrix_value = root
            .get("matrix")
            .ok_or("bad request: sweep needs a \"matrix\"")?;
        let matrix =
            matrix_from_value(matrix_value, self.budget).map_err(|e| format!("bad matrix: {e}"))?;
        let mut opts = self.options.clone();
        if let Some(threads) =
            u64_field(root, "threads").map_err(|e| format!("bad request: {e}"))?
        {
            opts.threads = threads as usize;
        }
        opts.retries = matrix.retries;
        if let Some(ms) = matrix.run_timeout_ms {
            opts.run_timeout = Some(std::time::Duration::from_millis(ms));
        }

        let run_count = matrix.expand().len();
        let header = format!(
            "{{\"response\": \"sweep\", \"schema_version\": {SCHEMA_VERSION}, \
             \"run_count\": {run_count}}}"
        );
        if send(out, &header).is_err() {
            return Ok(Reply::ClientGone);
        }
        // The sink is infallible by signature; a vanished client mutes
        // further writes (the sweep still completes — its records are
        // cached for the client's retry) and drops the connection after.
        let mut gone = false;
        let request = SweepRequest::new(matrix).with_options(opts);
        let response = sweep_streaming(&request, &mut |record: &RunRecord| {
            if !gone {
                let line = format!("{{\"run\": {}}}", record.to_json_object());
                gone = send(out, &line).is_err();
            }
        })?;
        if gone {
            return Ok(Reply::ClientGone);
        }
        let tables = format!("{{\"tables\": {}}}", response.results.tables_json());
        if send(out, &tables).is_err() {
            return Ok(Reply::ClientGone);
        }
        let trailer = format!(
            "{{\"done\": true, \"failed_count\": {}, \"simulated\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}",
            response.results.failed_count(),
            response.simulated,
            response.cache.hits,
            response.cache.misses,
        );
        Ok(match send(out, &trailer) {
            Ok(()) => Reply::Continue,
            Err(_) => Reply::ClientGone,
        })
    }
}
