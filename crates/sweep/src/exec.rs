//! The shared sweep execution engine behind `sweep --serve`.
//!
//! One [`WorkerPool`] owns a FIFO work queue that interleaves runs from
//! every concurrent request (replacing the per-sweep atomic cursor the
//! original `sweep_streaming` used), one optional shared
//! [`ResultCache`] handle serves every request, and
//! an in-flight table deduplicates identical [`RunKey`]s
//! *while they are still running* — so N clients sweeping overlapping
//! matrices simulate each distinct point at most once even before its
//! blob lands in the cache.
//!
//! The standalone `sweep_streaming` path builds a transient
//! [`SweepExecutor`] per call, so there is exactly one execution engine:
//! single-client output stays bit-identical to the pre-pool
//! implementation by construction (same prefill rules, same in-order
//! emitter, same [`RunRecord`] rendering).
//!
//! Cancellation is cooperative and per-request: a [`RunControl`] carries
//! a cancel flag plus an optional wall-clock deadline. Jobs belonging to
//! a cancelled request are *skipped* when a worker reaches them (never
//! interrupted mid-simulation — a run already in flight completes and
//! its result still lands in the cache), and the in-order emitter stops
//! at the first unfinished slot. Other requests sharing the pool are
//! untouched.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{CacheStats, Lookup, ResultCache};
use crate::{
    default_run_timeout, journal, lock_unpoisoned, panic_message, run_point, stable_hash, RunKey,
    RunRecord, RunSpec, RunStatus, SweepOptions, SweepRequest, SweepResponse, SweepResults,
};

/// How often the in-order emitter and the drain paths re-check the
/// cancel flag and deadline while waiting on a condition variable. Pure
/// liveness tuning: correctness never depends on the value.
const POLL: Duration = Duration::from_millis(25);

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    open: bool,
    in_flight: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
}

/// A fixed set of worker threads draining one shared FIFO job queue.
///
/// Jobs from concurrent sweep requests interleave in submission order,
/// so no single request can monopolize the pool by arriving first with
/// a huge matrix *and* nothing deadlocks when requests outnumber
/// workers (every job is independent; none blocks on another job's
/// slot). A panicking job is caught and never kills its worker.
///
/// Dropping the pool closes the queue, lets the workers drain what was
/// already submitted, and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                open: true,
                in_flight: 0,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweep-pool-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("cannot spawn sweep pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueues one job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = lock_unpoisoned(&self.shared.state);
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work.notify_one();
    }

    /// Jobs submitted but not yet finished (queued + currently running).
    /// The admission-control signal for `--max-pending-runs`.
    pub fn pending(&self) -> usize {
        let state = lock_unpoisoned(&self.shared.state);
        state.queue.len() + state.in_flight
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_unpoisoned(&self.shared.state).open = false;
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock_unpoisoned(&shared.state);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if !state.open {
                    return;
                }
                state = shared.work.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        };
        // A job must never take its worker down with it; run_job already
        // converts run panics into records, so this catch only guards
        // bookkeeping bugs.
        let _ = catch_unwind(AssertUnwindSafe(job));
        lock_unpoisoned(&shared.state).in_flight -= 1;
    }
}

/// One key's in-flight rendezvous cell: the leader publishes the
/// outcome (`Some(record)` for a storable `ok` run, `None` for a
/// failure, which followers must re-attempt) and wakes every follower.
struct RunCell {
    outcome: Mutex<Option<Option<RunRecord>>>,
    ready: Condvar,
}

enum Claim {
    /// This caller simulates the point and must publish via `release`.
    Lead(Arc<RunCell>),
    /// Another request is already simulating the identical point; wait
    /// on the cell.
    Follow(Arc<RunCell>),
}

/// Deduplicates identical [`RunKey`]s *across concurrent requests*: the
/// first job to claim a key becomes the leader and simulates; jobs from
/// other requests holding the same key follow and reuse the leader's
/// record (rebased onto their own spec — legal because equal keys mean
/// equal semantic inputs, hence bit-identical metrics). Failures are
/// not shared: a follower whose leader failed re-claims and re-runs,
/// so one client's panic or timeout never surfaces in another's stream.
#[derive(Default)]
struct InflightTable {
    running: Mutex<BTreeMap<u64, Arc<RunCell>>>,
}

impl InflightTable {
    fn claim(&self, key: RunKey) -> Claim {
        let mut running = lock_unpoisoned(&self.running);
        if let Some(cell) = running.get(&key.as_u64()) {
            return Claim::Follow(Arc::clone(cell));
        }
        let cell = Arc::new(RunCell {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        });
        running.insert(key.as_u64(), Arc::clone(&cell));
        Claim::Lead(cell)
    }

    /// Publishes the leader's outcome, then retires the key. Publishing
    /// first means a racing `claim` between the two steps still lands on
    /// the resolved cell instead of becoming a redundant leader.
    fn release(&self, key: RunKey, cell: &Arc<RunCell>, outcome: Option<RunRecord>) {
        *lock_unpoisoned(&cell.outcome) = Some(outcome);
        cell.ready.notify_all();
        lock_unpoisoned(&self.running).remove(&key.as_u64());
    }

    fn wait(cell: &Arc<RunCell>) -> Option<RunRecord> {
        let mut guard = lock_unpoisoned(&cell.outcome);
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = cell.ready.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Per-request cancellation: a shared cancel flag plus an optional
/// wall-clock deadline. Workers and the in-order emitter check it
/// cooperatively; a run already simulating is never interrupted (its
/// result still lands in the cache for the retry).
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Set to stop scheduling this request's remaining runs. Shared so
    /// a connection's reader thread can flip it mid-stream.
    pub cancel: Arc<AtomicBool>,
    /// Absolute wall-clock deadline; reaching it sets `cancel`.
    pub deadline: Option<Instant>,
}

impl RunControl {
    /// A control that never cancels — the standalone `sweep_streaming`
    /// path.
    pub fn unbounded() -> RunControl {
        RunControl::default()
    }

    /// A control with an absolute deadline.
    pub fn with_deadline(deadline: Instant) -> RunControl {
        RunControl {
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation.
    pub fn cancel_now(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested or the deadline passed
    /// (which latches the cancel flag).
    pub fn cancelled(&self) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// What one executed request produced. A cancelled request has no
/// [`SweepResponse`] — only the count of records that were streamed in
/// order before cancellation was observed.
#[derive(Debug)]
pub struct ServedSweep {
    /// The complete response; `None` when the request was cancelled.
    pub response: Option<SweepResponse>,
    /// Records handed to the sink (always a matrix-order prefix).
    pub streamed: usize,
    /// Whether the request stopped early via cancel flag or deadline.
    pub cancelled: bool,
}

/// How one request's runs were tracked: pending, finished, or skipped
/// by cancellation.
enum Slot {
    Empty,
    Done(Box<RunRecord>),
    Skipped,
}

/// One request's shared state, visible to its pool jobs and its
/// emitter.
struct ReqState {
    specs: Vec<RunSpec>,
    keys: Vec<RunKey>,
    opts: SweepOptions,
    timeout: Duration,
    slots: Mutex<Vec<Slot>>,
    advanced: Condvar,
    control: RunControl,
    journal: Option<journal::JournalWriter>,
    cache: Option<Arc<ResultCache>>,
    inflight: Arc<InflightTable>,
    io_error: Mutex<Option<String>>,
    simulated: AtomicUsize,
    // Per-request cache tallies. The shared handle's own counters span
    // every request, so each request counts its own traffic for its
    // trailer — a single-request session tallies exactly what the old
    // per-sweep handle reported.
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl ReqState {
    fn report_io(&self, e: String) {
        let mut slot = lock_unpoisoned(&self.io_error);
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn fill(&self, index: usize, slot: Slot) {
        lock_unpoisoned(&self.slots)[index] = slot;
        self.advanced.notify_all();
    }

    fn record_done(&self, index: usize, record: RunRecord) {
        if let Some(w) = &self.journal {
            if let Err(e) = w.append(&record, self.keys[index]) {
                self.report_io(e);
            }
        }
        self.fill(index, Slot::Done(Box::new(record)));
    }
}

/// The shared execution engine: a [`WorkerPool`], an optional shared
/// cache handle, and the cross-request in-flight table. `sweep --serve`
/// holds one for its whole lifetime; the standalone sweep path builds a
/// transient one per call.
pub struct SweepExecutor {
    pool: WorkerPool,
    cache: Option<Arc<ResultCache>>,
    inflight: Arc<InflightTable>,
}

impl SweepExecutor {
    /// An executor with `threads` pool workers and an optional shared
    /// cache handle (used by every request regardless of the request's
    /// own cache options).
    pub fn new(threads: usize, cache: Option<Arc<ResultCache>>) -> SweepExecutor {
        SweepExecutor {
            pool: WorkerPool::new(threads),
            cache,
            inflight: Arc::new(InflightTable::default()),
        }
    }

    /// Jobs queued or running across all requests (the admission-control
    /// signal).
    pub fn pending(&self) -> usize {
        self.pool.pending()
    }

    /// Executes one request on the shared pool, streaming records to
    /// `sink` in matrix order, honouring `control` between runs. The
    /// sink runs on the calling thread; concurrent `run` calls from
    /// different threads interleave their jobs on the one pool.
    ///
    /// # Errors
    ///
    /// Journal/cache I/O and resume-validation failures, exactly as
    /// documented on [`crate::sweep`]. Cancellation is not an error.
    pub fn run(
        &self,
        request: &SweepRequest,
        sink: &mut dyn FnMut(&RunRecord),
        control: &RunControl,
    ) -> Result<ServedSweep, String> {
        let matrix = &request.matrix;
        let opts = &request.options;
        let specs = matrix.expand();
        let keys: Vec<RunKey> = specs.iter().map(RunKey::of).collect();
        let hash = stable_hash::matrix_identity(&keys);
        let mut prefilled: Vec<Option<RunRecord>> = vec![None; specs.len()];
        let writer = match &opts.journal {
            Some(path) => {
                if opts.resume && path.exists() {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
                    prefilled = journal::load_journal(&text, hash, &specs)?;
                    Some(journal::JournalWriter::append_existing(path)?)
                } else {
                    Some(journal::JournalWriter::create(path, hash, specs.len())?)
                }
            }
            None if opts.resume => {
                return Err("resume needs a journal path (set SweepOptions::journal)".into())
            }
            None => None,
        };
        let cache = match &self.cache {
            Some(shared) => Some(Arc::clone(shared)),
            None => match &opts.cache {
                Some(dir) => Some(Arc::new(ResultCache::open(dir, opts.cache_capacity)?)),
                None => None,
            },
        };
        let (mut hits, mut misses, mut corrupt) = (0u64, 0u64, 0u64);
        if let Some(cache) = &cache {
            // Journal pre-fill wins (it is this sweep's own prior
            // progress); the cache covers the remaining slots. Hits are
            // journaled so a later --resume of the same journal
            // converges without the cache.
            for (i, slot) in prefilled.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                match cache.lookup(keys[i], &specs[i]) {
                    Lookup::Hit(record) => {
                        if let Some(w) = &writer {
                            w.append(&record, keys[i])?;
                        }
                        hits += 1;
                        *slot = Some(*record);
                    }
                    Lookup::Absent => misses += 1,
                    Lookup::Corrupt => {
                        misses += 1;
                        corrupt += 1;
                    }
                }
            }
        }
        let timeout = opts
            .run_timeout
            .unwrap_or_else(|| default_run_timeout(matrix.budget));
        let run_count = specs.len();
        let slots: Vec<Slot> = prefilled
            .into_iter()
            .map(|p| p.map_or(Slot::Empty, |r| Slot::Done(Box::new(r))))
            .collect();
        let state = Arc::new(ReqState {
            specs,
            keys,
            opts: opts.clone(),
            timeout,
            slots: Mutex::new(slots),
            advanced: Condvar::new(),
            control: control.clone(),
            journal: writer,
            cache,
            inflight: Arc::clone(&self.inflight),
            io_error: Mutex::new(None),
            simulated: AtomicUsize::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        });
        for i in 0..run_count {
            if matches!(lock_unpoisoned(&state.slots)[i], Slot::Empty) {
                let state = Arc::clone(&state);
                self.pool.submit(move || run_job(&state, i));
            }
        }
        // In-order emitter on the calling thread, polling so an
        // asynchronous cancel (reader thread, deadline) is observed even
        // while every slot it is waiting on is still empty.
        let mut streamed = 0usize;
        let mut cancelled = false;
        'emit: for i in 0..run_count {
            let record = {
                let mut guard = lock_unpoisoned(&state.slots);
                loop {
                    match &guard[i] {
                        Slot::Done(record) => break record.as_ref().clone(),
                        Slot::Skipped => {
                            cancelled = true;
                            break 'emit;
                        }
                        Slot::Empty => {
                            if state.control.cancelled() {
                                cancelled = true;
                                break 'emit;
                            }
                            let (g, _) = state
                                .advanced
                                .wait_timeout(guard, POLL)
                                .unwrap_or_else(|p| p.into_inner());
                            guard = g;
                        }
                    }
                }
            };
            sink(&record);
            streamed += 1;
        }
        if cancelled {
            return Ok(ServedSweep {
                response: None,
                streamed,
                cancelled: true,
            });
        }
        if let Some(e) = lock_unpoisoned(&state.io_error).take() {
            return Err(e);
        }
        let runs: Vec<RunRecord> = lock_unpoisoned(&state.slots)
            .iter()
            .map(|slot| match slot {
                Slot::Done(record) => record.as_ref().clone(),
                // The emitter above walked every index without seeing a
                // skip, so every slot is Done.
                Slot::Empty | Slot::Skipped => unreachable!("emitted sweep has a record per slot"),
            })
            .collect();
        let cache_stats = CacheStats {
            hits,
            misses,
            stores: state.stores.load(Ordering::Relaxed),
            evictions: state.evictions.load(Ordering::Relaxed),
            corrupt,
        };
        Ok(ServedSweep {
            response: Some(SweepResponse {
                results: SweepResults {
                    matrix: matrix.clone(),
                    runs,
                },
                simulated: state.simulated.load(Ordering::Relaxed),
                cache: cache_stats,
            }),
            streamed,
            cancelled: false,
        })
    }
}

/// One pool job: resolve matrix index `i` of `state`'s request, via
/// skip (cancelled), in-flight follow, late cache hit, or a fresh
/// simulation.
fn run_job(state: &Arc<ReqState>, i: usize) {
    if state.control.cancelled() {
        state.fill(i, Slot::Skipped);
        return;
    }
    let key = state.keys[i];
    loop {
        match state.inflight.claim(key) {
            Claim::Lead(cell) => {
                let spec = &state.specs[i];
                // Re-check the cache at claim time: a concurrent request
                // may have stored this exact point between our prefill
                // and now. The prefill already counted the miss, so a
                // late hit adjusts nothing — it only avoids paying for a
                // duplicate simulation.
                if let Some(cache) = &state.cache {
                    if let Lookup::Hit(record) = cache.lookup(key, spec) {
                        state
                            .inflight
                            .release(key, &cell, Some(record.as_ref().clone()));
                        state.record_done(i, *record);
                        return;
                    }
                }
                let record = catch_unwind(AssertUnwindSafe(|| {
                    run_point(spec, &state.opts, state.timeout)
                }))
                .unwrap_or_else(|payload| {
                    RunRecord::failed(
                        spec,
                        RunStatus::Panicked {
                            msg: panic_message(payload.as_ref()),
                        },
                    )
                });
                state.simulated.fetch_add(1, Ordering::Relaxed);
                if record.status.is_ok() {
                    if let Some(cache) = &state.cache {
                        match cache.store(&record, key) {
                            Ok(evicted) => {
                                state.stores.fetch_add(1, Ordering::Relaxed);
                                state.evictions.fetch_add(evicted, Ordering::Relaxed);
                            }
                            Err(e) => state.report_io(e),
                        }
                    }
                }
                let shared = record.status.is_ok().then(|| record.clone());
                state.inflight.release(key, &cell, shared);
                state.record_done(i, record);
                return;
            }
            Claim::Follow(cell) => match InflightTable::wait(&cell) {
                Some(peer) => {
                    // Equal keys mean equal semantic inputs, so the
                    // peer's metrics are bit-identical to what we would
                    // have simulated; only the spec (index, findings)
                    // is ours.
                    state.record_done(i, peer.rebase(&state.specs[i]));
                    return;
                }
                // The leader failed; its failure belongs to its own
                // stream. Re-claim (we may become the new leader) and
                // attempt the point ourselves.
                None => std::thread::yield_now(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvfsPoint, ModePoint, SweepMatrix, WORKLOAD_SEED};
    use gals_workload::{Benchmark, Workload};

    fn tiny_matrix() -> SweepMatrix {
        SweepMatrix {
            benchmarks: vec![Workload::Profile(Benchmark::Adpcm)],
            modes: vec![
                ModePoint::Synchronous,
                ModePoint::Gals {
                    wakeup_filter: false,
                },
            ],
            dvfs: vec![DvfsPoint::nominal()],
            phase_seeds: vec![1],
            workload_seed: WORKLOAD_SEED,
            budget: 400,
            retries: 0,
            run_timeout_ms: None,
        }
    }

    #[test]
    fn pool_runs_jobs_and_drains_on_drop() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins after draining the queue
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("job bug"));
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        pool.submit(move || flag.store(true, Ordering::Relaxed));
        drop(pool);
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn a_pre_cancelled_request_simulates_nothing() {
        let executor = SweepExecutor::new(2, None);
        let control = RunControl::unbounded();
        control.cancel_now();
        let request = SweepRequest::new(tiny_matrix());
        let served = executor
            .run(&request, &mut |_| panic!("nothing should stream"), &control)
            .expect("run");
        assert!(served.cancelled);
        assert_eq!(served.streamed, 0);
        assert!(served.response.is_none());
    }

    #[test]
    fn followers_reuse_the_leader_outcome() {
        let table = InflightTable::default();
        let specs = tiny_matrix().expand();
        let key = RunKey::of(&specs[0]);
        let Claim::Lead(lead_cell) = table.claim(key) else {
            panic!("first claim must lead");
        };
        let Claim::Follow(follow_cell) = table.claim(key) else {
            panic!("second claim must follow");
        };
        let record = specs[0].run();
        table.release(key, &lead_cell, Some(record.clone()));
        assert_eq!(InflightTable::wait(&follow_cell), Some(record));
        // The key is retired: the next claim leads again.
        assert!(matches!(table.claim(key), Claim::Lead(_)));
    }

    #[test]
    fn a_failed_leader_makes_followers_retry() {
        let table = InflightTable::default();
        let specs = tiny_matrix().expand();
        let key = RunKey::of(&specs[0]);
        let Claim::Lead(lead_cell) = table.claim(key) else {
            panic!("first claim must lead");
        };
        let Claim::Follow(follow_cell) = table.claim(key) else {
            panic!("second claim must follow");
        };
        table.release(key, &lead_cell, None);
        assert_eq!(InflightTable::wait(&follow_cell), None);
    }
}
