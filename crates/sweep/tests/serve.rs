//! `sweep --serve` behind its library face: NDJSON framing, in-order
//! streaming, byte-identical cached-vs-fresh payloads, overlap requests
//! that simulate only novel points, and graceful error/shutdown handling.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};

use gals_sweep::{SweepOptions, SweepServer, SCHEMA_VERSION};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gals-sweep-servetest-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Starts a server on an OS-chosen port with a cache, returning the
/// address and the serving thread (joined after a shutdown request).
fn start_server(tag: &str) -> (String, std::thread::JoinHandle<()>, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let options = SweepOptions::new().threads(2).cache(dir.clone());
    let server = SweepServer::bind("127.0.0.1:0", 400, options).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, dir)
}

/// Sends one request line and reads reply lines until `stop` says done.
fn transact(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
    stop: impl Fn(&str) -> bool,
) -> Vec<String> {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server hung up"
        );
        let line = line.trim_end().to_string();
        let done = stop(&line);
        lines.push(line);
        if done {
            return lines;
        }
    }
}

const SMALL_MATRIX: &str = "{\"request\": \"sweep\", \"matrix\": {\
     \"benchmarks\": [\"adpcm\"], \
     \"modes\": [\"sync\", \"gals\"], \
     \"dvfs\": [\"nominal\"], \
     \"phase_seeds\": [1]}}";

#[test]
fn serves_ping_sweep_overlap_errors_and_shutdown() {
    let (addr, handle, dir) = start_server("full");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Ping.
    let pong = transact(&mut stream, &mut reader, "{\"request\": \"ping\"}", |l| {
        l.contains("pong")
    });
    assert_eq!(
        pong,
        vec![format!(
            "{{\"ok\": \"pong\", \"schema_version\": {SCHEMA_VERSION}}}"
        )]
    );

    // A malformed request answers an error and keeps the connection.
    let err = transact(
        &mut stream,
        &mut reader,
        "{\"request\": \"frobnicate\"}",
        |_| true,
    );
    assert!(err[0].starts_with("{\"error\": "), "{err:?}");
    let err = transact(&mut stream, &mut reader, "not json", |_| true);
    assert!(err[0].starts_with("{\"error\": "), "{err:?}");
    let err = transact(&mut stream, &mut reader, "{\"request\": \"sweep\"}", |_| {
        true
    });
    assert!(err[0].contains("needs a \\\"matrix\\\""), "{err:?}");

    // A fresh sweep: header, R runs in matrix order, tables, trailer.
    let fresh = transact(&mut stream, &mut reader, SMALL_MATRIX, |l| {
        l.starts_with("{\"done\": ")
    });
    assert_eq!(fresh.len(), 1 + 2 + 1 + 1);
    assert_eq!(
        fresh[0],
        format!(
            "{{\"response\": \"sweep\", \"schema_version\": {SCHEMA_VERSION}, \"run_count\": 2}}"
        )
    );
    assert!(
        fresh[1].starts_with("{\"run\": {\"index\": 0, \"benchmark\": \"adpcm\""),
        "{}",
        fresh[1]
    );
    assert!(
        fresh[2].starts_with("{\"run\": {\"index\": 1, "),
        "{}",
        fresh[2]
    );
    assert!(
        fresh[3].starts_with("{\"tables\": {\"pausible_slowdown_vs_handshake\": ["),
        "{}",
        fresh[3]
    );
    assert_eq!(
        fresh[4],
        "{\"done\": true, \"failed_count\": 0, \"simulated\": 2, \
         \"cache_hits\": 0, \"cache_misses\": 2}"
    );

    // The identical request again: payload lines byte-identical, trailer
    // reports pure cache traffic.
    let cached = transact(&mut stream, &mut reader, SMALL_MATRIX, |l| {
        l.starts_with("{\"done\": ")
    });
    assert_eq!(
        cached[..4],
        fresh[..4],
        "cached-vs-fresh payloads are bit-identical"
    );
    assert_eq!(
        cached[4],
        "{\"done\": true, \"failed_count\": 0, \"simulated\": 0, \
         \"cache_hits\": 2, \"cache_misses\": 0}"
    );

    // An overlapping request (one extra mode) simulates only the novelty.
    let overlap = SMALL_MATRIX.replace(
        "\"sync\", \"gals\"",
        "\"sync\", \"gals\", \"pausible@300ps\"",
    );
    let third = transact(&mut stream, &mut reader, &overlap, |l| {
        l.starts_with("{\"done\": ")
    });
    assert!(third[0].ends_with("\"run_count\": 3}"), "{}", third[0]);
    assert_eq!(
        third[5],
        "{\"done\": true, \"failed_count\": 0, \"simulated\": 1, \
         \"cache_hits\": 2, \"cache_misses\": 1}"
    );
    // The shared points' payload lines are bit-identical to the first
    // response's (the novel pausible mode lands at a later index).
    assert_eq!(third[1], fresh[1]);
    assert_eq!(third[2], fresh[2]);

    // Shutdown ends serve() and the thread joins.
    let bye = transact(
        &mut stream,
        &mut reader,
        "{\"request\": \"shutdown\"}",
        |_| true,
    );
    assert_eq!(bye, vec!["{\"ok\": \"shutdown\"}".to_string()]);
    handle.join().expect("server thread");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dropped_client_does_not_kill_the_server() {
    let (addr, handle, dir) = start_server("drop");
    // Connect, say nothing valid, and vanish.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(b"{\"request\": \"ping\"}\n")
            .expect("send");
        // Drop without reading.
    }
    // The server still answers the next client.
    let mut stream = TcpStream::connect(&addr).expect("reconnect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let pong = transact(&mut stream, &mut reader, "{\"request\": \"ping\"}", |l| {
        l.contains("pong")
    });
    assert!(pong[0].contains("pong"));
    let _ = transact(
        &mut stream,
        &mut reader,
        "{\"request\": \"shutdown\"}",
        |_| true,
    );
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
