//! Fault-tolerant execution, proven end-to-end with deterministic fault
//! injection (`--features chaos`): injected panics, wedges and stalls must
//! be isolated to their own matrix point, surface as structured
//! [`RunStatus`] records, leave every *surviving* run bit-identical to a
//! failure-free serial sweep, and converge to a bit-identical clean report
//! through the journal's kill-and-resume path.

#![cfg(feature = "chaos")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use gals_sweep::{
    run_sweep, run_sweep_with, DvfsPoint, FaultPlan, ModePoint, RunStatus, SweepMatrix,
    SweepOptions, WORKLOAD_SEED,
};
use gals_workload::{Benchmark, Workload};
use proptest::prelude::*;

fn small_matrix(seed: u64, budget: u64) -> SweepMatrix {
    SweepMatrix {
        benchmarks: vec![
            Workload::Profile(Benchmark::Adpcm),
            Workload::Profile(Benchmark::Compress),
        ],
        modes: vec![
            ModePoint::Synchronous,
            ModePoint::Gals {
                wakeup_filter: false,
            },
            ModePoint::Pausible {
                handshake_ps: 300,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: true,
            },
        ],
        dvfs: vec![DvfsPoint::nominal()],
        phase_seeds: vec![seed],
        workload_seed: WORKLOAD_SEED,
        budget,
        retries: 0,
        run_timeout_ms: None,
    }
}

/// A unique temp path per call (tests share one process).
fn temp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gals-sweep-chaos-{}-{}-{tag}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Injected panics and wedges at arbitrary points must not disturb a
    /// single bit of any surviving run, across thread counts.
    #[test]
    fn survivors_are_bit_identical_to_a_clean_serial_sweep(
        fault_seed in 0u64..1_000,
        phase_seed in 1u64..5,
        threads in 1usize..5,
    ) {
        let matrix = small_matrix(phase_seed, 600);
        let clean = run_sweep(&matrix, 1);
        let faults = FaultPlan::seeded(fault_seed, clean.runs.len(), 1, 1);
        let chaotic = run_sweep_with(
            &matrix,
            &SweepOptions::new().threads(threads).faults(faults.clone()),
        ).expect("chaotic sweep still completes");

        prop_assert_eq!(chaotic.runs.len(), clean.runs.len());
        prop_assert_eq!(chaotic.failed_count(), 2);
        for (got, want) in chaotic.runs.iter().zip(clean.runs.iter()) {
            let i = want.spec.index;
            if faults.panic_at.contains(&i) {
                prop_assert!(
                    matches!(&got.status, RunStatus::Panicked { msg }
                        if msg.contains(&format!("matrix point {i}"))),
                    "point {i}: {:?}", got.status
                );
                prop_assert_eq!(got.committed, 0);
            } else if faults.wedge_at.contains(&i) {
                prop_assert!(
                    matches!(got.status, RunStatus::Deadlocked { .. }),
                    "point {i}: {:?}", got.status
                );
            } else {
                // Survivors: bit-identical, metrics included.
                prop_assert_eq!(got, want);
            }
        }
    }
}

#[test]
fn wedged_point_reports_a_deterministic_structured_deadlock() {
    let matrix = small_matrix(1, 600);
    let wedge_index = 1; // the adpcm FIFO-GALS point
    let faults = FaultPlan {
        wedge_at: vec![wedge_index],
        ..FaultPlan::default()
    };
    let opts = SweepOptions::new().faults(faults);
    let a = run_sweep_with(&matrix, &opts).expect("sweep a");
    let b = run_sweep_with(&matrix, &opts).expect("sweep b");
    let RunStatus::Deadlocked { report: ra } = &a.runs[wedge_index].status else {
        panic!("expected deadlock, got {:?}", a.runs[wedge_index].status);
    };
    let RunStatus::Deadlocked { report: rb } = &b.runs[wedge_index].status else {
        panic!("expected deadlock, got {:?}", b.runs[wedge_index].status);
    };
    assert_eq!(ra, rb, "deadlock diagnostics must be deterministic");
    // The stuck machine really is stuck behind the withheld writeback.
    assert!(ra.committed < matrix.budget);
    assert_eq!(ra.rob_head_seq, Some(200), "head is the withheld seq");

    // The structured report lands in the JSON artifact.
    let json = a.to_json();
    assert!(json.contains("\"status\": \"deadlocked\""), "{json}");
    assert!(json.contains("\"deadlock\": {\"trigger\": \""), "{json}");
    assert!(json.contains("\"rob_head_seq\": 200"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn static_check_flags_exactly_the_points_the_runtime_wedges() {
    // The `sweep --check` contract end-to-end: with a chaos wedge armed,
    // check_matrix flags GA002 at the wedged index and nowhere else, and
    // the real sweep's deadlock report for that point carries the same
    // verdict in `static_finding` (cross-referenced into the JSON).
    let matrix = small_matrix(1, 600);
    let wedge_index = 2;
    let opts = SweepOptions::new().faults(FaultPlan {
        wedge_at: vec![wedge_index],
        ..FaultPlan::default()
    });

    let checked = gals_sweep::check_matrix(&matrix, &opts);
    assert_eq!(checked.len(), matrix.expand().len());
    for (spec, findings) in &checked {
        if spec.index == wedge_index {
            assert_eq!(findings.len(), 1, "point {}: {findings:?}", spec.index);
            assert_eq!(findings[0].code, "GA002");
        } else {
            assert!(findings.is_empty(), "point {}: {findings:?}", spec.index);
        }
    }

    let results = run_sweep_with(&matrix, &opts).expect("sweep");
    let RunStatus::Deadlocked { report } = &results.runs[wedge_index].status else {
        panic!(
            "expected deadlock, got {:?}",
            results.runs[wedge_index].status
        );
    };
    assert_eq!(report.static_finding.as_deref(), Some("GA002"));
    let json = results.to_json();
    assert!(json.contains("\"static_finding\": \"GA002\""), "{json}");
    // The spec-level `analysis` arrays stay empty: the wedge is an
    // execution-policy fault, not a property of the matrix point, so
    // journaled resumes recompute records bit-identically.
    assert!(!json.contains("\"analysis\""), "{json}");
}

#[test]
fn stalled_point_times_out_without_poisoning_the_sweep() {
    let matrix = small_matrix(1, 400);
    let opts = SweepOptions::new()
        .run_timeout(Duration::from_millis(100))
        .faults(FaultPlan {
            stall_at: vec![(0, 60_000)],
            ..FaultPlan::default()
        });
    let results = run_sweep_with(&matrix, &opts).expect("sweep completes");
    assert_eq!(results.runs[0].status, RunStatus::TimedOut);
    assert_eq!(results.failed_count(), 1);
    let clean = run_sweep(&matrix, 1);
    for (got, want) in results.runs.iter().zip(clean.runs.iter()).skip(1) {
        assert_eq!(got, want, "non-stalled runs are untouched");
    }
}

#[test]
fn killed_sweep_resumes_to_a_bit_identical_clean_report() {
    let matrix = small_matrix(2, 600);
    let clean = run_sweep(&matrix, 1);
    let path = temp_path("kill-resume");

    // First invocation: one panic + one wedge, journaled.
    let faulted = run_sweep_with(
        &matrix,
        &SweepOptions::new().journal(path.clone()).faults(FaultPlan {
            panic_at: vec![1],
            wedge_at: vec![4],
            ..FaultPlan::default()
        }),
    )
    .expect("faulted sweep completes");
    assert_eq!(faulted.failed_count(), 2);

    // Simulate dying mid-append: tear the journal's final line.
    let text = std::fs::read_to_string(&path).expect("journal exists");
    std::fs::write(&path, &text[..text.len() - 15]).expect("tear journal");

    // Resume without faults: only failed/missing points re-run, and the
    // converged report is bit-identical to a clean sweep's.
    let resumed = run_sweep_with(
        &matrix,
        &SweepOptions::new()
            .journal(path.clone())
            .resume(true)
            .retries(1),
    )
    .expect("resumed sweep");
    assert_eq!(resumed.failed_count(), 0);
    assert_eq!(resumed.to_json(), clean.to_json());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn an_unarmed_fault_plan_changes_nothing() {
    let matrix = small_matrix(3, 500);
    let plain = run_sweep(&matrix, 2);
    let chaos_built = run_sweep_with(
        &matrix,
        &SweepOptions::new().threads(2).faults(FaultPlan::default()),
    )
    .expect("sweep");
    assert!(FaultPlan::default().is_empty());
    assert_eq!(plain.to_json(), chaos_built.to_json());
}
