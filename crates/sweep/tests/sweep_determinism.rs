//! The sweep harness's two contracts: a multi-worker sweep is bit-identical
//! to the serial sweep (per-run simulations are deterministic and results
//! are ordered by matrix index, not completion order), and every matrix —
//! including empty and singleton ones — renders a valid, schema-versioned
//! report.

use gals_sweep::{run_sweep, DvfsPoint, ModePoint, SweepMatrix, SCHEMA_VERSION, WORKLOAD_SEED};
use gals_workload::{Benchmark, Workload};
use proptest::prelude::*;

/// A small randomised matrix: every axis varies, runs stay cheap.
fn arb_matrix() -> impl Strategy<Value = SweepMatrix> {
    (
        0usize..3,     // benchmark pair selector
        any::<bool>(), // include sync?
        any::<bool>(), // gals wakeup filter
        50u64..600,    // pausible handshake ps
        any::<bool>(), // pausible coalesce
        any::<bool>(), // include a non-uniform dvfs point?
        1u64..5,       // phase seed
        400u64..900,   // budget
    )
        .prop_map(
            |(bsel, sync, filter, handshake_ps, coalesce, fp_dvfs, seed, budget)| {
                let benchmarks = match bsel {
                    0 => vec![Workload::Profile(Benchmark::Adpcm)],
                    1 => vec![Workload::Profile(Benchmark::Gcc)],
                    _ => vec![
                        Workload::Profile(Benchmark::Adpcm),
                        Workload::Profile(Benchmark::Compress),
                    ],
                };
                let mut modes = vec![
                    ModePoint::Gals {
                        wakeup_filter: filter,
                    },
                    ModePoint::Pausible {
                        handshake_ps,
                        coalesce,
                        wakeup_filter: false,
                        // Cover both transfer-capacity models (the bool
                        // is independent of the pausible point's own
                        // feature axis, so roughly half the generated
                        // matrices carry a rendezvous point).
                        rendezvous: filter,
                    },
                ];
                if sync {
                    modes.insert(0, ModePoint::Synchronous);
                }
                let mut dvfs = vec![DvfsPoint::nominal()];
                if fp_dvfs {
                    dvfs.push(DvfsPoint::per_domain("fp2x", [1.0, 1.0, 1.0, 2.0, 1.0]));
                }
                SweepMatrix {
                    benchmarks,
                    modes,
                    dvfs,
                    phase_seeds: vec![seed],
                    workload_seed: WORKLOAD_SEED,
                    budget,
                    retries: 0,
                    run_timeout_ms: None,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N-worker sweeps must be bit-identical to the serial sweep, JSON
    /// included — the contract CI's smoke run and the acceptance criterion
    /// (`--threads 4` vs `--threads 1`) rely on.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial(
        matrix in arb_matrix(),
        threads in 2usize..6,
    ) {
        let serial = run_sweep(&matrix, 1);
        let parallel = run_sweep(&matrix, threads);
        prop_assert_eq!(serial.runs.len(), parallel.runs.len());
        for (a, b) in serial.runs.iter().zip(parallel.runs.iter()) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }
}

/// Structural validity checks cheap enough to run on every report: balanced
/// braces/brackets outside strings (no string here ever contains them), a
/// schema version, and no non-finite float leakage.
fn assert_valid_report(json: &str) {
    assert!(
        json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
        "missing schema version:\n{json}"
    );
    assert!(json.contains("\"tool\": \"gals-sweep\""));
    assert!(json.contains("\"runs\": ["));
    assert!(json.contains("\"tables\": {"));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "braces:\n{json}"
    );
    assert_eq!(
        json.matches('[').count(),
        json.matches(']').count(),
        "brackets:\n{json}"
    );
    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "non-finite value:\n{json}"
    );
    assert!(json.ends_with("}\n"));
}

#[test]
fn empty_matrix_still_emits_a_valid_schema_versioned_report() {
    let matrix = SweepMatrix {
        benchmarks: vec![],
        modes: vec![],
        dvfs: vec![],
        phase_seeds: vec![],
        workload_seed: WORKLOAD_SEED,
        budget: 1_000,
        retries: 0,
        run_timeout_ms: None,
    };
    let results = run_sweep(&matrix, 4);
    assert!(results.runs.is_empty());
    let json = results.to_json();
    assert_valid_report(&json);
    assert!(json.contains("\"run_count\": 0"));
}

#[test]
fn singleton_matrix_emits_one_run_and_empty_tables() {
    let matrix = SweepMatrix {
        benchmarks: vec![Workload::Profile(Benchmark::Adpcm)],
        modes: vec![ModePoint::Synchronous],
        dvfs: vec![DvfsPoint::nominal()],
        phase_seeds: vec![1],
        workload_seed: WORKLOAD_SEED,
        budget: 500,
        retries: 0,
        run_timeout_ms: None,
    };
    let results = run_sweep(&matrix, 4);
    assert_eq!(results.runs.len(), 1);
    assert_eq!(results.runs[0].committed, 500);
    let json = results.to_json();
    assert_valid_report(&json);
    assert!(json.contains("\"run_count\": 1"));
    // No pausible or DVFS variation: the derived tables are present but
    // empty, not absent and not malformed.
    assert!(json.contains("\"pausible_slowdown_vs_handshake\": [\n    ]"));
    assert!(json.contains("\"wakeup_feature_ablation\": [\n    ]"));
}

#[test]
fn more_threads_than_runs_is_fine() {
    let matrix = SweepMatrix {
        benchmarks: vec![Workload::Profile(Benchmark::Adpcm)],
        modes: vec![ModePoint::Gals {
            wakeup_filter: false,
        }],
        dvfs: vec![DvfsPoint::nominal()],
        phase_seeds: vec![1, 2],
        workload_seed: WORKLOAD_SEED,
        budget: 500,
        retries: 0,
        run_timeout_ms: None,
    };
    let a = run_sweep(&matrix, 64);
    let b = run_sweep(&matrix, 1);
    assert_eq!(a.to_json(), b.to_json());
}
