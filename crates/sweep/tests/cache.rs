//! The content-addressed result cache, end to end: a warm rerun is
//! bit-identical with zero simulated points, corruption degrades to a
//! miss (never an error, never a wrong bit), policy changes never touch a
//! `RunKey`, and the cache composes with journaled resume.

use std::sync::atomic::{AtomicUsize, Ordering};

use gals_sweep::{
    stable_hash, sweep, DvfsPoint, ModePoint, RunKey, SweepMatrix, SweepOptions, SweepRequest,
    SCHEMA_VERSION, WORKLOAD_SEED,
};
use gals_workload::{Benchmark, ProgramKernel, Workload};
use proptest::prelude::*;

fn small_matrix(seed: u64, budget: u64) -> SweepMatrix {
    SweepMatrix {
        benchmarks: vec![
            Workload::Profile(Benchmark::Adpcm),
            Workload::Profile(Benchmark::Compress),
        ],
        modes: vec![
            ModePoint::Synchronous,
            ModePoint::Gals {
                wakeup_filter: false,
            },
            ModePoint::Pausible {
                handshake_ps: 300,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: false,
            },
        ],
        dvfs: vec![DvfsPoint::nominal()],
        phase_seeds: vec![seed],
        workload_seed: WORKLOAD_SEED,
        budget,
        retries: 0,
        run_timeout_ms: None,
    }
}

/// A unique temp dir per call (tests share one process).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gals-sweep-cachetest-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cold run, then warm run: the warm pass simulates nothing, serves
    /// every point from cache, and renders byte-identical JSON — across
    /// seeds, budgets, and thread counts.
    #[test]
    fn warm_rerun_is_bit_identical_with_zero_simulated_points(
        seed in 1u64..5,
        budget in 300u64..700,
        threads in 1usize..5,
    ) {
        let dir = temp_dir("warm");
        let matrix = small_matrix(seed, budget);
        let opts = SweepOptions::new().threads(threads).cache(dir.clone());
        let request = SweepRequest::new(matrix).with_options(opts);

        let cold = sweep(&request).expect("cold sweep");
        prop_assert_eq!(cold.simulated, cold.results.runs.len());
        prop_assert_eq!(cold.cache.hits, 0);
        prop_assert_eq!(cold.cache.stores as usize, cold.results.runs.len());

        let warm = sweep(&request).expect("warm sweep");
        prop_assert_eq!(warm.simulated, 0);
        prop_assert_eq!(warm.cache.hits as usize, warm.results.runs.len());
        prop_assert_eq!(warm.cache.misses, 0);
        prop_assert_eq!(warm.results.to_json(), cold.results.to_json());

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupted_blobs_degrade_to_misses_and_the_output_stays_identical() {
    let dir = temp_dir("corrupt");
    let matrix = small_matrix(1, 500);
    let request =
        SweepRequest::new(matrix).with_options(SweepOptions::new().threads(2).cache(dir.clone()));
    let cold = sweep(&request).expect("cold sweep");

    // Sabotage every blob a different way: truncate one, garble one,
    // delete one; leave the rest intact.
    let mut blobs: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    blobs.sort();
    assert_eq!(blobs.len(), cold.results.runs.len());
    let text = std::fs::read_to_string(&blobs[0]).expect("blob");
    std::fs::write(&blobs[0], &text[..text.len() / 3]).expect("truncate");
    std::fs::write(&blobs[1], "{\"not\": \"a record\"}\n").expect("garble");
    std::fs::remove_file(&blobs[2]).expect("delete");

    let warm = sweep(&request).expect("sweep over damaged cache");
    assert_eq!(warm.simulated, 3, "only the damaged points re-simulate");
    assert_eq!(warm.cache.hits as usize, cold.results.runs.len() - 3);
    assert_eq!(warm.cache.misses, 3);
    assert_eq!(
        warm.cache.corrupt, 2,
        "truncated + garbled; deleted is a plain miss"
    );
    assert_eq!(
        warm.results.to_json(),
        cold.results.to_json(),
        "damage may cost time, never bits"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_keys_ignore_execution_policy_and_separate_content() {
    let matrix = small_matrix(1, 500);
    let base: Vec<RunKey> = matrix.expand().iter().map(RunKey::of).collect();

    // Execution policy — threads, retries, timeouts — never reaches a key.
    let mut policy = matrix.clone();
    policy.retries = 7;
    policy.run_timeout_ms = Some(123_456);
    let policy_keys: Vec<RunKey> = policy.expand().iter().map(RunKey::of).collect();
    assert_eq!(base, policy_keys);

    // Content — budget, seed, mode set — always does.
    let mut budget = matrix.clone();
    budget.budget += 1;
    assert!(budget
        .expand()
        .iter()
        .map(RunKey::of)
        .zip(&base)
        .all(|(k, b)| k != *b));
    let mut seed = matrix.clone();
    seed.phase_seeds = vec![2];
    assert!(seed
        .expand()
        .iter()
        .map(RunKey::of)
        .zip(&base)
        .all(|(k, b)| k != *b));

    // And the keys of distinct points are distinct.
    let mut sorted = base.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), base.len());

    // Hex round-trip.
    for key in &base {
        assert_eq!(RunKey::from_hex(&key.to_hex()), Some(*key));
    }
    assert_eq!(RunKey::from_hex("nope"), None);
    assert_eq!(
        RunKey::from_hex("ABCDEF0123456789"),
        None,
        "upper case rejected"
    );
}

#[test]
fn run_keys_follow_the_documented_canon() {
    // The key canon is part of the on-disk contract (docs/SWEEP_FORMAT.md):
    // an FNV-1a hash of
    //   v{schema}|{workload identity}|{mode}|{dvfs label}|{slowdown:?}|
    //   {phase_seed}|{workload_seed}|{budget}|{config identity}.
    // Recompute it from public pieces for every point of a mixed
    // profile+kernel matrix; drift here silently orphans every cached
    // blob and journal entry on disk.
    let mut matrix = small_matrix(1, 500);
    matrix
        .benchmarks
        .push(Workload::Kernel(ProgramKernel::GccLike));
    for spec in matrix.expand() {
        let canon = format!(
            "v{}|{}|{}|{}|{:?}|{}|{}|{}|{}",
            SCHEMA_VERSION,
            spec.benchmark.identity(),
            spec.mode.label(),
            spec.dvfs.label,
            spec.dvfs.slowdown,
            spec.phase_seed,
            spec.workload_seed,
            spec.budget,
            spec.config().stable_identity(),
        );
        assert_eq!(
            spec.key().as_u64(),
            stable_hash::fnv1a(canon.as_bytes()),
            "canon drifted for {}",
            spec.benchmark.name()
        );
    }
}

#[test]
fn program_kernels_cache_and_parallelise_like_profiles() {
    // The program-kernel axis must be a first-class citizen of the cache:
    // kernel runs are content-addressed (their identity hashes the .gasm
    // source), a parallel cold pass and a serial warm pass render
    // byte-identical JSON, and the warm pass simulates nothing.
    let dir = temp_dir("kernels");
    let matrix = SweepMatrix {
        benchmarks: ProgramKernel::ALL
            .iter()
            .map(|&k| Workload::Kernel(k))
            .collect(),
        modes: vec![
            ModePoint::Synchronous,
            ModePoint::Gals {
                wakeup_filter: false,
            },
            ModePoint::Pausible {
                handshake_ps: 300,
                coalesce: false,
                wakeup_filter: false,
                rendezvous: false,
            },
        ],
        dvfs: vec![DvfsPoint::nominal()],
        phase_seeds: vec![1],
        workload_seed: WORKLOAD_SEED,
        budget: 400,
        retries: 0,
        run_timeout_ms: None,
    };

    // Kernel keys are distinct from each other and from the profile keys
    // of their reference benchmarks (the identity carries the source hash).
    let keys: Vec<RunKey> = matrix.expand().iter().map(RunKey::of).collect();
    let mut uniq = keys.clone();
    uniq.sort();
    uniq.dedup();
    assert_eq!(uniq.len(), keys.len());
    let mut profiles = matrix.clone();
    profiles.benchmarks = vec![
        Workload::Profile(Benchmark::Gcc),
        Workload::Profile(Benchmark::Fpppp),
        Workload::Profile(Benchmark::Ijpeg),
    ];
    for pk in profiles.expand().iter().map(RunKey::of) {
        assert!(!keys.contains(&pk), "kernel and profile keys must differ");
    }

    let cold = sweep(
        &SweepRequest::new(matrix.clone())
            .with_options(SweepOptions::new().threads(3).cache(dir.clone())),
    )
    .expect("cold kernel sweep");
    assert_eq!(cold.simulated, cold.results.runs.len());
    assert_eq!(cold.results.failed_count(), 0, "kernel runs must succeed");

    let warm = sweep(
        &SweepRequest::new(matrix).with_options(SweepOptions::new().threads(1).cache(dir.clone())),
    )
    .expect("warm kernel sweep");
    assert_eq!(warm.simulated, 0);
    assert_eq!(warm.cache.hits as usize, warm.results.runs.len());
    assert_eq!(
        warm.results.to_json(),
        cold.results.to_json(),
        "parallel cold and serial warm kernel sweeps must render identical bits"
    );
    for k in ProgramKernel::ALL {
        assert!(
            warm.results
                .to_json()
                .contains(&format!("\"prog:{}\"", k.name())),
            "report names kernel {k}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_matrices_share_cache_entries() {
    let dir = temp_dir("overlap");
    let mut first = small_matrix(1, 500);
    first.modes.truncate(2); // sync + gals
    let first_runs = first.expand().len();
    let cold =
        sweep(&SweepRequest::new(first).with_options(SweepOptions::new().cache(dir.clone())))
            .expect("first sweep");
    assert_eq!(cold.simulated, first_runs);

    // The full matrix shares the first two modes' points; only the
    // pausible points are novel.
    let full = small_matrix(1, 500);
    let full_runs = full.expand().len();
    let warm = sweep(&SweepRequest::new(full).with_options(SweepOptions::new().cache(dir.clone())))
        .expect("overlapping sweep");
    assert_eq!(warm.cache.hits as usize, first_runs);
    assert_eq!(warm.simulated, full_runs - first_runs);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_composes_with_journaled_resume() {
    let dir = temp_dir("resume");
    let journal = dir.join("sweep.jsonl");
    let matrix = small_matrix(2, 500);
    let run_count = matrix.expand().len();
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Journal-only first pass.
    let plain = sweep(
        &SweepRequest::new(matrix.clone())
            .with_options(SweepOptions::new().journal(journal.clone())),
    )
    .expect("journaled sweep");

    // Tear the journal's tail, then resume WITH the cache armed: the torn
    // point is a cache miss (nothing cached yet) and re-simulates; the
    // rest pre-fill from the journal without touching the cache.
    let text = std::fs::read_to_string(&journal).expect("journal");
    std::fs::write(&journal, &text[..text.len() - 20]).expect("tear");
    let resumed = sweep(
        &SweepRequest::new(matrix.clone()).with_options(
            SweepOptions::new()
                .journal(journal.clone())
                .resume(true)
                .cache(dir.clone()),
        ),
    )
    .expect("resumed sweep");
    assert_eq!(resumed.simulated, 1, "only the torn point re-runs");
    assert_eq!(
        resumed.cache.hits, 0,
        "journal pre-fill wins over the cache"
    );
    assert_eq!(resumed.results.to_json(), plain.results.to_json());

    // A fresh journal next to a warm cache: everything is a hit, and the
    // journal converges (a later journal-only resume re-runs nothing).
    let journal2 = dir.join("sweep2.jsonl");
    let cached = sweep(
        &SweepRequest::new(matrix.clone()).with_options(
            SweepOptions::new()
                .journal(journal2.clone())
                .cache(dir.clone()),
        ),
    )
    .expect("cached+journaled sweep");
    assert_eq!(
        cached.simulated,
        run_count - 1,
        "one point was never cached"
    );
    assert_eq!(
        cached.cache.hits, 1,
        "the torn point was cached by the resume"
    );
    let converged = sweep(
        &SweepRequest::new(matrix)
            .with_options(SweepOptions::new().journal(journal2.clone()).resume(true)),
    )
    .expect("journal-only resume");
    assert_eq!(converged.simulated, 0, "cache hits were journaled");
    assert_eq!(converged.results.to_json(), plain.results.to_json());

    let _ = std::fs::remove_dir_all(&dir);
}
