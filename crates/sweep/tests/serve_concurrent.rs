//! The concurrent face of `sweep --serve`: N clients with overlapping
//! matrices get byte-identical payloads while sharing one cache and one
//! in-flight table; deadlines and in-band cancels stop exactly one
//! request; shutdown drains in-flight streams; admission control sheds
//! with retryable in-band errors; and (chaos builds) one client's
//! panicking point never leaks into another client's stream.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};

use gals_sweep::{SweepOptions, SweepServer};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gals-sweep-concurrent-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Binds a server built by `build` on an OS-chosen port and serves it on
/// a background thread.
fn start(
    tag: &str,
    threads: usize,
    build: impl FnOnce(SweepServer) -> SweepServer,
) -> (String, std::thread::JoinHandle<()>, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let options = SweepOptions::new().threads(threads).cache(dir.clone());
    let server = build(SweepServer::bind("127.0.0.1:0", 400, options).expect("bind"));
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, dir)
}

/// Connects, sends one sweep request, and reads lines until a `done`
/// trailer (either kind); returns every line.
fn run_client(addr: &str, request: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    transact(&mut stream, &mut reader, request, |l| {
        l.starts_with("{\"done\": ")
    })
}

fn transact(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
    stop: impl Fn(&str) -> bool,
) -> Vec<String> {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send");
    read_until(reader, stop)
}

fn read_until(reader: &mut BufReader<TcpStream>, stop: impl Fn(&str) -> bool) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "server hung up after {lines:?}"
        );
        let line = line.trim_end().to_string();
        let done = stop(&line);
        lines.push(line);
        if done {
            return lines;
        }
    }
}

fn shutdown(addr: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let bye = transact(
        &mut stream,
        &mut reader,
        "{\"request\": \"shutdown\"}",
        |_| true,
    );
    assert_eq!(bye, vec!["{\"ok\": \"shutdown\"}".to_string()]);
}

/// A one-benchmark request whose mode list is the overlap axis.
fn sweep_request(modes: &str) -> String {
    format!(
        "{{\"request\": \"sweep\", \"matrix\": {{\
         \"benchmarks\": [\"adpcm\"], \
         \"modes\": [{modes}], \
         \"dvfs\": [\"nominal\"], \
         \"phase_seeds\": [1]}}}}"
    )
}

/// The trailer's `"key": N` value.
fn trailer_u64(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle).expect(key) + needle.len();
    line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect(key)
}

#[test]
fn concurrent_clients_get_byte_identical_payloads_and_share_the_cache() {
    // Three overlapping matrices: their union is {sync, gals,
    // pausible@300ps} — three distinct RunKeys.
    let requests = [
        sweep_request("\"sync\", \"gals\""),
        sweep_request("\"gals\", \"pausible@300ps\""),
        sweep_request("\"sync\", \"pausible@300ps\""),
    ];

    // Serial baselines, each against its own fresh single-client server.
    let mut baselines = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        let (addr, handle, dir) = start(&format!("baseline{i}"), 2, |s| s);
        baselines.push(run_client(&addr, request));
        shutdown(&addr);
        handle.join().expect("baseline server");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The same three requests, concurrently, against one shared server.
    let (addr, handle, dir) = start("shared", 2, |s| s);
    let clients: Vec<_> = requests
        .iter()
        .map(|request| {
            let addr = addr.clone();
            let request = request.clone();
            std::thread::spawn(move || run_client(&addr, &request))
        })
        .collect();
    let responses: Vec<Vec<String>> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    shutdown(&addr);
    handle.join().expect("shared server");
    let _ = std::fs::remove_dir_all(&dir);

    let mut total_simulated = 0;
    for (i, (concurrent, baseline)) in responses.iter().zip(&baselines).enumerate() {
        let (payload, trailer) = concurrent.split_at(concurrent.len() - 1);
        let (base_payload, _) = baseline.split_at(baseline.len() - 1);
        assert_eq!(
            payload, base_payload,
            "client {i}: concurrent payload differs from its serial baseline"
        );
        assert!(trailer[0].starts_with("{\"done\": true"), "{}", trailer[0]);
        assert_eq!(trailer_u64(&trailer[0], "failed_count"), 0);
        total_simulated += trailer_u64(&trailer[0], "simulated");
    }
    // The cache and the in-flight table are shared: three clients ask
    // for six runs, but only the three distinct points ever simulate.
    assert!(
        total_simulated <= 3,
        "expected at most 3 simulated runs across all clients, got {total_simulated}"
    );
}

#[test]
fn deadline_and_in_band_cancel_stop_only_their_own_request() {
    let (addr, handle, dir) = start("cancel", 1, |s| s);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // An already-expired deadline: the stream ends with a cancelled
    // trailer (a matrix-order prefix, no tables line) and the
    // connection stays usable.
    let expired = sweep_request("\"sync\", \"gals\"").replace(
        "\"phase_seeds\": [1]}",
        "\"phase_seeds\": [1]}, \"deadline_ms\": 0",
    );
    let cancelled = transact(&mut stream, &mut reader, &expired, |l| {
        l.starts_with("{\"done\": ")
    });
    let trailer = cancelled.last().expect("trailer");
    assert!(
        trailer.starts_with("{\"done\": false, \"cancelled\": true, \"streamed\": "),
        "{trailer}"
    );
    assert!(
        cancelled.iter().all(|l| !l.starts_with("{\"tables\"")),
        "a cancelled response must not carry tables: {cancelled:?}"
    );

    // An in-band cancel mid-stream: a slow 4-run sweep on 1 worker, the
    // cancel sent right after the header. The queued points are never
    // simulated; the next request on the same connection completes.
    let slow = "{\"request\": \"sweep\", \"matrix\": {\
         \"budget\": 150000, \
         \"benchmarks\": [\"adpcm\"], \
         \"modes\": [\"sync\", \"gals\"], \
         \"dvfs\": [\"nominal\"], \
         \"phase_seeds\": [1, 2]}}";
    stream
        .write_all(format!("{slow}\n").as_bytes())
        .expect("send slow sweep");
    let header = read_until(&mut reader, |l| l.starts_with("{\"response\": "));
    assert!(header[0].ends_with("\"run_count\": 4}"), "{}", header[0]);
    stream
        .write_all(b"{\"request\": \"cancel\"}\n")
        .expect("send cancel");
    let rest = read_until(&mut reader, |l| l.starts_with("{\"done\": "));
    let trailer = rest.last().expect("trailer");
    assert!(
        trailer.starts_with("{\"done\": false, \"cancelled\": true"),
        "{trailer}"
    );
    let streamed = trailer_u64(trailer, "streamed");
    assert!(
        streamed < 4,
        "cancel arrived after the whole sweep: {trailer}"
    );

    // Same connection, post-cancel: a fast request completes normally.
    let after = transact(&mut stream, &mut reader, &sweep_request("\"sync\""), |l| {
        l.starts_with("{\"done\": ")
    });
    assert!(
        after
            .last()
            .expect("trailer")
            .starts_with("{\"done\": true"),
        "{after:?}"
    );

    shutdown(&addr);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_an_in_flight_stream_to_its_trailer() {
    let (addr, handle, dir) = start("drain", 1, |s| s);

    // Client A starts a non-trivial sweep and reads its header, so the
    // request is demonstrably in flight...
    let mut a = TcpStream::connect(&addr).expect("connect A");
    let mut a_reader = BufReader::new(a.try_clone().expect("clone"));
    let slow = "{\"request\": \"sweep\", \"matrix\": {\
         \"budget\": 60000, \
         \"benchmarks\": [\"adpcm\"], \
         \"modes\": [\"sync\", \"gals\"], \
         \"dvfs\": [\"nominal\"], \
         \"phase_seeds\": [1]}}";
    a.write_all(format!("{slow}\n").as_bytes()).expect("send");
    let header = read_until(&mut a_reader, |l| l.starts_with("{\"response\": "));
    assert!(header[0].ends_with("\"run_count\": 2}"), "{}", header[0]);

    // ...then client B asks for shutdown. A's stream must still drain
    // to a successful trailer before serve() returns.
    shutdown(&addr);
    let rest = read_until(&mut a_reader, |l| l.starts_with("{\"done\": "));
    let trailer = rest.last().expect("trailer");
    assert!(
        trailer.starts_with("{\"done\": true, \"failed_count\": 0"),
        "shutdown tore an in-flight stream: {trailer}"
    );
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_sheds_excess_clients_and_oversized_sweeps() {
    // --max-clients 1: the second concurrent connection is shed with
    // one retryable error line, then closed; the first keeps working.
    let (addr, handle, dir) = start("maxclients", 1, |s| s.max_clients(1));
    let mut a = TcpStream::connect(&addr).expect("connect A");
    let mut a_reader = BufReader::new(a.try_clone().expect("clone"));
    let pong = transact(&mut a, &mut a_reader, "{\"request\": \"ping\"}", |l| {
        l.contains("pong")
    });
    assert!(pong[0].contains("pong"));

    let b = TcpStream::connect(&addr).expect("connect B");
    let mut b_reader = BufReader::new(b);
    let mut shed = String::new();
    assert!(b_reader.read_line(&mut shed).expect("read shed line") > 0);
    assert!(
        shed.contains("\"error\": ") && shed.contains("\"retryable\": true"),
        "{shed}"
    );
    let mut rest = String::new();
    assert_eq!(
        b_reader.read_line(&mut rest).expect("read EOF"),
        0,
        "the shed connection must be closed, got {rest:?}"
    );

    // The surviving client still gets served — including shutdown (a
    // fresh connection could itself be shed by the limit).
    let pong = transact(&mut a, &mut a_reader, "{\"request\": \"ping\"}", |l| {
        l.contains("pong")
    });
    assert!(pong[0].contains("pong"));
    let bye = transact(&mut a, &mut a_reader, "{\"request\": \"shutdown\"}", |_| {
        true
    });
    assert_eq!(bye, vec!["{\"ok\": \"shutdown\"}".to_string()]);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);

    // --max-pending-runs 1: a two-run sweep is refused in-band with a
    // retryable error; a one-run sweep on the same connection passes.
    let (addr, handle, dir) = start("maxpending", 1, |s| s.max_pending_runs(1));
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let refused = transact(
        &mut stream,
        &mut reader,
        &sweep_request("\"sync\", \"gals\""),
        |_| true,
    );
    assert!(
        refused[0].contains("\"error\": ") && refused[0].contains("\"retryable\": true"),
        "{refused:?}"
    );
    let ok = transact(&mut stream, &mut reader, &sweep_request("\"sync\""), |l| {
        l.starts_with("{\"done\": ")
    });
    assert!(
        ok.last().expect("trailer").starts_with("{\"done\": true"),
        "{ok:?}"
    );
    shutdown(&addr);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One client's injected panic is isolated: its own trailer reports the
/// failure, the other concurrent client's stream is clean.
#[cfg(feature = "chaos")]
#[test]
fn one_clients_panic_never_reaches_anothers_stream() {
    let dir = temp_dir("panic-isolation");
    let faults = gals_sweep::FaultPlan {
        panic_at: vec![1],
        ..gals_sweep::FaultPlan::default()
    };
    let options = SweepOptions::new()
        .threads(2)
        .cache(dir.clone())
        .faults(faults);
    let server = SweepServer::bind("127.0.0.1:0", 400, options).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    // A's matrix has an index 1 (which panics); B's is a single run.
    let a_req = sweep_request("\"sync\", \"gals\"");
    let b_req = sweep_request("\"sync\"");
    let a_addr = addr.clone();
    let b_addr = addr.clone();
    let a = std::thread::spawn(move || run_client(&a_addr, &a_req));
    let b = std::thread::spawn(move || run_client(&b_addr, &b_req));
    let a_lines = a.join().expect("client A");
    let b_lines = b.join().expect("client B");
    shutdown(&addr);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);

    let a_trailer = a_lines.last().expect("A trailer");
    assert_eq!(trailer_u64(a_trailer, "failed_count"), 1, "{a_trailer}");
    assert!(
        a_lines.iter().any(|l| l.contains("panicked")),
        "A's own stream must carry its panicked record: {a_lines:?}"
    );

    let b_trailer = b_lines.last().expect("B trailer");
    assert_eq!(trailer_u64(b_trailer, "failed_count"), 0, "{b_trailer}");
    assert!(
        b_lines.iter().all(|l| !l.contains("panicked")),
        "A's panic leaked into B's stream: {b_lines:?}"
    );
}
