//! The checked-in example matrix files (`examples/sweep_matrix.json` and
//! `examples/program_matrix.json`, referenced from `docs/SWEEP_FORMAT.md`)
//! must stay loadable and must round-trip through the renderer — so the
//! documented format and the parser can never drift apart silently.

use gals_sweep::{ModePoint, SweepMatrix};
use gals_workload::{Benchmark, ProgramKernel, Workload};

const EXAMPLE: &str = include_str!("../../../examples/sweep_matrix.json");
const PROGRAM_EXAMPLE: &str = include_str!("../../../examples/program_matrix.json");

#[test]
fn example_matrix_file_parses_and_round_trips() {
    let matrix = SweepMatrix::from_json(EXAMPLE, 1_000).expect("example matrix must parse");
    // The file carries its own budget; the default must not leak in.
    assert_eq!(matrix.budget, 60_000);
    // The documented execution-policy fields round-trip too.
    assert_eq!(matrix.retries, 1);
    assert_eq!(matrix.run_timeout_ms, Some(120_000));

    // It exercises every axis the docs describe: all three clocking
    // families, both pausible transfer models, a featured mode, and a
    // per-domain DVFS object next to the string forms.
    assert!(matrix
        .benchmarks
        .contains(&Workload::Profile(Benchmark::Gcc)));
    assert!(matrix.modes.contains(&ModePoint::Synchronous));
    assert!(matrix.modes.iter().any(|m| matches!(
        m,
        ModePoint::Pausible {
            rendezvous: true,
            ..
        }
    )));
    assert!(matrix.modes.iter().any(|m| matches!(
        m,
        ModePoint::Pausible {
            rendezvous: false,
            coalesce: false,
            ..
        }
    )));
    assert!(matrix.dvfs.iter().any(|d| d.label == "fp2x"));

    // Round-trip: render -> parse -> equal matrix.
    let rendered = matrix.to_matrix_json();
    let reparsed = SweepMatrix::from_json(&rendered, 0).expect("rendered matrix must parse");
    assert_eq!(reparsed, matrix);

    // The example expands to a real run list (sanity: the collapse rule
    // only drops non-uniform DVFS on sync).
    let specs = matrix.expand();
    assert!(!specs.is_empty());
    let sync_nonuniform = specs
        .iter()
        .any(|s| s.mode == ModePoint::Synchronous && !s.dvfs.is_uniform());
    assert!(!sync_nonuniform);
}

#[test]
fn program_matrix_file_parses_and_round_trips() {
    let matrix = SweepMatrix::from_json(PROGRAM_EXAMPLE, 1_000).expect("program matrix parses");
    // Every checked-in kernel appears, by its documented `prog:` name.
    for k in ProgramKernel::ALL {
        assert!(
            matrix.benchmarks.contains(&Workload::Kernel(k)),
            "missing {k}"
        );
    }
    // Round-trip: render -> parse -> equal matrix (the renderer writes
    // kernels back with the same `prog:` prefix the parser accepts).
    let rendered = matrix.to_matrix_json();
    assert!(rendered.contains("\"prog:gcc_like\""), "{rendered}");
    let reparsed = SweepMatrix::from_json(&rendered, 0).expect("rendered matrix must parse");
    assert_eq!(reparsed, matrix);
    assert!(!matrix.expand().is_empty());
}
