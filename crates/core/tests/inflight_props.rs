//! Property test for the slab-backed instruction store: under arbitrary
//! interleavings of insert (fetch), remove (commit) and `remove_younger`
//! (squash) — including streams that force the slab to grow past its
//! initial capacity and to recycle freed slots — every *live* handle keeps
//! returning exactly the hot and cold fields it was inserted with, and
//! every *stale* handle keeps reading as nothing.

#![allow(clippy::manual_is_multiple_of)] // seq % k patterns mirror the derivation rules

use gals_core::inflight::{FetchedInstr, InFlightTable, InstrId, SrcTags, Tag};
use gals_core::BranchInfo;
use gals_events::Time;
use gals_isa::{ArchReg, OpClass};
use proptest::prelude::*;

/// One step of the random op stream, decoded from two raw integers.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert the next instruction (sequence numbers are allocated
    /// monotonically, like the pipeline's fetch stage).
    Insert,
    /// Remove the k-th oldest live instruction (commit-shaped for k = 0,
    /// and an out-of-order removal stress otherwise).
    Remove(usize),
    /// Squash everything younger than the k-th oldest live sequence.
    Squash(usize),
}

fn decode(kind: u8, arg: usize) -> Op {
    match kind % 4 {
        // Insert twice as often as the others so streams grow.
        0 | 1 => Op::Insert,
        2 => Op::Remove(arg),
        _ => Op::Squash(arg),
    }
}

/// The fetch-time record for sequence `seq`, with every field derived from
/// the sequence so the reference model needs to store nothing.
fn instr(seq: u64) -> FetchedInstr {
    let branchy = seq % 5 == 0;
    FetchedInstr {
        seq,
        pc: seq * 4 + 0x1000,
        op: match seq % 4 {
            0 => OpClass::IntAlu,
            1 => OpClass::Load,
            2 => OpClass::FpMul,
            _ => OpClass::BranchCond,
        },
        wrong_path: seq % 3 == 0,
        arch_dst: (seq % 2 == 0).then(|| ArchReg::int((seq % 31) as u8)),
        arch_srcs: [Some(ArchReg::int(((seq + 7) % 31) as u8)), None],
        mem_addr: (seq % 4 == 1).then_some(seq * 64),
        branch: branchy.then_some(BranchInfo {
            predicted_taken: seq % 2 == 0,
            actual_taken: seq % 3 == 0,
            recovery_pc: seq * 4 + 0x1004,
            // Only correct-path instructions may carry a misprediction.
            mispredicted: seq % 3 != 0,
        }),
        is_exit: false,
        fetched_at: Time::from_fs(seq * 1_000),
    }
}

/// Checks one live handle against the derived reference values, including
/// the post-rename hot fields when `renamed`.
fn check_live(t: &InFlightTable, seq: u64, id: InstrId, renamed: bool) {
    let f = instr(seq);
    assert_eq!(t.seq_of(id), Some(seq));
    assert_eq!(t.op_of(id), Some(f.op));
    assert_eq!(t.is_wrong_path(id), f.wrong_path);
    assert!(!t.is_exit(id));
    // Completion tracks seq parity (set at insert time below).
    assert_eq!(t.is_completed(id), seq % 2 == 1);
    let cold = t.cold_of(id).expect("live handle has a cold record");
    assert_eq!(cold.pc, f.pc);
    assert_eq!(cold.arch_dst, f.arch_dst);
    assert_eq!(cold.arch_srcs, f.arch_srcs);
    assert_eq!(cold.mem_addr, f.mem_addr);
    assert_eq!(cold.branch, f.branch);
    assert_eq!(cold.fetched_at, f.fetched_at);
    // Every live instruction accumulated exactly one residency grain.
    assert_eq!(cold.fifo_time, Time::from_fs(7));
    if renamed {
        let srcs: Vec<Tag> = t.srcs_of(id).expect("live").iter().collect();
        assert_eq!(srcs, vec![Tag((seq % 512) as u16)]);
        assert_eq!(
            t.dst_of(id).map(|(_, tag, _)| tag),
            f.arch_dst.map(|_| Tag(((seq + 1) % 512) as u16)),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/commit/squash streams over a deliberately tiny
    /// initial table: slab growth and slot recycling must preserve every
    /// live handle's hot and cold fields, and stale handles must read as
    /// nothing forever.
    #[test]
    fn slab_growth_preserves_live_handles(
        ops in prop::collection::vec((0u8..255, 0usize..32), 1..200),
        initial_capacity in 0usize..4,
    ) {
        let mut t = InFlightTable::with_capacity(initial_capacity);
        // Reference model: the live set as (seq, id, renamed), oldest
        // first, plus every handle ever retired.
        let mut live: Vec<(u64, InstrId, bool)> = Vec::new();
        let mut dead: Vec<(u64, InstrId)> = Vec::new();
        let mut next_seq = 0u64;

        for &(kind, arg) in &ops {
            match decode(kind, arg) {
                Op::Insert => {
                    let seq = next_seq;
                    next_seq += 1;
                    let id = t.insert(instr(seq));
                    // Exercise the hot-side mutators immediately: rename
                    // on even seqs' dst pattern, completion on odd seqs,
                    // one slip grain for everyone.
                    let mut srcs = SrcTags::new();
                    srcs.push(Tag((seq % 512) as u16));
                    let dst = instr(seq).arch_dst.map(|a| {
                        (a, Tag(((seq + 1) % 512) as u16), gals_uarch::PhysReg(3))
                    });
                    t.set_rename(id, srcs, dst);
                    if seq % 2 == 1 {
                        t.set_completed(id);
                    }
                    prop_assert!(t.add_fifo_time(id, Time::from_fs(7)));
                    live.push((seq, id, true));
                }
                Op::Remove(k) if !live.is_empty() => {
                    let (seq, id, _) = live.remove(k % live.len());
                    let retired = t.remove_retired(id);
                    prop_assert!(retired.is_some(), "live handle must retire");
                    let retired = retired.unwrap();
                    let f = instr(seq);
                    prop_assert_eq!(retired.op, f.op);
                    prop_assert_eq!(retired.wrong_path, f.wrong_path);
                    prop_assert_eq!(retired.fetched_at, f.fetched_at);
                    prop_assert_eq!(retired.fifo_time, Time::from_fs(7));
                    dead.push((seq, id));
                }
                Op::Squash(k) if !live.is_empty() => {
                    let pivot = live[k % live.len()].0;
                    t.remove_younger(pivot);
                    let (kept, squashed): (Vec<_>, Vec<_>) =
                        live.drain(..).partition(|&(s, _, _)| s <= pivot);
                    live = kept;
                    dead.extend(squashed.into_iter().map(|(s, id, _)| (s, id)));
                }
                _ => {} // remove/squash on an empty table: no-op step
            }

            // Invariants after every step.
            prop_assert_eq!(t.len(), live.len());
            for &(seq, id, renamed) in &live {
                check_live(&t, seq, id, renamed);
            }
            for &(_, id) in &dead {
                prop_assert!(!t.contains(id), "stale handle came back to life");
                prop_assert_eq!(t.seq_of(id), None);
                prop_assert!(t.cold_of(id).is_none());
                prop_assert!(t.remove_retired(id).is_none());
            }
        }
        // The slab never leaks: capacity tracks the peak live count, not
        // the total inserted.
        prop_assert!(t.capacity() <= next_seq.max(4) as usize);
    }
}
