//! Zero-allocation regression test for the steady-state simulate loop
//! (`bench` feature only: `cargo test -p gals-core --features bench`).
//!
//! The claim under test, made across several PRs and extended by the
//! slab-backed instruction store: once a run is past warm-up (construction,
//! scratch-buffer growth, the in-flight slab reaching its peak live count),
//! the simulate loop performs **no heap allocation at all** — not per
//! instruction, not per squash, not per parked/woken clock domain.
//!
//! Method: allocations are counted for the same workload at a small and a
//! large committed-instruction budget. Construction and warm-up costs are
//! identical (same program, same configuration, deterministic simulator),
//! so any difference would have to come from the extra steady-state
//! instructions — the assertion is that there is none.

#![cfg(feature = "bench")]

use gals_core::alloc_counter::CountingAllocator;
use gals_core::{simulate, ProcessorConfig, SimLimits};
use gals_workload::{generate, Benchmark};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Allocation calls attributable to one `simulate` run (program generation
/// excluded — the program is built by the caller).
fn allocs_for(program: &gals_isa::Program, cfg: &ProcessorConfig, insts: u64) -> u64 {
    let before = ALLOC.allocations();
    let r = simulate(program, cfg.clone(), SimLimits::insts(insts)).expect("run failed");
    assert_eq!(r.committed, insts, "budget must be reached");
    ALLOC.allocations() - before
}

#[test]
fn steady_state_simulate_loop_allocates_nothing() {
    // Branchy integer code (squash paths hot) and FP-heavy code (all three
    // clusters active), on both clocking styles the perf baseline tracks.
    let small = 12_000;
    let large = 30_000;
    for bench in [Benchmark::Gcc, Benchmark::Fpppp] {
        let program = generate(bench, 42);
        for (label, cfg) in [
            ("sync", ProcessorConfig::synchronous_1ghz()),
            ("gals", ProcessorConfig::gals_equal_1ghz(1)),
        ] {
            // Warm-up run: fills lazily grown scratch (thread-local or
            // allocator-side caches don't matter — we diff counts).
            let _ = allocs_for(&program, &cfg, small);
            let a_small = allocs_for(&program, &cfg, small);
            let a_large = allocs_for(&program, &cfg, large);
            assert_eq!(
                a_small,
                a_large,
                "{} / {label}: {} extra allocations over {} extra instructions \
                 — the steady-state loop must not allocate",
                bench.name(),
                a_large.saturating_sub(a_small),
                large - small,
            );
        }
    }
}
