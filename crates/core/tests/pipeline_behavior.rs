//! Microarchitectural behaviour tests: tiny hand-built kernels with known
//! timing properties, checked against the simulated pipeline.

use gals_core::{simulate, ProcessorConfig, SimLimits};
use gals_events::Time;
use gals_workload::micro;

fn sync() -> ProcessorConfig {
    ProcessorConfig::synchronous_1ghz()
}

fn run_ipc(program: &gals_isa::Program, insts: u64) -> f64 {
    let r = simulate(program, sync(), SimLimits::insts(insts)).expect("simulation failed");
    r.ipc(Time::from_ns(1))
}

#[test]
fn independent_alu_work_exceeds_ipc_2() {
    // 7 independent ops + a perfectly predictable loop branch: the 4-wide
    // machine should clearly exceed IPC 2.
    let program = micro::alu_loop(100_000, 7);
    let ipc = run_ipc(&program, 40_000);
    assert!(ipc > 2.0, "independent ALU loop IPC {ipc}");
}

#[test]
fn dependency_chain_caps_ipc_near_1() {
    // Strictly serial chain: every instruction waits for the previous one.
    let program = micro::dependency_chain(100_000, 8);
    let ipc = run_ipc(&program, 40_000);
    assert!(ipc < 1.3, "serial chain IPC {ipc} should approach 1");
    assert!(
        ipc > 0.5,
        "back-to-back issue should keep the chain moving ({ipc})"
    );
}

#[test]
fn wider_bodies_raise_ipc() {
    let narrow = run_ipc(&micro::alu_loop(100_000, 2), 30_000);
    let wide = run_ipc(&micro::alu_loop(100_000, 10), 30_000);
    assert!(
        wide > narrow,
        "more independent work per branch must raise IPC ({narrow} vs {wide})"
    );
}

#[test]
fn l1_resident_streams_beat_l2_streams() {
    // 8 KB fits L1; 128 KB streams from L2; 4 MB spills to memory.
    let l1 = run_ipc(&micro::stream_loads(200_000, 8 << 10), 30_000);
    let l2 = run_ipc(&micro::stream_loads(200_000, 128 << 10), 30_000);
    let mem = run_ipc(&micro::stream_loads(200_000, 4 << 20), 30_000);
    assert!(l1 > l2, "L1-resident {l1} must beat L2 stream {l2}");
    assert!(l2 > mem, "L2 stream {l2} must beat memory stream {mem}");
}

#[test]
fn cache_miss_rates_track_footprint() {
    let small = simulate(
        &micro::stream_loads(200_000, 8 << 10),
        sync(),
        SimLimits::insts(30_000),
    )
    .expect("simulation failed");
    let large = simulate(
        &micro::stream_loads(200_000, 4 << 20),
        sync(),
        SimLimits::insts(30_000),
    )
    .expect("simulation failed");
    assert!(
        small.dcache.miss_rate() < 0.05,
        "8 KB stream should be L1-resident"
    );
    assert!(large.dcache.miss_rate() > 0.08, "4 MB stream must miss L1");
    assert!(
        large.l2.miss_rate() > 0.5,
        "4 MB stream must stream through L2"
    );
}

#[test]
fn random_branches_are_costly() {
    let predictable = run_ipc(&micro::alu_loop(100_000, 2), 30_000);
    let random = run_ipc(&micro::random_branches(100_000), 30_000);
    assert!(
        random < predictable * 0.8,
        "coin-flip branches must cost throughput ({random} vs {predictable})"
    );
}

#[test]
fn misprediction_penalty_is_larger_on_gals() {
    let program = micro::random_branches(100_000);
    let limits = SimLimits::insts(30_000);
    let base = simulate(&program, sync(), limits).expect("simulation failed");
    let gals =
        simulate(&program, ProcessorConfig::gals_equal_1ghz(1), limits).expect("simulation failed");
    // The redirect travels through a FIFO: recovery is strictly longer, so
    // more wrong-path work gets in.
    assert!(gals.exec_time > base.exec_time);
    assert!(
        gals.wrong_path_fetched > base.wrong_path_fetched,
        "longer recovery pipeline must admit more wrong-path instructions \
         ({} vs {})",
        gals.wrong_path_fetched,
        base.wrong_path_fetched
    );
}

#[test]
fn store_load_forwarding_happens() {
    let program = micro::store_forward(50_000);
    let r = simulate(&program, sync(), SimLimits::insts(30_000)).expect("simulation failed");
    assert!(
        r.store_forwards > 0,
        "same-address store->load pairs must forward"
    );
    // Most iterations should forward: the load issues 3+ cycles after the
    // store and the store retires only at commit.
    let iterations = 30_000 / 5;
    assert!(
        r.store_forwards > iterations / 2,
        "forwards {} over {iterations} iterations",
        r.store_forwards
    );
}

#[test]
fn slip_has_a_pipeline_floor() {
    // Even the friendliest workload cannot beat the 8-stage pipe transit.
    let program = micro::alu_loop(100_000, 7);
    let r = simulate(&program, sync(), SimLimits::insts(30_000)).expect("simulation failed");
    assert!(
        r.mean_slip() >= Time::from_ns(6),
        "slip {} below the pipeline transit floor",
        r.mean_slip()
    );
}

#[test]
fn domain_cycle_counts_follow_the_clocks() {
    let program = micro::alu_loop(50_000, 4);
    let r = simulate(&program, sync(), SimLimits::insts(20_000)).expect("simulation failed");
    // One shared clock: all five domains tick the same number of times +-1.
    let min = r.domain_cycles.iter().min().expect("five domains");
    let max = r.domain_cycles.iter().max().expect("five domains");
    assert!(
        max - min <= 1,
        "synchronous domains must tick together {:?}",
        r.domain_cycles
    );
}

#[test]
fn gals_domains_tick_independently() {
    use gals_clocks::Domain;
    use gals_core::DvfsPlan;
    let program = micro::cross_cluster(50_000);
    let plan = DvfsPlan::nominal().with_slowdown(Domain::FpCluster, 2.0);
    let cfg = ProcessorConfig::gals_equal_1ghz(1).with_dvfs(plan);
    let r = simulate(&program, cfg, SimLimits::insts(20_000)).expect("simulation failed");
    let fp = r.domain_cycles[Domain::FpCluster.index()];
    let fetch = r.domain_cycles[Domain::Fetch.index()];
    let ratio = fetch as f64 / fp as f64;
    assert!(
        (1.9..2.1).contains(&ratio),
        "FP domain at half rate must tick half as often ({ratio})"
    );
}

#[test]
fn energy_grows_monotonically_with_work() {
    let program = micro::alu_loop(200_000, 4);
    let short = simulate(&program, sync(), SimLimits::insts(10_000)).expect("simulation failed");
    let long = simulate(&program, sync(), SimLimits::insts(30_000)).expect("simulation failed");
    assert!(long.total_energy() > short.total_energy() * 2.0);
    assert!(long.exec_time > short.exec_time * 2);
}

#[test]
fn icache_misses_stall_fetch() {
    // Any program bigger than the 16 KB L1I forces instruction misses; the
    // micro kernels are tiny, so use a generated benchmark.
    let program = gals_workload::generate(gals_workload::Benchmark::Gcc, 4);
    let r = simulate(&program, sync(), SimLimits::insts(20_000)).expect("simulation failed");
    assert!(r.icache.accesses > 0);
    assert!(
        r.icache.misses > 0,
        "gcc's footprint must miss the 16 KB L1I"
    );
}

#[test]
fn issue_queue_stats_are_consistent() {
    let program = micro::cross_cluster(50_000);
    let r = simulate(&program, sync(), SimLimits::insts(25_000)).expect("simulation failed");
    let issued: u64 = r.iq.iter().map(|q| q.issued).sum();
    let inserted: u64 = r.iq.iter().map(|q| q.inserted).sum();
    assert!(inserted >= issued, "cannot issue more than was inserted");
    assert!(
        issued >= r.committed,
        "every committed instruction issued once"
    );
}
