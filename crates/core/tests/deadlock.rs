//! Structured deadlock diagnostics: a run that stops making progress must
//! end in `Err(SimError::Deadlock)` with a deterministic snapshot of the
//! stuck machine, never a panic or a hang — this is the core-side contract
//! the sweep harness's fault isolation builds on.

use gals_core::{simulate, simulate_with_engine, DeadlockTrigger, ProcessorConfig, SimError};
use gals_core::{DeadlockReport, SimLimits};
use gals_workload::{generate, micro, Benchmark};

/// Unwraps the deadlock report out of a simulation result.
fn expect_deadlock(
    result: Result<gals_core::SimReport, SimError>,
    what: &str,
) -> Box<DeadlockReport> {
    match result {
        Err(SimError::Deadlock(report)) => report,
        Err(e) => panic!("{what}: expected deadlock, got error: {e}"),
        Ok(r) => panic!(
            "{what}: expected deadlock, got a report ({} committed)",
            r.committed
        ),
    }
}

#[test]
fn an_impossible_watchdog_window_trips_before_the_first_commit() {
    // One slow-domain period is far less than the pipeline's fill latency,
    // so the watchdog must fire before anything commits — on both drivers.
    let program = micro::alu_loop(10_000, 4);
    let limits = SimLimits::insts(5_000).with_watchdog_cycles(1);
    for (name, run) in [
        ("clockset", simulate as fn(_, _, _) -> _),
        ("engine", simulate_with_engine as fn(_, _, _) -> _),
    ] {
        let report = expect_deadlock(
            run(&program, ProcessorConfig::synchronous_1ghz(), limits),
            name,
        );
        assert_eq!(report.trigger, DeadlockTrigger::Watchdog, "{name}");
        assert_eq!(
            report.committed, 0,
            "{name}: nothing can commit in one cycle"
        );
        assert_eq!(report.watchdog_cycles, 1, "{name}");
        assert!(report.now > report.last_commit_time, "{name}");
    }
}

#[test]
fn deadlock_reports_are_deterministic_per_driver() {
    let program = generate(Benchmark::Adpcm, 7);
    let limits = SimLimits::insts(5_000).with_watchdog_cycles(1);
    let cfg = || ProcessorConfig::gals_equal_1ghz(1);
    let a = expect_deadlock(simulate(&program, cfg(), limits), "first");
    let b = expect_deadlock(simulate(&program, cfg(), limits), "second");
    assert_eq!(a, b, "the same hung point must reproduce the same report");
    let ea = expect_deadlock(
        simulate_with_engine(&program, cfg(), limits),
        "engine first",
    );
    let eb = expect_deadlock(
        simulate_with_engine(&program, cfg(), limits),
        "engine second",
    );
    assert_eq!(ea, eb);
}

#[test]
fn the_report_displays_its_trigger_and_occupancy() {
    let program = micro::alu_loop(10_000, 4);
    let limits = SimLimits::insts(5_000).with_watchdog_cycles(1);
    let err = simulate(&program, ProcessorConfig::synchronous_1ghz(), limits)
        .expect_err("watchdog must fire");
    let text = err.to_string();
    assert!(text.contains("deadlock (watchdog)"), "{text}");
    assert!(text.contains("rob="), "{text}");
    assert!(text.contains("wakeup_total="), "{text}");
}

#[test]
fn a_sane_watchdog_never_fires_on_a_healthy_run() {
    // The default window (200k slow periods) is orders of magnitude above
    // any real commit gap; a normal run must complete untouched.
    let program = generate(Benchmark::Compress, 3);
    let report = simulate(
        &program,
        ProcessorConfig::gals_equal_1ghz(1),
        SimLimits::insts(2_000),
    )
    .expect("healthy run");
    assert_eq!(report.committed, 2_000);
}

/// Chaos-mode wedges: withhold one writeback so the ROB head never
/// retires, and check the structured report names the culprit.
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;

    fn wedged_limits(seq: u64) -> SimLimits {
        let mut limits = SimLimits::insts(2_000).with_watchdog_cycles(500);
        limits.chaos.withhold_writeback = Some(seq);
        limits
    }

    #[test]
    fn a_withheld_writeback_wedges_commit_behind_its_seq() {
        let program = generate(Benchmark::Adpcm, 1);
        for cfg in [
            ProcessorConfig::synchronous_1ghz(),
            ProcessorConfig::gals_equal_1ghz(1),
        ] {
            let report = expect_deadlock(
                simulate(&program, cfg.clone(), wedged_limits(150)),
                "wedged run",
            );
            // Commit is stuck exactly behind the instruction whose
            // writeback was withheld. (Seqs number *fetched* instructions,
            // squashed wrong-path ones included, so fewer than `seq`
            // instructions actually committed before the wedge.)
            assert_eq!(report.rob_head_seq, Some(150));
            assert!(report.committed > 0 && report.committed <= 150);
            assert!(report.rob_len > 0);
            let again =
                expect_deadlock(simulate(&program, cfg, wedged_limits(150)), "wedged rerun");
            assert_eq!(report, again, "wedge diagnostics must be deterministic");
        }
    }

    #[test]
    fn both_drivers_surface_the_same_stuck_head() {
        let program = generate(Benchmark::Compress, 2);
        let cfg = || ProcessorConfig::gals_equal_1ghz(1);
        let fast = expect_deadlock(simulate(&program, cfg(), wedged_limits(90)), "clockset");
        let engine = expect_deadlock(
            simulate_with_engine(&program, cfg(), wedged_limits(90)),
            "engine",
        );
        // Snapshot *timing* may differ between drivers (the engine never
        // parks), but the architectural stuck-state must agree.
        assert_eq!(fast.rob_head_seq, Some(90));
        assert_eq!(engine.rob_head_seq, Some(90));
        assert_eq!(fast.committed, engine.committed);
    }

    #[test]
    fn an_unarmed_chaos_plan_changes_nothing() {
        let program = generate(Benchmark::Adpcm, 5);
        let limits = SimLimits::insts(1_500);
        assert_eq!(limits.chaos.withhold_writeback, None);
        let report = simulate(&program, ProcessorConfig::gals_equal_1ghz(1), limits)
            .expect("unarmed chaos build runs clean");
        assert_eq!(report.committed, 1_500);
    }
}
