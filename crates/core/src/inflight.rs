//! In-flight instruction state and inter-domain messages.

use gals_events::Time;
use gals_isa::{ArchReg, Cluster, OpClass};
use gals_uarch::PhysReg;

/// A unified wakeup tag covering both register classes: integer physical
/// registers map to `0..512`, FP registers to `512..1024`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u16);

/// Size of the unified tag space.
pub const TAG_SPACE: usize = 1024;
const FP_TAG_BASE: u16 = 512;

impl Tag {
    /// Builds a tag from a class-local physical register.
    pub fn new(reg: PhysReg, is_fp: bool) -> Self {
        debug_assert!(reg.0 < FP_TAG_BASE);
        Tag(if is_fp { reg.0 + FP_TAG_BASE } else { reg.0 })
    }

    /// The class-local physical register.
    pub fn phys(self) -> PhysReg {
        PhysReg(self.0 % FP_TAG_BASE)
    }

    /// True for FP tags.
    pub fn is_fp(self) -> bool {
        self.0 >= FP_TAG_BASE
    }

    /// Dense index into `TAG_SPACE`-sized tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The `PhysReg` encoding used by [`gals_uarch::IssueQueue`] (which is
    /// class-agnostic and just matches 16-bit tokens).
    pub fn as_iq_tag(self) -> PhysReg {
        PhysReg(self.0)
    }
}

/// Control-flow details of a fetched branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Direction the front end predicted.
    pub predicted_taken: bool,
    /// Architectural direction (meaningless for wrong-path branches).
    pub actual_taken: bool,
    /// Architectural next PC — the recovery target on a misprediction.
    pub recovery_pc: u64,
    /// True when the front end detected (at fetch, against the
    /// architectural stream) that this correct-path branch was mispredicted
    /// and fetch has gone down the wrong path.
    pub mispredicted: bool,
}

/// Everything the pipeline knows about one fetched instruction.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Global fetch sequence number (never reused; program order among
    /// correct-path instructions).
    pub seq: u64,
    /// Byte PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// True if fetched while the front end was on a mispredicted path.
    pub wrong_path: bool,
    /// Destination rename: `(arch, new phys tag, old phys reg)`.
    pub dst: Option<(ArchReg, Tag, PhysReg)>,
    /// Source operand tags (filled at rename).
    pub srcs: Vec<Tag>,
    /// Memory byte address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch details.
    pub branch: Option<BranchInfo>,
    /// Fetch timestamp (slip starts here).
    pub fetched_at: Time,
    /// Accumulated channel residency (the FIFO share of slip).
    pub fifo_time: Time,
    /// True once this is the program's final instruction.
    pub is_exit: bool,
}

impl InFlight {
    /// The execution cluster this instruction issues to.
    pub fn cluster(&self) -> Cluster {
        self.op.cluster()
    }
}

/// A fetch-redirect message (mispredicted branch resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirect {
    /// Sequence number of the mispredicted branch.
    pub branch_seq: u64,
    /// PC fetch must resume from.
    pub target_pc: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips_both_classes() {
        let int_tag = Tag::new(PhysReg(37), false);
        assert!(!int_tag.is_fp());
        assert_eq!(int_tag.phys(), PhysReg(37));
        assert_eq!(int_tag.index(), 37);
        let fp_tag = Tag::new(PhysReg(37), true);
        assert!(fp_tag.is_fp());
        assert_eq!(fp_tag.phys(), PhysReg(37));
        assert_eq!(fp_tag.index(), 512 + 37);
        assert_ne!(int_tag, fp_tag);
    }

    #[test]
    fn iq_tags_stay_distinct_across_classes() {
        let a = Tag::new(PhysReg(5), false).as_iq_tag();
        let b = Tag::new(PhysReg(5), true).as_iq_tag();
        assert_ne!(a, b);
    }
}
