//! In-flight instruction state and inter-domain messages.
//!
//! ## The handle-based instruction store
//!
//! An in-flight instruction lives in exactly one place — a slot of
//! [`InFlightTable`] — and every pipeline structure (the decode buffer, the
//! inter-domain [`gals_clocks::Channel`]s, the ROB, the issue queues, the
//! squash scratch buffers) carries only an 8-byte [`InstrId`] handle. The
//! table is a slab: freed slots are recycled through a free list, so its
//! footprint tracks the *live* instruction count (bounded by ROB + channel
//! capacities — a few hundred entries that stay resident in L1/L2) rather
//! than the live *sequence spread* of the previous direct-mapped ring,
//! which grew with wrong-path squash bursts.
//!
//! The per-instruction state is split along the hot/cold line, into two
//! parallel arrays indexed by slot:
//!
//! * **Hot** fields — the ones the steady-state loop probes several times
//!   per instruction (sequence number, op class, wrong-path / completed /
//!   exit / mispredict flags, renamed source tags, destination rename) —
//!   are packed into one 32-byte record per slot, so the commit scan,
//!   issue admission and writeback touch a single cache line per probe
//!   and the squash scan walks a dense array. (An early draft split the
//!   hot fields into per-field columns; for this table's point-lookup
//!   access pattern that touches *more* lines per probe, not fewer — the
//!   split that pays is hot-record vs cold-record.)
//! * **Cold** fields — branch info, the fetch/FIFO slip timestamps, the
//!   memory address, the PC and the architectural operands — live in a
//!   parallel array of [`InFlightCold`] records, written at fetch and
//!   read back at rename, memory issue, recovery and commit.
//!
//! Handles are generation-checked: [`InstrId`] packs a slot index with the
//! slot's generation, and every accessor returns `None`/`false` for a
//! handle whose instruction has been removed (committed or squashed), even
//! if the slot has been reused — the same "stale message is a no-op"
//! semantics the pipeline's completion and issue paths relied on when they
//! carried raw sequence numbers.

use gals_events::Time;
use gals_isa::{ArchReg, Cluster, OpClass};
use gals_uarch::PhysReg;

/// A unified wakeup tag covering both register classes: integer physical
/// registers map to `0..512`, FP registers to `512..1024`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u16);

/// Size of the unified tag space.
pub const TAG_SPACE: usize = 1024;
const FP_TAG_BASE: u16 = 512;

impl Tag {
    /// Builds a tag from a class-local physical register.
    pub fn new(reg: PhysReg, is_fp: bool) -> Self {
        debug_assert!(reg.0 < FP_TAG_BASE);
        Tag(if is_fp { reg.0 + FP_TAG_BASE } else { reg.0 })
    }

    /// The class-local physical register.
    pub fn phys(self) -> PhysReg {
        PhysReg(self.0 % FP_TAG_BASE)
    }

    /// True for FP tags.
    pub fn is_fp(self) -> bool {
        self.0 >= FP_TAG_BASE
    }

    /// Dense index into `TAG_SPACE`-sized tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The `PhysReg` encoding used by [`gals_uarch::IssueQueue`] (which is
    /// class-agnostic and just matches 16-bit tokens).
    pub fn as_iq_tag(self) -> PhysReg {
        PhysReg(self.0)
    }
}

/// Fixed-capacity source-operand list. An instruction has at most two
/// register sources, so boxing them in a heap `Vec` put one allocation on
/// every renamed instruction; this inline array removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcTags {
    tags: [Tag; 2],
    len: u8,
}

impl Default for SrcTags {
    fn default() -> Self {
        SrcTags {
            tags: [Tag(0); 2],
            len: 0,
        }
    }
}

impl SrcTags {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a tag.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds two tags.
    pub fn push(&mut self, tag: Tag) {
        assert!(
            (self.len as usize) < 2,
            "an instruction has at most two sources"
        );
        self.tags[self.len as usize] = tag;
        self.len += 1;
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the tags.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        self.tags[..self.len as usize].iter().copied()
    }
}

impl FromIterator<Tag> for SrcTags {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        let mut s = SrcTags::new();
        for t in iter {
            s.push(t);
        }
        s
    }
}

/// Control-flow details of a fetched branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Direction the front end predicted.
    pub predicted_taken: bool,
    /// Architectural direction (meaningless for wrong-path branches).
    pub actual_taken: bool,
    /// Architectural next PC — the recovery target on a misprediction.
    pub recovery_pc: u64,
    /// True when the front end detected (at fetch, against the
    /// architectural stream) that this correct-path branch was mispredicted
    /// and fetch has gone down the wrong path.
    pub mispredicted: bool,
}

/// Destination rename record: `(arch, new phys tag, old phys reg)`.
pub type DstRename = (ArchReg, Tag, PhysReg);

/// Rename-stage view of one instruction:
/// `(seq, op, arch_dst, arch_srcs)` — see [`InFlightTable::rename_view`].
pub type RenameView = (u64, OpClass, Option<ArchReg>, [Option<ArchReg>; 2]);

/// The handle to one live in-flight instruction: a slot index into
/// [`InFlightTable`] packed with the slot's generation. 8 bytes — the only
/// thing pipeline structures store per instruction.
///
/// A handle whose instruction has been removed is *stale*; every table
/// accessor detects staleness through the generation check and treats the
/// handle as referring to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrId {
    slot: u32,
    gen: u32,
}

impl InstrId {
    /// Packs the handle into a `u64` (for structures keyed by opaque
    /// tokens, e.g. [`gals_uarch::IssueQueue`]).
    #[inline]
    pub fn bits(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.slot)
    }

    /// Reverses [`InstrId::bits`].
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        InstrId {
            slot: bits as u32,
            gen: (bits >> 32) as u32,
        }
    }
}

/// The cold half of an in-flight instruction: fields written at fetch and
/// read back at rename, memory issue, recovery and commit — kept out of
/// the hot columns so the per-cycle scans never pull them into cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightCold {
    /// Byte PC.
    pub pc: u64,
    /// Architectural destination register (copied from the static
    /// instruction at fetch so rename never re-locates the PC).
    pub arch_dst: Option<ArchReg>,
    /// Architectural source registers, same provenance.
    pub arch_srcs: [Option<ArchReg>; 2],
    /// Memory byte address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch details.
    pub branch: Option<BranchInfo>,
    /// Fetch timestamp (slip starts here).
    pub fetched_at: Time,
    /// Accumulated channel residency (the FIFO share of slip).
    pub fifo_time: Time,
}

/// Everything the front end knows about one fetched instruction — the
/// argument to [`InFlightTable::insert`], written field-by-field into the
/// hot columns and the cold record exactly once.
#[derive(Debug, Clone, Copy)]
pub struct FetchedInstr {
    /// Global fetch sequence number (never reused; program order among
    /// correct-path instructions).
    pub seq: u64,
    /// Byte PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// True if fetched while the front end was on a mispredicted path.
    pub wrong_path: bool,
    /// Architectural destination register.
    pub arch_dst: Option<ArchReg>,
    /// Architectural source registers.
    pub arch_srcs: [Option<ArchReg>; 2],
    /// Memory byte address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch details.
    pub branch: Option<BranchInfo>,
    /// True once this is the program's final instruction.
    pub is_exit: bool,
    /// Fetch timestamp.
    pub fetched_at: Time,
}

/// Everything retirement needs from the table, returned by
/// [`InFlightTable::remove_retired`] in one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInstr {
    /// Operation class.
    pub op: OpClass,
    /// Destination rename (release the old mapping).
    pub dst: Option<DstRename>,
    /// True for a wrong-path instruction (must never retire).
    pub wrong_path: bool,
    /// True for the program's final instruction.
    pub is_exit: bool,
    /// Fetch timestamp.
    pub fetched_at: Time,
    /// Accumulated channel residency.
    pub fifo_time: Time,
}

/// Per-slot hot flags, packed into one byte.
mod flag {
    pub const LIVE: u8 = 1 << 0;
    pub const WRONG_PATH: u8 = 1 << 1;
    pub const COMPLETED: u8 = 1 << 2;
    pub const IS_EXIT: u8 = 1 << 3;
    /// Correct-path branch the front end detected as mispredicted — kept
    /// hot so writeback never touches the cold record unless it actually
    /// launches a recovery.
    pub const MISPREDICT: u8 = 1 << 4;
}

/// One slot's hot record: the fields the steady-state loop probes several
/// times per instruction, packed into 32 bytes so a probe touches a single
/// cache line. The generation lives here too — the staleness check and the
/// field read share the load.
#[derive(Debug, Clone, Copy)]
struct HotEntry {
    /// Sequence number (program order key; valid only for live slots).
    seq: u64,
    /// Slot generation, bumped at each removal.
    gen: u32,
    /// Op class.
    op: OpClass,
    /// `flag::*` bits; `LIVE` distinguishes occupied slots.
    flags: u8,
    /// Renamed source tags (filled at rename).
    srcs: SrcTags,
    /// Destination rename (filled at rename).
    dst: Option<DstRename>,
}

const EMPTY_HOT: HotEntry = HotEntry {
    seq: 0,
    gen: 0,
    op: OpClass::IntAlu,
    flags: 0,
    srcs: SrcTags {
        tags: [Tag(0); 2],
        len: 0,
    },
    dst: None,
};

/// The slab-backed in-flight instruction store (see the module docs).
///
/// The pipeline probes this table around ten times per simulated
/// instruction (fetch insert, decode pull, rename, dispatch, issue
/// admission, writeback, completion, commit); each probe is a direct slot
/// index plus a generation compare into the packed hot record, touching
/// the cold record only where the stage genuinely needs it.
///
/// # Examples
///
/// ```
/// use gals_core::inflight::{FetchedInstr, InFlightTable};
/// use gals_events::Time;
/// use gals_isa::OpClass;
///
/// let mut t = InFlightTable::with_capacity(8);
/// let id = t.insert(FetchedInstr {
///     seq: 7,
///     pc: 28,
///     op: OpClass::IntAlu,
///     wrong_path: false,
///     arch_dst: None,
///     arch_srcs: [None, None],
///     mem_addr: None,
///     branch: None,
///     is_exit: false,
///     fetched_at: Time::ZERO,
/// });
/// assert_eq!(t.seq_of(id), Some(7));
/// t.set_completed(id);
/// assert!(t.is_completed(id));
/// assert!(t.remove(id));
/// assert_eq!(t.seq_of(id), None); // stale handle: refers to nothing
/// ```
#[derive(Debug)]
pub struct InFlightTable {
    /// Hot records, indexed by slot.
    hot: Vec<HotEntry>,
    /// Cold records, indexed by slot.
    cold: Vec<InFlightCold>,
    /// Recycled slot indices.
    free: Vec<u32>,
    live: usize,
}

/// Growth ceiling: a table this large means instructions leak (they are
/// inserted but never committed or squashed), which is a simulator bug.
const INFLIGHT_CAP_CEILING: usize = 1 << 24;

const EMPTY_COLD: InFlightCold = InFlightCold {
    pc: 0,
    arch_dst: None,
    arch_srcs: [None, None],
    mem_addr: None,
    branch: None,
    fetched_at: Time::ZERO,
    fifo_time: Time::ZERO,
};

impl InFlightTable {
    /// A table pre-sized for `capacity` simultaneously live instructions
    /// (it grows slot-by-slot beyond that, amortised O(1); the live count
    /// is bounded by ROB + channel capacities, so a correctly sized table
    /// never grows after construction).
    pub fn with_capacity(capacity: usize) -> Self {
        InFlightTable {
            hot: vec![EMPTY_HOT; capacity],
            cold: vec![EMPTY_COLD; capacity],
            free: (0..capacity as u32).rev().collect(),
            live: 0,
        }
    }

    /// Number of live instructions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no instructions are in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.hot.len()
    }

    /// Inserts a fetched instruction and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if growth passes `INFLIGHT_CAP_CEILING` (2²⁴ slots) —
    /// instructions are leaking, which indicates a simulator bug, never a
    /// user error.
    pub fn insert(&mut self, f: FetchedInstr) -> InstrId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                assert!(
                    self.hot.len() < INFLIGHT_CAP_CEILING,
                    "in-flight table grew past {INFLIGHT_CAP_CEILING} slots: instruction leak"
                );
                self.hot.push(EMPTY_HOT);
                self.cold.push(EMPTY_COLD);
                (self.hot.len() - 1) as u32
            }
        };
        let i = slot as usize;
        let mispredict = !f.wrong_path && f.branch.is_some_and(|b| b.mispredicted);
        let h = &mut self.hot[i];
        debug_assert_eq!(h.flags & flag::LIVE, 0, "free list returned a live slot");
        h.seq = f.seq;
        h.op = f.op;
        h.flags = flag::LIVE
            | if f.wrong_path { flag::WRONG_PATH } else { 0 }
            | if f.is_exit { flag::IS_EXIT } else { 0 }
            | if mispredict { flag::MISPREDICT } else { 0 };
        h.srcs = SrcTags::new();
        h.dst = None;
        let gen = h.gen;
        self.cold[i] = InFlightCold {
            pc: f.pc,
            arch_dst: f.arch_dst,
            arch_srcs: f.arch_srcs,
            mem_addr: f.mem_addr,
            branch: f.branch,
            fetched_at: f.fetched_at,
            fifo_time: Time::ZERO,
        };
        self.live += 1;
        InstrId { slot, gen }
    }

    /// The hot record of a live handle, or `None` if stale. The generation
    /// check alone is sufficient: a removal bumps the slot's generation, so
    /// a handle matching the current generation is necessarily the live
    /// occupant (the `LIVE` flag exists for the `remove_younger` scan).
    #[inline]
    fn hot(&self, id: InstrId) -> Option<&HotEntry> {
        let h = &self.hot[id.slot as usize];
        debug_assert!(
            h.gen != id.gen || h.flags & flag::LIVE != 0,
            "generation matched a freed slot"
        );
        (h.gen == id.gen).then_some(h)
    }

    /// Mutable form of [`InFlightTable::hot`].
    #[inline]
    fn hot_mut(&mut self, id: InstrId) -> Option<&mut HotEntry> {
        let h = &mut self.hot[id.slot as usize];
        debug_assert!(
            h.gen != id.gen || h.flags & flag::LIVE != 0,
            "generation matched a freed slot"
        );
        (h.gen == id.gen).then_some(h)
    }

    /// Slot index of a live handle, or `None` if stale.
    #[inline]
    fn index(&self, id: InstrId) -> Option<usize> {
        self.hot(id).map(|_| id.slot as usize)
    }

    /// True while the handle's instruction is live.
    #[inline]
    pub fn contains(&self, id: InstrId) -> bool {
        self.hot(id).is_some()
    }

    /// Sequence number, or `None` for a stale handle.
    #[inline]
    pub fn seq_of(&self, id: InstrId) -> Option<u64> {
        self.hot(id).map(|h| h.seq)
    }

    /// Op class, or `None` for a stale handle.
    #[inline]
    pub fn op_of(&self, id: InstrId) -> Option<OpClass> {
        self.hot(id).map(|h| h.op)
    }

    /// The execution cluster the instruction issues to.
    #[inline]
    pub fn cluster_of(&self, id: InstrId) -> Option<Cluster> {
        self.op_of(id).map(|op| op.cluster())
    }

    /// True if the instruction is live and was fetched on the wrong path.
    #[inline]
    pub fn is_wrong_path(&self, id: InstrId) -> bool {
        self.hot(id)
            .is_some_and(|h| h.flags & flag::WRONG_PATH != 0)
    }

    /// True if the instruction is live and has reported completion.
    #[inline]
    pub fn is_completed(&self, id: InstrId) -> bool {
        self.hot(id).is_some_and(|h| h.flags & flag::COMPLETED != 0)
    }

    /// True if the instruction is live and is the program's exit.
    #[inline]
    pub fn is_exit(&self, id: InstrId) -> bool {
        self.hot(id).is_some_and(|h| h.flags & flag::IS_EXIT != 0)
    }

    /// Marks completion (no-op on a stale handle).
    #[inline]
    pub fn set_completed(&mut self, id: InstrId) {
        if let Some(h) = self.hot_mut(id) {
            h.flags |= flag::COMPLETED;
        }
    }

    /// One-probe completion absorption: adds the completion channel's
    /// residency and sets the completed flag (stale no-op).
    #[inline]
    pub fn complete_with_residency(&mut self, id: InstrId, residency: Time) {
        if let Some(i) = self.index(id) {
            self.hot[i].flags |= flag::COMPLETED;
            self.cold[i].fifo_time += residency;
        }
    }

    /// Renamed source tags (meaningful after rename).
    #[inline]
    pub fn srcs_of(&self, id: InstrId) -> Option<SrcTags> {
        self.hot(id).map(|h| h.srcs)
    }

    /// Destination rename (meaningful after rename); `None` also for a
    /// stale handle.
    #[inline]
    pub fn dst_of(&self, id: InstrId) -> Option<DstRename> {
        self.hot(id).and_then(|h| h.dst)
    }

    /// Stores the rename results (no-op on a stale handle).
    #[inline]
    pub fn set_rename(&mut self, id: InstrId, srcs: SrcTags, dst: Option<DstRename>) {
        if let Some(h) = self.hot_mut(id) {
            h.srcs = srcs;
            h.dst = dst;
        }
    }

    /// The cold record, or `None` for a stale handle.
    #[inline]
    pub fn cold_of(&self, id: InstrId) -> Option<&InFlightCold> {
        self.index(id).map(|i| &self.cold[i])
    }

    /// Adds channel residency to the instruction's FIFO-slip accumulator
    /// (no-op on a stale handle). Returns `true` if the handle was live.
    #[inline]
    pub fn add_fifo_time(&mut self, id: InstrId, residency: Time) -> bool {
        match self.index(id) {
            Some(i) => {
                self.cold[i].fifo_time += residency;
                true
            }
            None => false,
        }
    }

    /// Architectural operands captured at fetch: `(dst, [src1, src2])`.
    #[inline]
    pub fn arch_ops_of(&self, id: InstrId) -> Option<(Option<ArchReg>, [Option<ArchReg>; 2])> {
        self.index(id)
            .map(|i| (self.cold[i].arch_dst, self.cold[i].arch_srcs))
    }

    /// One-probe rename view: `(seq, op, arch_dst, arch_srcs)`.
    #[inline]
    pub fn rename_view(&self, id: InstrId) -> Option<RenameView> {
        let i = self.index(id)?;
        let h = &self.hot[i];
        let c = &self.cold[i];
        Some((h.seq, h.op, c.arch_dst, c.arch_srcs))
    }

    /// One-probe writeback view: `(seq, dst rename, is-mispredicted)` —
    /// hot record only; a recovery launch reads the cold record through
    /// [`InFlightTable::recovery_pc_of`].
    #[inline]
    pub fn writeback_view(&self, id: InstrId) -> Option<(u64, Option<DstRename>, bool)> {
        self.hot(id)
            .map(|h| (h.seq, h.dst, h.flags & flag::MISPREDICT != 0))
    }

    /// Recovery target of a mispredicted branch (cold record).
    #[inline]
    pub fn recovery_pc_of(&self, id: InstrId) -> Option<u64> {
        self.index(id)
            .and_then(|i| self.cold[i].branch.map(|b| b.recovery_pc))
    }

    /// One-probe dispatch absorption: adds the channel residency to the
    /// instruction's FIFO-slip accumulator and returns its `(seq, renamed
    /// source tags)`. `None` (and no accumulation) for a stale handle.
    #[inline]
    pub fn absorb_dispatch(&mut self, id: InstrId, residency: Time) -> Option<(u64, SrcTags)> {
        let i = self.index(id)?;
        self.cold[i].fifo_time += residency;
        let h = &self.hot[i];
        Some((h.seq, h.srcs))
    }

    /// One-probe issue view: `(seq, op, wrong_path)`.
    #[inline]
    pub fn issue_view(&self, id: InstrId) -> Option<(u64, OpClass, bool)> {
        self.hot(id)
            .map(|h| (h.seq, h.op, h.flags & flag::WRONG_PATH != 0))
    }

    /// Memory byte address (cold record; loads/stores only).
    #[inline]
    pub fn mem_addr_of(&self, id: InstrId) -> Option<u64> {
        self.index(id).and_then(|i| self.cold[i].mem_addr)
    }

    /// Removes the instruction at commit, returning everything retirement
    /// needs in one probe. `None` for a stale handle.
    pub fn remove_retired(&mut self, id: InstrId) -> Option<RetiredInstr> {
        let i = self.index(id)?;
        let h = &mut self.hot[i];
        let retired = RetiredInstr {
            op: h.op,
            dst: h.dst,
            wrong_path: h.flags & flag::WRONG_PATH != 0,
            is_exit: h.flags & flag::IS_EXIT != 0,
            fetched_at: self.cold[i].fetched_at,
            fifo_time: self.cold[i].fifo_time,
        };
        h.flags = 0;
        h.gen = h.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        Some(retired)
    }

    /// Removes the instruction, freeing its slot for reuse. Returns `false`
    /// for a stale handle.
    pub fn remove(&mut self, id: InstrId) -> bool {
        match self.hot_mut(id) {
            Some(h) => {
                h.flags = 0;
                h.gen = h.gen.wrapping_add(1);
                self.free.push(id.slot);
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes every live instruction with `seq > older_than` — the squash
    /// shape: everything younger than the mispredicted branch. The scan is
    /// O(capacity), and the capacity tracks the peak live count (a few
    /// hundred hot records, a handful of cache lines), so recovery stays
    /// cheap and allocation-free.
    pub fn remove_younger(&mut self, older_than: u64) {
        for (i, h) in self.hot.iter_mut().enumerate() {
            if h.flags & flag::LIVE != 0 && h.seq > older_than {
                h.flags = 0;
                h.gen = h.gen.wrapping_add(1);
                self.free.push(i as u32);
                self.live -= 1;
            }
        }
    }
}

/// A fetch-redirect message (mispredicted branch resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirect {
    /// Handle of the mispredicted branch (for slip attribution).
    pub branch: InstrId,
    /// Sequence number of the mispredicted branch (the squash bound).
    pub branch_seq: u64,
    /// PC fetch must resume from.
    pub target_pc: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(seq: u64) -> FetchedInstr {
        FetchedInstr {
            seq,
            pc: seq * 4,
            op: OpClass::IntAlu,
            wrong_path: false,
            arch_dst: None,
            arch_srcs: [None, None],
            mem_addr: None,
            branch: None,
            is_exit: false,
            fetched_at: Time::ZERO,
        }
    }

    #[test]
    fn inflight_table_round_trips() {
        let mut t = InFlightTable::with_capacity(8);
        assert!(t.is_empty());
        let a = t.insert(dummy(5));
        let b = t.insert(dummy(6));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cold_of(a).map(|c| c.pc), Some(20));
        assert_eq!(t.seq_of(b), Some(6));
        t.set_completed(b);
        assert!(t.is_completed(b));
        assert!(!t.is_completed(a));
        assert!(t.remove(a));
        assert!(!t.remove(a), "double remove is a stale no-op");
        assert_eq!(t.len(), 1);
        assert_eq!(t.seq_of(a), None);
    }

    #[test]
    fn stale_handles_survive_slot_reuse() {
        let mut t = InFlightTable::with_capacity(1);
        let a = t.insert(dummy(1));
        t.remove(a);
        let b = t.insert(dummy(2));
        // `b` reuses `a`'s slot; the generation check keeps them distinct.
        assert_ne!(a, b);
        assert_eq!(t.seq_of(a), None);
        assert!(!t.is_completed(a));
        t.set_completed(a); // stale no-op
        assert!(!t.is_completed(b));
        assert_eq!(t.seq_of(b), Some(2));
    }

    #[test]
    fn table_grows_past_its_initial_capacity() {
        let mut t = InFlightTable::with_capacity(2);
        let ids: Vec<InstrId> = (0..10).map(|s| t.insert(dummy(s))).collect();
        assert_eq!(t.len(), 10);
        assert!(t.capacity() >= 10);
        for (s, id) in ids.iter().enumerate() {
            assert_eq!(t.seq_of(*id), Some(s as u64));
        }
    }

    #[test]
    fn remove_younger_squashes_by_sequence() {
        let mut t = InFlightTable::with_capacity(8);
        let ids: Vec<InstrId> = (0..10).map(|s| t.insert(dummy(s))).collect();
        t.remove_younger(3);
        assert_eq!(t.len(), 4);
        assert!(t.contains(ids[3]));
        assert!(!t.contains(ids[4]));
        assert!(!t.contains(ids[9]));
    }

    #[test]
    fn rename_fields_are_stored_on_the_hot_side() {
        let mut t = InFlightTable::with_capacity(4);
        let id = t.insert(dummy(3));
        let mut srcs = SrcTags::new();
        srcs.push(Tag(17));
        let dst = Some((ArchReg::int(1), Tag(40), PhysReg(9)));
        t.set_rename(id, srcs, dst);
        assert_eq!(
            t.srcs_of(id).unwrap().iter().collect::<Vec<_>>(),
            vec![Tag(17)]
        );
        assert_eq!(t.dst_of(id), dst);
    }

    #[test]
    fn fifo_time_accumulates_in_the_cold_record() {
        let mut t = InFlightTable::with_capacity(4);
        let id = t.insert(dummy(3));
        assert!(t.add_fifo_time(id, Time::from_ns(2)));
        assert!(t.add_fifo_time(id, Time::from_ns(1)));
        assert_eq!(t.cold_of(id).unwrap().fifo_time, Time::from_ns(3));
        t.remove(id);
        assert!(!t.add_fifo_time(id, Time::from_ns(1)));
    }

    #[test]
    fn instr_id_bits_round_trip() {
        let id = InstrId {
            slot: 123,
            gen: 456,
        };
        assert_eq!(InstrId::from_bits(id.bits()), id);
    }

    #[test]
    fn tag_round_trips_both_classes() {
        let int_tag = Tag::new(PhysReg(37), false);
        assert!(!int_tag.is_fp());
        assert_eq!(int_tag.phys(), PhysReg(37));
        assert_eq!(int_tag.index(), 37);
        let fp_tag = Tag::new(PhysReg(37), true);
        assert!(fp_tag.is_fp());
        assert_eq!(fp_tag.phys(), PhysReg(37));
        assert_eq!(fp_tag.index(), 512 + 37);
        assert_ne!(int_tag, fp_tag);
    }

    #[test]
    fn iq_tags_stay_distinct_across_classes() {
        let a = Tag::new(PhysReg(5), false).as_iq_tag();
        let b = Tag::new(PhysReg(5), true).as_iq_tag();
        assert_ne!(a, b);
    }

    #[test]
    fn src_tags_hold_up_to_two() {
        let mut s = SrcTags::new();
        assert!(s.is_empty());
        s.push(Tag(3));
        s.push(Tag(700));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Tag(3), Tag(700)]);
        let collected: SrcTags = [Tag(1), Tag(2)].into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn src_tags_reject_a_third_source() {
        let mut s = SrcTags::new();
        s.push(Tag(1));
        s.push(Tag(2));
        s.push(Tag(3));
    }
}
