//! In-flight instruction state and inter-domain messages.

use gals_events::Time;
use gals_isa::{ArchReg, Cluster, OpClass};
use gals_uarch::PhysReg;

/// A unified wakeup tag covering both register classes: integer physical
/// registers map to `0..512`, FP registers to `512..1024`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u16);

/// Size of the unified tag space.
pub const TAG_SPACE: usize = 1024;
const FP_TAG_BASE: u16 = 512;

impl Tag {
    /// Builds a tag from a class-local physical register.
    pub fn new(reg: PhysReg, is_fp: bool) -> Self {
        debug_assert!(reg.0 < FP_TAG_BASE);
        Tag(if is_fp { reg.0 + FP_TAG_BASE } else { reg.0 })
    }

    /// The class-local physical register.
    pub fn phys(self) -> PhysReg {
        PhysReg(self.0 % FP_TAG_BASE)
    }

    /// True for FP tags.
    pub fn is_fp(self) -> bool {
        self.0 >= FP_TAG_BASE
    }

    /// Dense index into `TAG_SPACE`-sized tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The `PhysReg` encoding used by [`gals_uarch::IssueQueue`] (which is
    /// class-agnostic and just matches 16-bit tokens).
    pub fn as_iq_tag(self) -> PhysReg {
        PhysReg(self.0)
    }
}

/// Fixed-capacity source-operand list. An instruction has at most two
/// register sources, so boxing them in a heap `Vec` put one allocation on
/// every renamed instruction; this inline array removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcTags {
    tags: [Tag; 2],
    len: u8,
}

impl Default for SrcTags {
    fn default() -> Self {
        SrcTags {
            tags: [Tag(0); 2],
            len: 0,
        }
    }
}

impl SrcTags {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a tag.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds two tags.
    pub fn push(&mut self, tag: Tag) {
        assert!(
            (self.len as usize) < 2,
            "an instruction has at most two sources"
        );
        self.tags[self.len as usize] = tag;
        self.len += 1;
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the tags.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        self.tags[..self.len as usize].iter().copied()
    }
}

impl FromIterator<Tag> for SrcTags {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        let mut s = SrcTags::new();
        for t in iter {
            s.push(t);
        }
        s
    }
}

/// Control-flow details of a fetched branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Direction the front end predicted.
    pub predicted_taken: bool,
    /// Architectural direction (meaningless for wrong-path branches).
    pub actual_taken: bool,
    /// Architectural next PC — the recovery target on a misprediction.
    pub recovery_pc: u64,
    /// True when the front end detected (at fetch, against the
    /// architectural stream) that this correct-path branch was mispredicted
    /// and fetch has gone down the wrong path.
    pub mispredicted: bool,
}

/// Everything the pipeline knows about one fetched instruction.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Global fetch sequence number (never reused; program order among
    /// correct-path instructions).
    pub seq: u64,
    /// Byte PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// True if fetched while the front end was on a mispredicted path.
    pub wrong_path: bool,
    /// Architectural destination register (copied from the static
    /// instruction at fetch so rename never re-locates the PC).
    pub arch_dst: Option<ArchReg>,
    /// Architectural source registers, same provenance.
    pub arch_srcs: [Option<ArchReg>; 2],
    /// Destination rename: `(arch, new phys tag, old phys reg)`.
    pub dst: Option<(ArchReg, Tag, PhysReg)>,
    /// Source operand tags (filled at rename).
    pub srcs: SrcTags,
    /// Memory byte address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Branch details.
    pub branch: Option<BranchInfo>,
    /// True once the execution cluster reported completion to the ROB's
    /// domain (checked at commit; avoids a per-completion ROB search).
    pub completed: bool,
    /// Fetch timestamp (slip starts here).
    pub fetched_at: Time,
    /// Accumulated channel residency (the FIFO share of slip).
    pub fifo_time: Time,
    /// True once this is the program's final instruction.
    pub is_exit: bool,
}

impl InFlight {
    /// The execution cluster this instruction issues to.
    pub fn cluster(&self) -> Cluster {
        self.op.cluster()
    }
}

/// The in-flight instruction table: a direct-mapped power-of-two ring
/// indexed by sequence number.
///
/// The pipeline probes this table around ten times per simulated
/// instruction (fetch insert, decode pull, rename, dispatch, issue
/// admission, writeback, completion, commit), which made a general
/// `HashMap` the single largest cost on the hot path. Sequence numbers are
/// dense and monotonically increasing, so `slot = seq & mask` with a stored
/// seq check is an exact single-probe lookup with perfect spatial locality.
///
/// The capacity must exceed the live *sequence spread* (newest minus
/// oldest live), not just the live count: wrong-path squash bursts consume
/// sequence numbers while an old instruction blocks at the ROB head. The
/// spread is workload-dependent, so the table rebuilds itself at double
/// capacity whenever an insert would alias a live instruction — amortised
/// O(1), and after warm-up the steady state never grows again.
#[derive(Debug)]
pub struct InFlightTable {
    slots: Box<[Option<InFlight>]>,
    mask: u64,
    live: usize,
}

/// Growth ceiling: a table this large means instructions leak (they are
/// inserted but never committed or squashed), which is a simulator bug.
const INFLIGHT_CAP_CEILING: usize = 1 << 24;

impl InFlightTable {
    /// A table able to hold an in-flight sequence spread of at least
    /// `window` (rounded up to a power of two, minimum 256). The table
    /// grows automatically if the workload's spread turns out larger.
    pub fn with_window(window: usize) -> Self {
        let cap = window.next_power_of_two().max(256);
        InFlightTable {
            slots: (0..cap).map(|_| None).collect(),
            mask: cap as u64 - 1,
            live: 0,
        }
    }

    #[inline]
    fn idx(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no instructions are in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts an instruction under its own sequence number, growing the
    /// table if the sequence spread exceeds the current capacity.
    ///
    /// # Panics
    ///
    /// Panics if growth passes `INFLIGHT_CAP_CEILING` (2²⁴ slots) —
    /// instructions are leaking, which indicates a simulator bug, never a
    /// user error.
    pub fn insert(&mut self, inf: InFlight) {
        let i = self.idx(inf.seq);
        if self.slots[i].is_some() {
            self.grow_for(inf);
            return;
        }
        self.slots[i] = Some(inf);
        self.live += 1;
    }

    /// Rebuilds at the smallest doubled capacity where every live sequence
    /// number (plus the pending insert) maps to a distinct slot.
    #[cold]
    fn grow_for(&mut self, pending: InFlight) {
        let mut entries: Vec<InFlight> = self.slots.iter_mut().filter_map(|s| s.take()).collect();
        entries.push(pending);
        let mut cap = self.slots.len();
        loop {
            cap *= 2;
            assert!(
                cap <= INFLIGHT_CAP_CEILING,
                "in-flight table grew past {INFLIGHT_CAP_CEILING} slots: instruction leak"
            );
            let mask = cap as u64 - 1;
            let mut used = vec![false; cap];
            if entries.iter().all(|e| {
                let i = (e.seq & mask) as usize;
                !std::mem::replace(&mut used[i], true)
            }) {
                let mut slots: Box<[Option<InFlight>]> = (0..cap).map(|_| None).collect();
                self.live = entries.len();
                for e in entries {
                    let i = (e.seq & mask) as usize;
                    slots[i] = Some(e);
                }
                self.slots = slots;
                self.mask = mask;
                return;
            }
        }
    }

    /// The live instruction with this sequence number, if any.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&InFlight> {
        self.slots[self.idx(seq)].as_ref().filter(|i| i.seq == seq)
    }

    /// Mutable access to the live instruction with this sequence number.
    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut InFlight> {
        let i = self.idx(seq);
        self.slots[i].as_mut().filter(|inf| inf.seq == seq)
    }

    /// Removes and returns the instruction, if live.
    pub fn remove(&mut self, seq: u64) -> Option<InFlight> {
        let i = self.idx(seq);
        match &self.slots[i] {
            Some(inf) if inf.seq == seq => {
                self.live -= 1;
                self.slots[i].take()
            }
            _ => None,
        }
    }

    /// Removes every live instruction with `seq` in `(older_than, upto)`
    /// (exclusive / exclusive) — the squash shape: everything younger than
    /// the mispredicted branch, bounded by the next unallocated sequence.
    pub fn remove_younger(&mut self, older_than: u64, upto: u64) {
        for seq in older_than + 1..upto {
            self.remove(seq);
        }
    }
}

/// A fetch-redirect message (mispredicted branch resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirect {
    /// Sequence number of the mispredicted branch.
    pub branch_seq: u64,
    /// PC fetch must resume from.
    pub target_pc: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(seq: u64) -> InFlight {
        InFlight {
            seq,
            pc: seq * 4,
            op: OpClass::IntAlu,
            wrong_path: false,
            arch_dst: None,
            arch_srcs: [None, None],
            dst: None,
            srcs: SrcTags::new(),
            mem_addr: None,
            branch: None,
            completed: false,
            fetched_at: Time::ZERO,
            fifo_time: Time::ZERO,
            is_exit: false,
        }
    }

    #[test]
    fn inflight_table_round_trips() {
        let mut t = InFlightTable::with_window(8);
        assert!(t.is_empty());
        t.insert(dummy(5));
        t.insert(dummy(6));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(5).map(|i| i.pc), Some(20));
        assert!(t.get(7).is_none());
        t.get_mut(6).unwrap().completed = true;
        assert!(t.get(6).unwrap().completed);
        assert_eq!(t.remove(5).map(|i| i.seq), Some(5));
        assert_eq!(t.remove(5).map(|i| i.seq), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn inflight_table_grows_on_sequence_spread() {
        let mut t = InFlightTable::with_window(8);
        let initial_cap = t.capacity();
        // Two live seqs whose spread exceeds any initial capacity.
        t.insert(dummy(1));
        t.insert(dummy(1 + initial_cap as u64)); // aliases slot of seq 1
        assert!(t.capacity() > initial_cap);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).map(|i| i.seq), Some(1));
        assert_eq!(
            t.get(1 + initial_cap as u64).map(|i| i.seq),
            Some(1 + initial_cap as u64)
        );
    }

    #[test]
    fn inflight_table_remove_younger_squashes_range() {
        let mut t = InFlightTable::with_window(8);
        for seq in 0..10 {
            t.insert(dummy(seq));
        }
        t.remove_younger(3, 10);
        assert_eq!(t.len(), 4);
        assert!(t.get(3).is_some());
        assert!(t.get(4).is_none());
        assert!(t.get(9).is_none());
    }

    #[test]
    fn tag_round_trips_both_classes() {
        let int_tag = Tag::new(PhysReg(37), false);
        assert!(!int_tag.is_fp());
        assert_eq!(int_tag.phys(), PhysReg(37));
        assert_eq!(int_tag.index(), 37);
        let fp_tag = Tag::new(PhysReg(37), true);
        assert!(fp_tag.is_fp());
        assert_eq!(fp_tag.phys(), PhysReg(37));
        assert_eq!(fp_tag.index(), 512 + 37);
        assert_ne!(int_tag, fp_tag);
    }

    #[test]
    fn iq_tags_stay_distinct_across_classes() {
        let a = Tag::new(PhysReg(5), false).as_iq_tag();
        let b = Tag::new(PhysReg(5), true).as_iq_tag();
        assert_ne!(a, b);
    }

    #[test]
    fn src_tags_hold_up_to_two() {
        let mut s = SrcTags::new();
        assert!(s.is_empty());
        s.push(Tag(3));
        s.push(Tag(700));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Tag(3), Tag(700)]);
        let collected: SrcTags = [Tag(1), Tag(2)].into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn src_tags_reject_a_third_source() {
        let mut s = SrcTags::new();
        s.push(Tag(1));
        s.push(Tag(2));
        s.push(Tag(3));
    }
}
