//! Processor configuration: clocking style, microarchitecture, energy
//! parameters and per-domain voltage/frequency scaling.

use gals_clocks::{ClockSpec, Domain, PausibleClockModel, PausibleModel, VoltageScaling};
use gals_events::Time;
use gals_power::EnergyParams;
use gals_uarch::UarchConfig;

/// Clocking style of a simulated processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clocking {
    /// The base machine: one clock drives all five regions; communication
    /// uses ordinary pipeline latches and the global clock grid burns power
    /// every cycle.
    Synchronous(ClockSpec),
    /// The GALS machine: five independent local clocks (period *and* phase),
    /// mixed-clock FIFOs on every domain crossing, no global grid.
    Gals([ClockSpec; 5]),
    /// The pausible-clock machine of the paper's section-3.2 ablation: five
    /// independent local clocks as in [`Clocking::Gals`], but domain
    /// crossings synchronise by *stretching both participating clocks* for
    /// one arbiter handshake instead of buffering through mixed-clock
    /// FIFOs. Channels behave as plain latches with no synchronisation
    /// delay; every inter-domain transfer delays the next edge of the
    /// producer's and consumer's clocks by the model's handshake time.
    ///
    /// The `transfer` field selects the capacity model of the crossings:
    /// [`PausibleModel::Latched`] keeps full latch capacity (only the
    /// handshake timing is charged), [`PausibleModel::Rendezvous`] strips
    /// every crossing to a single-entry rendezvous port, so producers
    /// block — park-and-retry, woken by the consuming pop — while a port
    /// is occupied, charging the capacity cost of unbuffered handshakes
    /// too (reported per domain in `SimReport::rendezvous_blocked`).
    Pausible {
        /// The five local clocks, indexed by [`Domain::index`].
        clocks: [ClockSpec; 5],
        /// Handshake timing of the pausible interface.
        model: PausibleClockModel,
        /// Capacity model of the inter-domain crossings.
        transfer: PausibleModel,
    },
}

impl Clocking {
    /// The clock of a domain (in the synchronous machine, every domain
    /// shares the single clock).
    pub fn domain_clock(&self, domain: Domain) -> ClockSpec {
        match self {
            Clocking::Synchronous(c) => *c,
            Clocking::Gals(clocks) | Clocking::Pausible { clocks, .. } => clocks[domain.index()],
        }
    }

    /// True for the single-clock base machine (the only variant with a
    /// global clock grid).
    pub fn is_synchronous(&self) -> bool {
        matches!(self, Clocking::Synchronous(_))
    }

    /// True for the GALS (mixed-clock FIFO) variant.
    pub fn is_gals(&self) -> bool {
        matches!(self, Clocking::Gals(_))
    }

    /// True for the pausible-clock variant.
    pub fn is_pausible(&self) -> bool {
        matches!(self, Clocking::Pausible { .. })
    }

    /// The slowest domain period (used for watchdogs and normalisation).
    pub fn max_period(&self) -> Time {
        match self {
            Clocking::Synchronous(c) => c.period,
            Clocking::Gals(clocks) | Clocking::Pausible { clocks, .. } => {
                clocks.iter().map(|c| c.period).max().expect("five clocks")
            }
        }
    }
}

/// A per-domain slowdown plan with the supply voltage tracking the clock
/// (the paper's multiple-clock, multiple-voltage experiments).
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsPlan {
    /// Slowdown factor per domain (1.0 = nominal), indexed by
    /// [`Domain::index`].
    pub slowdown: [f64; 5],
    /// The voltage/delay law used to derive per-domain energy factors.
    pub tech: VoltageScaling,
}

impl Default for DvfsPlan {
    fn default() -> Self {
        DvfsPlan {
            slowdown: [1.0; 5],
            tech: VoltageScaling::cmos_013um(),
        }
    }
}

impl DvfsPlan {
    /// A plan with no scaling.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// Sets one domain's slowdown (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    #[must_use]
    pub fn with_slowdown(mut self, domain: Domain, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown must be >= 1, got {factor}");
        self.slowdown[domain.index()] = factor;
        self
    }

    /// Dynamic-energy factor of one domain under ideal voltage tracking.
    pub fn energy_factor(&self, domain: Domain) -> f64 {
        self.tech
            .energy_factor_for_slowdown(self.slowdown[domain.index()])
    }

    /// True when any domain is scaled.
    pub fn is_active(&self) -> bool {
        self.slowdown.iter().any(|&s| s != 1.0)
    }
}

/// Full configuration of one simulated processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorConfig {
    /// Clocking style.
    pub clocking: Clocking,
    /// Microarchitecture (paper Table 3 defaults).
    pub uarch: UarchConfig,
    /// Energy parameters.
    pub energy: EnergyParams,
    /// Capacity of the inter-domain dataflow channels (fetch->decode,
    /// dispatch, completion).
    pub channel_capacity: usize,
    /// Capacity of wakeup/redirect side channels (sized generously; the
    /// bypass network is not a real queue).
    pub side_channel_capacity: usize,
    /// FIFO forward-synchronisation delay in *consumer periods* (the
    /// empty-flag synchroniser depth; 1.0 models the Chelcea–Nowick
    /// low-latency design).
    pub fifo_sync_periods: f64,
    /// Per-domain DVFS plan (applies per domain to the GALS and pausible
    /// machines; for the synchronous machine only a uniform plan is
    /// meaningful).
    pub dvfs: DvfsPlan,
    /// Pausible clocking only: coalesce the wakeup broadcasts of one
    /// writeback cycle into a single handshake per domain crossing instead
    /// of one per destination tag. Softens the pausible penalty (the
    /// ROADMAP follow-up to the section-3.2 ablation); `false` reproduces
    /// the paper's one-handshake-per-transaction machine. The tags still
    /// travel individually — only the clock-stretch charge is shared.
    pub coalesce_wakeup_stretch: bool,
    /// Producer-side cross-cluster wakeup filter: destination tags are
    /// broadcast only to remote clusters that renamed a consumer of the tag
    /// before the producer's writeback; consumers renamed later read the
    /// committed value through the rename-time busy-bit check instead (see
    /// the dependence-filter notes in `pipeline.rs`). Cuts the two
    /// per-instruction remote wakeup channel ops the paper's machine wastes
    /// when dependents are cluster-local. `false` reproduces the paper's
    /// broadcast-to-everyone design.
    pub cross_cluster_wakeup_filter: bool,
}

impl ProcessorConfig {
    /// The paper's base machine at 1 GHz.
    pub fn synchronous_1ghz() -> Self {
        ProcessorConfig {
            clocking: Clocking::Synchronous(ClockSpec::from_ghz(1.0)),
            uarch: UarchConfig::default(),
            energy: EnergyParams::default(),
            channel_capacity: 12,
            side_channel_capacity: 256,
            fifo_sync_periods: 1.25,
            dvfs: DvfsPlan::nominal(),
            coalesce_wakeup_stretch: false,
            cross_cluster_wakeup_filter: false,
        }
    }

    /// The paper's first GALS experiment: all five clocks at 1 GHz, each
    /// with an independent pseudo-random phase derived from `phase_seed`
    /// ("the starting phase of each clock was set to a random value at
    /// runtime").
    pub fn gals_equal_1ghz(phase_seed: u64) -> Self {
        let base = ClockSpec::from_ghz(1.0);
        let clocks: [ClockSpec; 5] =
            std::array::from_fn(|i| base.with_random_phase(phase_seed, i as u64 + 1));
        ProcessorConfig {
            clocking: Clocking::Gals(clocks),
            ..Self::synchronous_1ghz()
        }
    }

    /// The pausible-clock ablation machine: the same five 1 GHz clocks and
    /// pseudo-random phases as [`ProcessorConfig::gals_equal_1ghz`] (taken
    /// from it directly, so paired head-to-head comparisons share phases by
    /// construction), with a conservative 300 ps handshake (arbitration +
    /// data transfer against a 1 ns cycle) stretched into both endpoint
    /// clocks on every domain crossing.
    pub fn pausible_equal_1ghz(phase_seed: u64) -> Self {
        let gals = Self::gals_equal_1ghz(phase_seed);
        let Clocking::Gals(clocks) = gals.clocking else {
            unreachable!("gals_equal_1ghz builds a GALS clocking")
        };
        ProcessorConfig {
            clocking: Clocking::Pausible {
                clocks,
                model: PausibleClockModel::new(Time::from_ps(300)),
                transfer: PausibleModel::Latched,
            },
            ..gals
        }
    }

    /// The rendezvous (unbuffered) pausible machine: exactly
    /// [`ProcessorConfig::pausible_equal_1ghz`], but every inter-domain
    /// crossing is a single-entry rendezvous port instead of a latch —
    /// producers block until the consumer pops, charging the *capacity*
    /// cost of pausible handshakes on top of their timing cost.
    pub fn pausible_rendezvous_1ghz(phase_seed: u64) -> Self {
        Self::pausible_equal_1ghz(phase_seed).with_pausible_model(PausibleModel::Rendezvous)
    }

    /// Sets the pausible transfer-capacity model (builder style) — the
    /// latched-vs-rendezvous axis of the section-3.2 comparison.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not pausible: the transfer model is
    /// a property of the pausible interface, so setting it on a FIFO or
    /// synchronous machine would silently measure nothing.
    #[must_use]
    pub fn with_pausible_model(mut self, transfer: PausibleModel) -> Self {
        match &mut self.clocking {
            Clocking::Pausible { transfer: t, .. } => {
                *t = transfer;
                self
            }
            other => panic!("transfer model only applies to pausible clocking, not {other:?}"),
        }
    }

    /// Sets the pausible-interface handshake duration (builder style) —
    /// the independent variable of the handshake-duration sweep.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not pausible: the handshake is a
    /// property of the pausible arbiter, so setting it on a FIFO or
    /// synchronous machine would silently measure nothing.
    #[must_use]
    pub fn with_pausible_handshake(mut self, handshake: Time) -> Self {
        match &mut self.clocking {
            Clocking::Pausible { model, .. } => {
                *model = PausibleClockModel::new(handshake);
                self
            }
            other => panic!("handshake duration only applies to pausible clocking, not {other:?}"),
        }
    }

    /// Enables/disables one-handshake-per-cycle wakeup coalescing (builder
    /// style; meaningful only under pausible clocking).
    #[must_use]
    pub fn with_wakeup_coalescing(mut self, on: bool) -> Self {
        self.coalesce_wakeup_stretch = on;
        self
    }

    /// Enables/disables the producer-side cross-cluster wakeup filter
    /// (builder style).
    #[must_use]
    pub fn with_wakeup_filter(mut self, on: bool) -> Self {
        self.cross_cluster_wakeup_filter = on;
        self
    }

    /// Applies a DVFS plan: GALS domain clocks are slowed per the plan and
    /// supply-voltage energy factors are configured to match.
    ///
    /// # Panics
    ///
    /// Panics if called on a synchronous configuration with a non-uniform
    /// plan (a single clock cannot be split).
    #[must_use]
    pub fn with_dvfs(mut self, plan: DvfsPlan) -> Self {
        match &mut self.clocking {
            Clocking::Gals(clocks) | Clocking::Pausible { clocks, .. } => {
                for d in Domain::ALL {
                    let i = d.index();
                    *clocks.get_mut(i).expect("five clocks") = clocks[i].slowed(plan.slowdown[i]);
                }
            }
            Clocking::Synchronous(clock) => {
                let s = plan.slowdown[0];
                assert!(
                    plan.slowdown.iter().all(|&x| x == s),
                    "a synchronous machine cannot scale domains independently"
                );
                *clock = clock.slowed(s);
            }
        }
        self.dvfs = plan;
        self
    }

    /// A canonical string capturing everything about this configuration
    /// that can affect simulation output — the processor-config
    /// contribution to the sweep harness's `RunKey` content hash.
    ///
    /// Built on the derived `Debug` rendering (complete by construction:
    /// every field participates, including clock periods and phases,
    /// handshake duration, transfer model, microarchitecture and energy
    /// parameters), prefixed with an identity-format version tag. Any
    /// semantic change to a config therefore changes the identity; a
    /// field *rename* changes it too, which over-invalidates caches — the
    /// safe direction. Silent under-invalidation is impossible because
    /// `Debug` is derived and exhaustive.
    pub fn stable_identity(&self) -> String {
        format!("pcfg-v1|{self:?}")
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found in the microarchitecture,
    /// energy parameters or channel sizing.
    pub fn validate(&self) -> Result<(), String> {
        self.uarch.validate()?;
        self.energy.validate()?;
        if self.channel_capacity < 2 {
            return Err("channel capacity must be at least 2".into());
        }
        if self.side_channel_capacity < 16 {
            return Err("side channels must hold at least 16 messages".into());
        }
        if !(0.0..=8.0).contains(&self.fifo_sync_periods) {
            return Err(format!(
                "fifo_sync_periods {} outside [0, 8]",
                self.fifo_sync_periods
            ));
        }
        Ok(())
    }
}

/// Bounds on a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    /// Stop after committing this many instructions (or at program exit,
    /// whichever is first).
    pub max_insts: u64,
    /// End the run with [`SimError::Deadlock`](crate::SimError) if no
    /// instruction commits for this many slow-domain periods — a deadlock
    /// watchdog; `0` disables it.
    pub watchdog_cycles: u64,
    /// Deterministic fault injection (chaos mode), for exercising the
    /// failure-handling layer end-to-end. Compiled in only with the
    /// `chaos` feature; defaults to no faults, under which the simulation
    /// is bit-identical to a build without the feature.
    #[cfg(feature = "chaos")]
    pub chaos: ChaosFaults,
}

/// Chaos-mode fault plan carried by [`SimLimits`] (feature `chaos`).
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosFaults {
    /// Withhold the writeback of every instruction with a sequence number
    /// at or past this one: the first correct-path instruction past the
    /// threshold never completes, commit wedges behind it, and the
    /// deadlock layer must surface a structured report. (A `>=` threshold
    /// rather than an exact seq match, so the wedge cannot be defused by
    /// the targeted seq landing on a squashed wrong path.) `None` injects
    /// nothing.
    pub withhold_writeback: Option<u64>,
}

impl Default for SimLimits {
    fn default() -> Self {
        Self::insts(100_000)
    }
}

impl SimLimits {
    /// Limits with the given committed-instruction budget and the default
    /// watchdog window.
    pub const fn insts(max_insts: u64) -> Self {
        SimLimits {
            max_insts,
            watchdog_cycles: 200_000,
            #[cfg(feature = "chaos")]
            chaos: ChaosFaults {
                withhold_writeback: None,
            },
        }
    }

    /// Same limits with the watchdog window replaced (`0` disables it).
    pub const fn with_watchdog_cycles(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_config_validates() {
        let c = ProcessorConfig::synchronous_1ghz();
        c.validate().unwrap();
        assert!(!c.clocking.is_gals());
        assert_eq!(
            c.clocking.domain_clock(Domain::Fetch).period,
            Time::from_ns(1)
        );
    }

    #[test]
    fn gals_phases_are_random_but_reproducible() {
        let a = ProcessorConfig::gals_equal_1ghz(7);
        let b = ProcessorConfig::gals_equal_1ghz(7);
        assert_eq!(a.clocking, b.clocking);
        let c = ProcessorConfig::gals_equal_1ghz(8);
        assert_ne!(a.clocking, c.clocking);
        if let Clocking::Gals(clocks) = &a.clocking {
            let phases: std::collections::HashSet<u64> =
                clocks.iter().map(|c| c.phase.as_fs()).collect();
            assert!(phases.len() >= 4, "phases should differ across domains");
            for c in clocks {
                assert_eq!(c.period, Time::from_ns(1));
            }
        }
    }

    #[test]
    fn dvfs_plan_slows_clocks_and_scales_energy() {
        let plan = DvfsPlan::nominal().with_slowdown(Domain::FpCluster, 2.0);
        let cfg = ProcessorConfig::gals_equal_1ghz(1).with_dvfs(plan.clone());
        if let Clocking::Gals(clocks) = &cfg.clocking {
            assert_eq!(clocks[Domain::FpCluster.index()].period, Time::from_ns(2));
            assert_eq!(clocks[Domain::Fetch.index()].period, Time::from_ns(1));
        }
        assert!(plan.energy_factor(Domain::FpCluster) < 1.0);
        assert_eq!(plan.energy_factor(Domain::Fetch), 1.0);
        assert!(plan.is_active());
    }

    #[test]
    fn uniform_dvfs_on_synchronous_machine() {
        let mut plan = DvfsPlan::nominal();
        plan.slowdown = [1.5; 5];
        let cfg = ProcessorConfig::synchronous_1ghz().with_dvfs(plan);
        if let Clocking::Synchronous(c) = &cfg.clocking {
            assert_eq!(c.period, Time::from_fs(1_500_000));
        }
    }

    #[test]
    #[should_panic(expected = "independently")]
    fn non_uniform_dvfs_on_sync_panics() {
        let plan = DvfsPlan::nominal().with_slowdown(Domain::FpCluster, 2.0);
        let _ = ProcessorConfig::synchronous_1ghz().with_dvfs(plan);
    }

    #[test]
    fn pausible_config_validates_and_matches_gals_clocks() {
        let p = ProcessorConfig::pausible_equal_1ghz(7);
        p.validate().unwrap();
        assert!(p.clocking.is_pausible());
        assert!(!p.clocking.is_gals());
        assert!(!p.clocking.is_synchronous());
        let g = ProcessorConfig::gals_equal_1ghz(7);
        for d in Domain::ALL {
            // Same phases as the GALS machine for paired comparisons.
            assert_eq!(p.clocking.domain_clock(d), g.clocking.domain_clock(d));
        }
        assert_eq!(p.clocking.max_period(), Time::from_ns(1));
    }

    #[test]
    fn dvfs_slows_pausible_clocks_per_domain() {
        let plan = DvfsPlan::nominal().with_slowdown(Domain::MemCluster, 2.0);
        let cfg = ProcessorConfig::pausible_equal_1ghz(1).with_dvfs(plan);
        if let Clocking::Pausible { clocks, model, .. } = &cfg.clocking {
            assert_eq!(clocks[Domain::MemCluster.index()].period, Time::from_ns(2));
            assert_eq!(clocks[Domain::Fetch.index()].period, Time::from_ns(1));
            assert_eq!(model.handshake, Time::from_ps(300));
        } else {
            panic!("pausible clocking expected");
        }
    }

    #[test]
    fn pausible_transfer_model_defaults_latched_and_builds_rendezvous() {
        let latched = ProcessorConfig::pausible_equal_1ghz(7);
        let Clocking::Pausible { transfer, .. } = latched.clocking else {
            panic!("pausible clocking expected");
        };
        assert_eq!(transfer, PausibleModel::Latched);

        let rdv = ProcessorConfig::pausible_rendezvous_1ghz(7);
        rdv.validate().unwrap();
        let Clocking::Pausible {
            clocks,
            model,
            transfer,
        } = rdv.clocking
        else {
            panic!("pausible clocking expected");
        };
        assert_eq!(transfer, PausibleModel::Rendezvous);
        // Everything except the transfer model matches the latched machine
        // (paired comparisons share clocks, phases and handshake).
        let Clocking::Pausible {
            clocks: lclocks,
            model: lmodel,
            ..
        } = latched.clocking
        else {
            unreachable!()
        };
        assert_eq!(clocks, lclocks);
        assert_eq!(model, lmodel);
    }

    #[test]
    #[should_panic(expected = "pausible")]
    fn transfer_model_builder_rejects_fifo_gals() {
        let _ = ProcessorConfig::gals_equal_1ghz(1).with_pausible_model(PausibleModel::Rendezvous);
    }

    #[test]
    fn handshake_builder_sets_the_pausible_model() {
        let cfg =
            ProcessorConfig::pausible_equal_1ghz(1).with_pausible_handshake(Time::from_ps(150));
        if let Clocking::Pausible { model, .. } = &cfg.clocking {
            assert_eq!(model.handshake, Time::from_ps(150));
        } else {
            panic!("pausible clocking expected");
        }
    }

    #[test]
    #[should_panic(expected = "pausible")]
    fn handshake_builder_rejects_fifo_gals() {
        let _ = ProcessorConfig::gals_equal_1ghz(1).with_pausible_handshake(Time::from_ps(150));
    }

    #[test]
    fn wakeup_feature_flags_default_off() {
        for cfg in [
            ProcessorConfig::synchronous_1ghz(),
            ProcessorConfig::gals_equal_1ghz(1),
            ProcessorConfig::pausible_equal_1ghz(1),
        ] {
            assert!(
                !cfg.coalesce_wakeup_stretch,
                "paper machine has no coalescing"
            );
            assert!(
                !cfg.cross_cluster_wakeup_filter,
                "paper machine broadcasts everywhere"
            );
        }
        let cfg = ProcessorConfig::gals_equal_1ghz(1)
            .with_wakeup_filter(true)
            .with_wakeup_coalescing(true);
        assert!(cfg.cross_cluster_wakeup_filter);
        assert!(cfg.coalesce_wakeup_stretch);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_channel_sizes() {
        let mut c = ProcessorConfig::synchronous_1ghz();
        c.channel_capacity = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stable_identity_separates_semantic_points_and_repeats_exactly() {
        let base = ProcessorConfig::pausible_equal_1ghz(7);
        assert_eq!(base.stable_identity(), base.stable_identity());
        assert!(base.stable_identity().starts_with("pcfg-v1|"));
        // Every semantic axis must perturb the identity.
        for other in [
            ProcessorConfig::synchronous_1ghz(),
            ProcessorConfig::gals_equal_1ghz(7),
            ProcessorConfig::pausible_equal_1ghz(8),
            ProcessorConfig::pausible_rendezvous_1ghz(7),
            ProcessorConfig::pausible_equal_1ghz(7).with_pausible_handshake(Time::from_ps(999)),
            ProcessorConfig::pausible_equal_1ghz(7).with_wakeup_filter(true),
        ] {
            assert_ne!(base.stable_identity(), other.stable_identity());
        }
    }
}
