//! Application-driven DVFS planning from an offline profile — the
//! direction the paper closes with ("eventually, fine adaptation can be
//! extended to support application-driven, multiple-domain dynamic
//! clock/voltage scaling") and the approach of its closest related work
//! (Semeraro et al., HPCA 2002: off-line profiling of the application).
//!
//! [`DvfsAdvisor`] takes the [`SimReport`] of a profiling run on the plain
//! GALS machine, estimates each domain's *utilisation headroom*, and
//! proposes a [`DvfsPlan`] that slows under-used domains while capping the
//! expected performance impact.

use gals_clocks::Domain;

use crate::config::DvfsPlan;
use crate::report::SimReport;

/// Tuning knobs for the advisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvisorConfig {
    /// A domain below this utilisation is a slowdown candidate.
    pub idle_threshold: f64,
    /// Largest slowdown the advisor will ever propose for one domain.
    pub max_slowdown: f64,
    /// Safety margin: the proposed slowdown keeps estimated post-scaling
    /// utilisation below this value.
    pub target_utilisation: f64,
}

impl Default for AdvisorConfig {
    /// Conservative defaults: only domains that are genuinely close to
    /// dead get slowed. Issue-bandwidth utilisation *understates*
    /// criticality — a cluster issuing 1.3/cycle on a 4-wide port is only
    /// "33% utilised" yet sits squarely on the dependency critical path —
    /// so the idle threshold is deliberately low.
    fn default() -> Self {
        AdvisorConfig {
            idle_threshold: 0.05,
            max_slowdown: 3.0,
            target_utilisation: 0.06,
        }
    }
}

/// Per-domain utilisation estimates extracted from a profiling report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainUtilisation {
    /// Estimated busy fraction per domain, indexed by [`Domain::index`];
    /// in `[0, 1]`.
    pub busy: [f64; 5],
}

impl DomainUtilisation {
    /// Extracts utilisation estimates from a report.
    ///
    /// The estimates use the same proxies the paper's discussion leans on:
    /// fetch = I-cache accesses per fetch cycle; decode = commit bandwidth;
    /// clusters = issue-queue issue bandwidth over the cluster's width
    /// (4 int / 4 fp ALUs, 2 memory ports in the default configuration).
    pub fn from_report(report: &SimReport) -> Self {
        let cyc = |d: Domain| report.domain_cycles[d.index()].max(1) as f64;
        let busy = [
            // Fetch: I-cache activity per cycle.
            (report.icache.accesses as f64 / cyc(Domain::Fetch)).min(1.0),
            // Decode/commit: committed per cycle over the 4-wide commit.
            (report.committed as f64 / (4.0 * cyc(Domain::Decode))).min(1.0),
            // Clusters: issued per cycle over issue width 4.
            (report.iq[0].issued as f64 / (4.0 * cyc(Domain::IntCluster))).min(1.0),
            (report.iq[1].issued as f64 / (4.0 * cyc(Domain::FpCluster))).min(1.0),
            (report.iq[2].issued as f64 / (4.0 * cyc(Domain::MemCluster))).min(1.0),
        ];
        DomainUtilisation { busy }
    }

    /// Utilisation of one domain.
    pub fn of(&self, domain: Domain) -> f64 {
        self.busy[domain.index()]
    }
}

/// Plans per-domain slowdowns from profiling data.
#[derive(Debug, Clone, Default)]
pub struct DvfsAdvisor {
    config: AdvisorConfig,
}

impl DvfsAdvisor {
    /// An advisor with default tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// An advisor with explicit tuning.
    pub fn with_config(config: AdvisorConfig) -> Self {
        DvfsAdvisor { config }
    }

    /// Proposes a plan from a profiling run's report.
    ///
    /// Domains whose utilisation is under the idle threshold are slowed so
    /// that their *post-scaling* utilisation stays below the target; busy
    /// domains (and the decode/commit domain, which gates retirement) are
    /// left at nominal speed.
    pub fn recommend(&self, report: &SimReport) -> DvfsPlan {
        let util = DomainUtilisation::from_report(report);
        let mut plan = DvfsPlan::nominal();
        for d in [
            Domain::Fetch,
            Domain::IntCluster,
            Domain::FpCluster,
            Domain::MemCluster,
        ] {
            let u = util.of(d);
            // The memory domain serves latency-critical loads: even at low
            // *bandwidth* utilisation every cycle added to a load lengthens
            // dependence chains (the paper's Figure 12 shows exactly this
            // on ijpeg). Demand a much stronger idleness signal there.
            let threshold = if d == Domain::MemCluster {
                self.config.idle_threshold * 0.4
            } else {
                self.config.idle_threshold
            };
            if u < threshold {
                // Slowing by s multiplies utilisation by ~s; keep below the
                // target with headroom.
                let s = (self.config.target_utilisation / u.max(0.01))
                    .clamp(1.0, self.config.max_slowdown);
                // Quantise to the paper's factor vocabulary for realism
                // (real clock generators offer discrete ratios).
                let s = [1.0, 1.1, 1.2, 1.5, 2.0, 3.0]
                    .into_iter()
                    .rev()
                    .find(|&q| q <= s)
                    .unwrap_or(1.0);
                if s > 1.0 {
                    plan = plan.with_slowdown(d, s);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_events::Time;
    use gals_power::EnergyBreakdown;
    use gals_uarch::{BpredStats, CacheStats, IssueQueueStats};

    /// A hand-built report with controlled utilisation figures.
    fn report_with(iq_issued: [u64; 3], icache_accesses: u64) -> SimReport {
        let cycles = 10_000u64;
        let mk_iq = |issued| IssueQueueStats {
            inserted: issued,
            issued,
            ..Default::default()
        };
        SimReport {
            committed: 12_000,
            fetched: 14_000,
            wrong_path_fetched: 1_000,
            exec_time: Time::from_ns(10_000),
            domain_cycles: [cycles; 5],
            slip_total: Time::from_ns(120_000),
            slip_fifo: Time::from_ns(30_000),
            bpred: BpredStats::default(),
            icache: CacheStats {
                accesses: icache_accesses,
                misses: 0,
                fills: 0,
            },
            dcache: CacheStats::default(),
            l2: CacheStats::default(),
            iq: [
                mk_iq(iq_issued[0]),
                mk_iq(iq_issued[1]),
                mk_iq(iq_issued[2]),
            ],
            rob_mean_occupancy: 20.0,
            rat_mean_occupancy: 14.0,
            rat_peak_occupancy: 30,
            store_forwards: 0,
            issued: 13_000,
            issued_wrong_path: 500,
            channel_ops: 50_000,
            stretches: [0; 5],
            stretch_time: [Time::ZERO; 5],
            rendezvous_blocked: [0; 5],
            energy: EnergyBreakdown {
                blocks: [0.0; 12],
                global_clock: 0.0,
                local_clocks: [0.0; 5],
            },
        }
    }

    #[test]
    fn idle_fp_domain_gets_slowed_hard() {
        // Integer code: int cluster busy, FP nearly dead.
        let r = report_with([30_000, 100, 12_000], 9_000);
        let plan = DvfsAdvisor::new().recommend(&r);
        assert_eq!(plan.slowdown[Domain::FpCluster.index()], 3.0);
        assert_eq!(plan.slowdown[Domain::IntCluster.index()], 1.0);
    }

    #[test]
    fn busy_domains_stay_nominal() {
        let r = report_with([38_000, 36_000, 19_000], 9_500);
        let plan = DvfsAdvisor::new().recommend(&r);
        assert!(
            !plan.is_active(),
            "fully busy machine needs no scaling: {plan:?}"
        );
    }

    #[test]
    fn moderately_idle_domain_gets_moderate_slowdown() {
        // FP at ~3.75% utilisation: 0.06/0.0375 = 1.6, quantised to 1.5 —
        // a light touch for a lightly used but present unit. Memory at the
        // same bandwidth stays nominal (stricter latency-critical bar).
        let r = report_with([30_000, 1_500, 1_500], 9_000);
        let plan = DvfsAdvisor::new().recommend(&r);
        assert_eq!(plan.slowdown[Domain::FpCluster.index()], 1.5);
        assert_eq!(plan.slowdown[Domain::MemCluster.index()], 1.0);
    }

    #[test]
    fn moderately_used_memory_domain_is_left_alone() {
        // Memory at ~11% bandwidth utilisation: below the generic idle
        // threshold but above the memory-specific one.
        let r = report_with([30_000, 100, 4_500], 9_000);
        let plan = DvfsAdvisor::new().recommend(&r);
        assert_eq!(plan.slowdown[Domain::MemCluster.index()], 1.0);
    }

    #[test]
    fn utilisation_extraction_is_bounded() {
        let r = report_with([200_000, 200_000, 200_000], 200_000);
        let u = DomainUtilisation::from_report(&r);
        for d in Domain::ALL {
            assert!((0.0..=1.0).contains(&u.of(d)), "{d}: {}", u.of(d));
        }
    }

    #[test]
    fn decode_domain_is_never_scaled() {
        let r = report_with([100, 100, 100], 100);
        let plan = DvfsAdvisor::new().recommend(&r);
        assert_eq!(plan.slowdown[Domain::Decode.index()], 1.0);
    }

    #[test]
    fn custom_config_respected() {
        let r = report_with([30_000, 100, 12_000], 9_000);
        let advisor = DvfsAdvisor::with_config(AdvisorConfig {
            max_slowdown: 1.5,
            ..AdvisorConfig::default()
        });
        let plan = advisor.recommend(&r);
        assert!(plan.slowdown[Domain::FpCluster.index()] <= 1.5);
    }
}
