//! Top-level simulation drivers.
//!
//! Two drivers share one pipeline model:
//!
//! * [`simulate`] — the production path. The five domain clocks are purely
//!   periodic, so they run on [`ClockSet`], the static clock-tick scheduler:
//!   no heap, no boxed handlers, no per-edge allocation, and simultaneous
//!   edges (the synchronous machine) coalesce into one batched dispatch.
//!   Domain dispatch is static — a `match` in [`Pipeline::tick`] — instead
//!   of the engine's `Box<dyn FnMut>` indirection.
//! * [`simulate_with_engine`] — the original general-engine path, kept as
//!   the reference implementation (the framework of the paper's section
//!   4.2) and as the differential-testing oracle: both drivers must produce
//!   bit-identical [`SimReport`]s, which `tests/end_to_end.rs` pins.
//!
//! The domain clocks carry distinct priorities (their domain index), so the
//! `(time, priority)` edge order — and therefore every architectural and
//! energy statistic — is identical between the two schedulers.
//!
//! In pausible mode ([`crate::Clocking::Pausible`]) the pipeline emits
//! clock-stretch requests as transfers cross domains; each driver drains
//! them after the tick that produced them and forwards them to its
//! scheduler ([`ClockSet::stretch`] / [`Engine::stretch`]). Both schedulers
//! implement the same strictly-after-now stretch semantics, so the
//! bit-identity contract holds in pausible mode too.

use std::cell::RefCell;
use std::rc::Rc;

use gals_clocks::Domain;
use gals_events::{ClockSet, Control, Engine, EventId, Time};
use gals_isa::Program;

use crate::config::{ProcessorConfig, SimLimits};
use crate::pipeline::Pipeline;
use crate::report::SimReport;

/// Runs one processor over one program and returns the measurements.
///
/// For the synchronous machine the five domain events share one period and
/// phase (one clock); for the GALS machine each domain's event carries its
/// own period and phase ("to simulate clocked systems, we need to insert
/// one event for each clock domain").
///
/// # Examples
///
/// ```
/// use gals_core::{simulate, ProcessorConfig, SimLimits};
/// use gals_workload::micro;
///
/// let program = micro::alu_loop(2_000, 4);
/// let report = simulate(&program, ProcessorConfig::synchronous_1ghz(), SimLimits::insts(5_000));
/// assert_eq!(report.committed, 5_000);
/// assert!(report.insts_per_ns() > 1.0); // superscalar on independent ALU work
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid, or if the deadlock watchdog in
/// [`SimLimits`] fires (which indicates a simulator bug, not a user error).
pub fn simulate(program: &Program, config: ProcessorConfig, limits: SimLimits) -> SimReport {
    let clocking = config.clocking.clone();
    let mut pipeline = Pipeline::new(program, config, limits);
    let mut clocks = ClockSet::new();
    for d in Domain::ALL {
        let clock = clocking.domain_clock(d);
        clocks.add_clock(clock.phase, clock.period, d.index() as i32);
    }
    let mut exec_time = Time::ZERO;
    while !pipeline.done() {
        let Some(t) = clocks.tick_batch_while(|slot, now| {
            pipeline.tick(Domain::ALL[slot], now);
            // Stop mid-batch the moment the run completes, leaving the
            // remaining simultaneous edges undispatched — the same stopping
            // point as the engine's `run_while`.
            !pipeline.done()
        }) else {
            break;
        };
        exec_time = t;
        // Pausible mode: apply the batch's clock-stretch requests. All
        // edges at `t` have dispatched, so each stretch lands on an edge
        // strictly after `t` — the same edge the engine path stretches.
        if let Some(requests) = pipeline.take_stretch_requests() {
            for (slot, extra) in requests.into_iter().enumerate() {
                if extra > Time::ZERO {
                    clocks.stretch(slot, extra);
                }
            }
        }
    }
    pipeline.into_report(exec_time)
}

/// Runs the identical simulation through the general [`Engine`] — the
/// paper's original event-queue framework.
///
/// This is the reference/oracle path: slower (heap + boxed handlers per
/// edge) but able to host aperiodic events alongside the clocks. The
/// production [`simulate`] must match it bit-for-bit on every report field.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_with_engine(
    program: &Program,
    config: ProcessorConfig,
    limits: SimLimits,
) -> SimReport {
    let clocking = config.clocking.clone();
    let mut pipeline = Pipeline::new(program, config, limits);
    let mut engine: Engine<Pipeline<'_>> = Engine::new();
    // Every domain handler needs all five clock ids to forward pausible
    // stretch requests, but ids only exist once scheduled — so they are
    // shared through a cell each closure captures and reads at dispatch
    // time (by which point all five are registered).
    let clock_ids: Rc<RefCell<Vec<EventId>>> = Rc::new(RefCell::new(Vec::with_capacity(5)));
    for d in Domain::ALL {
        let clock = clocking.domain_clock(d);
        let ids = Rc::clone(&clock_ids);
        let id = engine.schedule_periodic(
            clock.phase,
            clock.period,
            d.index() as i32,
            move |p: &mut Pipeline<'_>, e| {
                p.tick(d, e.now());
                // Pausible mode: apply this tick's stretch requests before
                // the next event runs. An edge at the current instant stays
                // unstretched (the engine defers it), matching the batched
                // ClockSet driver, which drains after the whole batch.
                if let Some(requests) = p.take_stretch_requests() {
                    let ids = ids.borrow();
                    for (slot, extra) in requests.into_iter().enumerate() {
                        if extra > Time::ZERO {
                            e.stretch(ids[slot], extra);
                        }
                    }
                }
                if p.done() {
                    Control::Cancel
                } else {
                    Control::Keep
                }
            },
        );
        clock_ids.borrow_mut().push(id);
    }
    engine.run_while(&mut pipeline, |p| !p.done());
    let exec_time = engine.now();
    pipeline.into_report(exec_time)
}
