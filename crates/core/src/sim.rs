//! Top-level simulation driver: clock domains as periodic events on the
//! `gals-events` engine, exactly the framework of the paper's section 4.2.

use gals_clocks::Domain;
use gals_events::{Control, Engine};
use gals_isa::Program;

use crate::config::{ProcessorConfig, SimLimits};
use crate::pipeline::Pipeline;
use crate::report::SimReport;

/// Runs one processor over one program and returns the measurements.
///
/// For the synchronous machine the five domain events share one period and
/// phase (one clock); for the GALS machine each domain's event carries its
/// own period and phase ("to simulate clocked systems, we need to insert
/// one event for each clock domain").
///
/// # Examples
///
/// ```
/// use gals_core::{simulate, ProcessorConfig, SimLimits};
/// use gals_workload::micro;
///
/// let program = micro::alu_loop(2_000, 4);
/// let report = simulate(&program, ProcessorConfig::synchronous_1ghz(), SimLimits::insts(5_000));
/// assert_eq!(report.committed, 5_000);
/// assert!(report.insts_per_ns() > 1.0); // superscalar on independent ALU work
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid, or if the deadlock watchdog in
/// [`SimLimits`] fires (which indicates a simulator bug, not a user error).
pub fn simulate(program: &Program, config: ProcessorConfig, limits: SimLimits) -> SimReport {
    let clocking = config.clocking.clone();
    let mut pipeline = Pipeline::new(program, config, limits);
    let mut engine: Engine<Pipeline<'_>> = Engine::new();
    for d in Domain::ALL {
        let clock = clocking.domain_clock(d);
        engine.schedule_periodic(
            clock.phase,
            clock.period,
            d.index() as i32,
            move |p: &mut Pipeline<'_>, e| {
                p.tick(d, e.now());
                if p.done() {
                    Control::Cancel
                } else {
                    Control::Keep
                }
            },
        );
    }
    engine.run_while(&mut pipeline, |p| !p.done());
    let exec_time = engine.now();
    pipeline.into_report(exec_time)
}
