//! Top-level simulation drivers.
//!
//! Two drivers share one pipeline model:
//!
//! * [`simulate`] — the production path. The five domain clocks are purely
//!   periodic, so they run on [`ClockSet`], the static clock-tick scheduler:
//!   no heap, no boxed handlers, no per-edge allocation. Domain dispatch is
//!   static — a `match` in [`Pipeline::tick`] — instead of the engine's
//!   `Box<dyn FnMut>` indirection. On top of that, the driver runs
//!   **idle-tick elision**: after each tick it asks the pipeline whether
//!   the domain is quiescent ([`Pipeline::quiescent`]) and parks its clock;
//!   a parked clock's edges are skipped entirely until a wake edge
//!   ([`Pipeline::take_wake_mask`]) re-arms it, at which point the elided
//!   edges are back-filled bit-identically by [`Pipeline::replay_idle`].
//!   See the elision contract in `gals_events` for the park/wake rules.
//! * [`simulate_with_engine`] — the original general-engine path, kept as
//!   the reference implementation (the framework of the paper's section
//!   4.2) and as the differential-testing oracle: both drivers must produce
//!   bit-identical [`SimReport`]s, which `tests/end_to_end.rs` pins. The
//!   engine never elides — every elision the fast path performs is checked
//!   against a scheduler that dispatched every edge.
//!
//! The domain clocks carry distinct priorities (their domain index), so the
//! `(time, priority)` edge order — and therefore every architectural and
//! energy statistic — is identical between the two schedulers.
//!
//! In pausible mode ([`crate::Clocking::Pausible`]) the pipeline emits
//! clock-stretch requests as transfers cross domains; each driver drains
//! them after the tick that produced them and forwards them to its
//! scheduler ([`ClockSet::stretch`] / [`Engine::stretch`]). Both schedulers
//! implement the same strictly-after-now stretch semantics, so the
//! bit-identity contract holds in pausible mode too. (An edge pending at
//! the current instant defers its stretch to the next edge in both
//! schedulers, which is why draining after every tick matches the engine.)

use std::cell::RefCell;
use std::rc::Rc;

use gals_clocks::Domain;
use gals_events::{ClockSet, Control, Engine, EventId, Time};
use gals_isa::Program;

use crate::config::{ProcessorConfig, SimLimits};
use crate::error::SimError;
use crate::pipeline::Pipeline;
use crate::report::SimReport;

/// Shared driver prologue: run the static analyzer, refuse error-level
/// findings, and hand back the static verdict (worst warning's code) for
/// the pipeline to stamp into any eventual deadlock report.
fn preflight(config: &ProcessorConfig, limits: &SimLimits) -> Result<Option<String>, SimError> {
    let analysis = crate::analysis::analyze(config, limits);
    if let Some(finding) = analysis.first_error() {
        return Err(SimError::InvalidConfig(Box::new(finding.clone())));
    }
    Ok(analysis.static_verdict().map(|f| f.code.to_string()))
}

/// Runs one processor over one program and returns the measurements.
///
/// For the synchronous machine the five domain events share one period and
/// phase (one clock); for the GALS machine each domain's event carries its
/// own period and phase ("to simulate clocked systems, we need to insert
/// one event for each clock domain").
///
/// # Examples
///
/// ```
/// use gals_core::{simulate, ProcessorConfig, SimLimits};
/// use gals_workload::micro;
///
/// let program = micro::alu_loop(2_000, 4);
/// let report = simulate(&program, ProcessorConfig::synchronous_1ghz(), SimLimits::insts(5_000))
///     .expect("valid config, no deadlock");
/// assert_eq!(report.committed, 5_000);
/// assert!(report.insts_per_ns() > 1.0); // superscalar on independent ALU work
/// ```
///
/// # Errors
///
/// [`SimError::InvalidConfig`] if the configuration fails the static
/// pre-flight analysis ([`crate::analyze`], run before any simulation
/// state is built — the boxed finding carries the stable `GA…` code);
/// [`SimError::Deadlock`] if the machine stops making progress — the
/// commit watchdog in [`SimLimits`] fires, or idle-tick elision parks all
/// five clocks with the run unfinished. The report inside is a
/// deterministic snapshot of the stuck machine, cross-referencing the
/// analyzer's static verdict when the wedge was flagged at submit.
pub fn simulate(
    program: &Program,
    config: ProcessorConfig,
    limits: SimLimits,
) -> Result<SimReport, SimError> {
    let static_finding = preflight(&config, &limits)?;
    let clocking = config.clocking.clone();
    let mut pipeline = Pipeline::new(program, config, limits);
    pipeline.set_static_finding(static_finding);
    let mut clocks = ClockSet::new();
    for d in Domain::ALL {
        let clock = clocking.domain_clock(d);
        clocks.add_clock(clock.phase, clock.period, d.index() as i32);
    }
    // Equal-period machines (the synchronous baseline and the paper's
    // equal-frequency GALS experiments) dispatch on a fixed rotation with
    // no per-edge min-scan; a pausible machine drops back to the general
    // path at its first clock stretch.
    clocks.enable_uniform();
    let mut exec_time = Time::ZERO;
    // The slot whose dispatch ended the run: simultaneous edges ordered
    // after it never fire (the engine's stopping point), which the final
    // parked-clock drain below must respect.
    let mut stop_slot = 0usize;
    // Park debounce: a domain parks after reporting quiescence from two
    // consecutive ticks (the tick itself reports — see
    // `Pipeline::take_quiesced_mask` — so detection costs nothing when
    // busy). One-tick bubbles, where park/unpark costs more than the tick
    // it saves, never park; anything idle longer parks on its second
    // quiet tick.
    const PARK_STREAK: [u8; 5] = [1, 2, 2, 2, 2];
    let mut quiet_streak = [0u8; 5];
    while !pipeline.done() {
        let Some((t, slot)) = clocks.tick() else {
            break;
        };
        exec_time = t;
        stop_slot = slot;
        let domain = Domain::ALL[slot];
        pipeline.tick(domain, t);

        // Fetch-stall fast-forward: a multi-cycle I-cache fill with no
        // redirect possible is a pure countdown — skip the remaining
        // stall edges wholesale and back-fill their (identical) charges.
        if slot == Domain::Fetch.index() {
            let stall = pipeline.fetch_stall_skip();
            if stall > 0 {
                clocks.skip(slot, u64::from(stall));
                pipeline.replay_fetch_stall(stall);
            }
        }

        // Wake edges: unpark any parked domain the tick pushed work to,
        // back-filling its elided edges as bulk idle ticks.
        let mut wakes = pipeline.take_wake_mask();
        while wakes != 0 {
            let w = wakes.trailing_zeros() as usize;
            wakes &= wakes - 1;
            if clocks.is_parked(w) {
                let (elided, next_edge) = clocks.unpark(w, slot);
                pipeline.set_parked(Domain::ALL[w], false);
                pipeline.replay_idle(Domain::ALL[w], elided, next_edge);
            }
        }

        // Pausible mode: apply this tick's stretch requests. An edge
        // pending at the current instant stays unstretched (ClockSet
        // defers it), matching the engine driver's per-event drain.
        if let Some(requests) = pipeline.take_stretch_requests() {
            for (s, extra) in requests.into_iter().enumerate() {
                if extra > Time::ZERO {
                    clocks.stretch(s, extra);
                }
            }
        }

        // Park the domain we just ticked once two consecutive ticks ended
        // quiescent: its edges are elided until a wake edge above re-arms
        // it.
        if pipeline.take_quiesced_mask() & (1 << slot) != 0 {
            quiet_streak[slot] += 1;
            if quiet_streak[slot] >= PARK_STREAK[slot] {
                quiet_streak[slot] = 0;
                clocks.park(slot);
                pipeline.set_parked(domain, true);
                // All five clocks parked with the run unfinished: wakes
                // only come from ticks, so the machine can never advance.
                // Record the deadlock (making `done()` true) and exit.
                if pipeline.all_parked() {
                    pipeline.note_all_parked(exec_time);
                }
            }
        } else {
            quiet_streak[slot] = 0;
        }
    }
    if let Some(report) = pipeline.take_deadlock() {
        return Err(SimError::Deadlock(report));
    }
    // Final drain: domains still parked at the stopping edge replay the
    // idle ticks (and, for clusters, the elided wakeup-tag pops) that the
    // unelided schedule would have dispatched before the stop.
    for d in Domain::ALL {
        let s = d.index();
        if clocks.is_parked(s) {
            pipeline.flush_parked_wakeups(d, exec_time, s < stop_slot);
            let (elided, next_edge) = clocks.drain_parked(s, stop_slot);
            pipeline.set_parked(d, false);
            pipeline.replay_idle(d, elided, next_edge);
        }
    }
    Ok(pipeline.into_report(exec_time))
}

/// Runs the identical simulation through the general [`Engine`] — the
/// paper's original event-queue framework.
///
/// This is the reference/oracle path: slower (heap + boxed handlers per
/// edge) but able to host aperiodic events alongside the clocks. The
/// production [`simulate`] must match it bit-for-bit on every report field.
///
/// # Errors
///
/// Same conditions as [`simulate`]. (A deadlocked run's [`DeadlockReport`]
/// is deterministic per driver but may differ *between* drivers — the
/// engine never parks clocks, so its snapshot can be taken at an earlier
/// edge than the eliding driver's. The bit-identity contract covers
/// successful reports.)
///
/// [`DeadlockReport`]: crate::DeadlockReport
pub fn simulate_with_engine(
    program: &Program,
    config: ProcessorConfig,
    limits: SimLimits,
) -> Result<SimReport, SimError> {
    let static_finding = preflight(&config, &limits)?;
    let clocking = config.clocking.clone();
    let mut pipeline = Pipeline::new(program, config, limits);
    pipeline.set_static_finding(static_finding);
    let mut engine: Engine<Pipeline<'_>> = Engine::new();
    // Every domain handler needs all five clock ids to forward pausible
    // stretch requests, but ids only exist once scheduled — so they are
    // shared through a cell each closure captures and reads at dispatch
    // time (by which point all five are registered).
    let clock_ids: Rc<RefCell<Vec<EventId>>> = Rc::new(RefCell::new(Vec::with_capacity(5)));
    for d in Domain::ALL {
        let clock = clocking.domain_clock(d);
        let ids = Rc::clone(&clock_ids);
        let id = engine.schedule_periodic(
            clock.phase,
            clock.period,
            d.index() as i32,
            move |p: &mut Pipeline<'_>, e| {
                p.tick(d, e.now());
                // Pausible mode: apply this tick's stretch requests before
                // the next event runs. An edge at the current instant stays
                // unstretched (the engine defers it), matching the batched
                // ClockSet driver, which drains after the whole batch.
                if let Some(requests) = p.take_stretch_requests() {
                    let ids = ids.borrow();
                    for (slot, extra) in requests.into_iter().enumerate() {
                        if extra > Time::ZERO {
                            e.stretch(ids[slot], extra);
                        }
                    }
                }
                if p.done() {
                    Control::Cancel
                } else {
                    Control::Keep
                }
            },
        );
        clock_ids.borrow_mut().push(id);
    }
    engine.run_while(&mut pipeline, |p| !p.done());
    let exec_time = engine.now();
    if let Some(report) = pipeline.take_deadlock() {
        return Err(SimError::Deadlock(report));
    }
    Ok(pipeline.into_report(exec_time))
}
