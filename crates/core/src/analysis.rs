//! Static pre-flight analysis of a processor configuration.
//!
//! [`analyze`] runs before any pipeline state is built: it extracts the
//! inter-domain communication graph the config would instantiate
//! ([`comm_graph`] mirrors `Pipeline`'s channel construction exactly) and
//! combines the structural verdict with the scalar parameter checks from
//! [`gals_analysis::checks`]. [`simulate`](crate::simulate) refuses any
//! config with an error-level finding up front
//! ([`SimError::InvalidConfig`](crate::SimError) carries the finding),
//! records the worst surviving warning as the run's *static verdict*, and
//! cross-references that verdict in any later
//! [`DeadlockReport`](crate::DeadlockReport) — so a watchdog-killed run
//! says "this wedge was flagged GA002 at submit" instead of leaving the
//! post-mortem to grep. `sweep --check` uses the same entry point to vet
//! whole matrices without simulating a cycle.

use gals_analysis::{checks, codes, AnalysisReport, CommGraph, Edge, EdgeKind, Finding};
use gals_clocks::{Domain, PausibleModel};

use crate::config::{Clocking, ProcessorConfig, SimLimits};

/// The three execution clusters, in [`Domain::index`] order 2/3/4.
const CLUSTERS: [Domain; 3] = [Domain::IntCluster, Domain::FpCluster, Domain::MemCluster];

/// Extracts the inter-domain communication graph a config instantiates.
///
/// Nodes are the five domains (priority = domain index, as wired into
/// both schedulers); edges mirror `Pipeline`'s channel construction:
/// fetch→decode and dispatch data channels at `channel_capacity`,
/// completion/redirect/wakeup side channels at `side_channel_capacity`
/// drained unconditionally every consumer tick, and — in rendezvous mode
/// — every crossing stripped to a single-entry rendezvous port. Each
/// cluster's completion + redirect + wakeup ports form one *atomic* port
/// group, modeling the all-or-nothing writeback claim
/// (`writeback_ports_free`) that makes the rendezvous machine
/// hold-and-wait free.
pub fn comm_graph(config: &ProcessorConfig) -> CommGraph {
    let rendezvous = matches!(
        &config.clocking,
        Clocking::Pausible {
            transfer: PausibleModel::Rendezvous,
            ..
        }
    );
    let cap = |nominal: usize| if rendezvous { 1 } else { nominal };
    let main = cap(config.channel_capacity);
    let side = cap(config.side_channel_capacity);

    let mut g = CommGraph::new();
    let nodes: [usize; 5] = std::array::from_fn(|i| {
        let d = Domain::ALL[i];
        let clock = config.clocking.domain_clock(d);
        g.add_node(domain_name(d), i as i32, clock.period.as_fs())
    });
    g.entry = Domain::Fetch.index();

    // Dataflow front: fetch→decode, then dispatch into the clusters.
    // These channels back-pressure (the consumer drains them only as its
    // own buffers free up), so they can sustain a wait.
    let fetch = nodes[Domain::Fetch.index()];
    let decode = nodes[Domain::Decode.index()];
    let data = |from: usize, to: usize| Edge {
        from,
        to,
        capacity: main,
        rendezvous,
        drained_unconditionally: false,
        kind: EdgeKind::Data,
        group: None,
    };
    g.add_edge(data(fetch, decode));
    for c in CLUSTERS {
        g.add_edge(data(decode, nodes[c.index()]));
    }
    // Writeback fabric: completion back to decode, redirect back to
    // fetch, and the cross-cluster wakeup mesh. Consumers drain all of
    // these unconditionally every ready cycle, and each cluster claims
    // its full port set atomically per writeback.
    for c in CLUSTERS {
        let grp = g.add_group(format!("writeback({})", domain_name(c)), true);
        let from = nodes[c.index()];
        let mut side_edge = |to: usize, kind| {
            g.add_edge(Edge {
                from,
                to,
                capacity: side,
                rendezvous,
                drained_unconditionally: true,
                kind,
                group: Some(grp),
            });
        };
        side_edge(decode, EdgeKind::Completion);
        side_edge(fetch, EdgeKind::Redirect);
        for other in CLUSTERS {
            if other != c {
                side_edge(nodes[other.index()], EdgeKind::Wakeup);
            }
        }
    }
    g
}

/// Runs the full static analysis of one configuration + run limits.
///
/// Combines the scalar parameter checks (capacities, FIFO synchroniser
/// window, DVFS ranges, budget sanity, uarch/energy validation, and — in
/// chaos builds — armed wedge detection) with the structural graph
/// verification from [`comm_graph`]. The report's finding order is
/// deterministic.
pub fn analyze(config: &ProcessorConfig, limits: &SimLimits) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    // GA010: structural parameter validation, original messages preserved.
    if let Err(msg) = config.uarch.validate() {
        report.push(Finding::error(codes::PARAM_INVALID, msg));
    }
    if let Err(msg) = config.energy.validate() {
        report.push(Finding::error(codes::PARAM_INVALID, msg));
    }
    report.extend(checks::channel_capacities(
        config.channel_capacity,
        config.side_channel_capacity,
    ));
    report.extend(checks::fifo_sync(config.fifo_sync_periods));
    report.extend(checks::dvfs(&config.dvfs.slowdown));
    report.extend(checks::dvfs_uniform_on_sync(
        config.clocking.is_synchronous(),
        &config.dvfs.slowdown,
    ));
    let rendezvous = matches!(
        &config.clocking,
        Clocking::Pausible {
            transfer: PausibleModel::Rendezvous,
            ..
        }
    );
    report.extend(checks::budget(
        limits.max_insts,
        limits.watchdog_cycles,
        rendezvous,
    ));
    #[cfg(feature = "chaos")]
    if let Some(seq) = limits.chaos.withhold_writeback {
        report.extend(checks::wedge(seq, limits.max_insts, limits.watchdog_cycles));
    }
    report.merge(comm_graph(config).verify());
    report
}

/// Stable lowercase domain names, matching the deadlock report's labels.
fn domain_name(d: Domain) -> &'static str {
    match d {
        Domain::Fetch => "fetch",
        Domain::Decode => "decode",
        Domain::IntCluster => "int",
        Domain::FpCluster => "fp",
        Domain::MemCluster => "mem",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builder_config_analyzes_clean() {
        for (name, cfg) in [
            ("sync", ProcessorConfig::synchronous_1ghz()),
            ("gals", ProcessorConfig::gals_equal_1ghz(1)),
            ("pausible", ProcessorConfig::pausible_equal_1ghz(1)),
            ("rendezvous", ProcessorConfig::pausible_rendezvous_1ghz(1)),
        ] {
            let report = analyze(&cfg, &SimLimits::insts(10_000));
            assert!(report.is_clean(), "{name}: {:?}", report.findings);
        }
    }

    #[test]
    fn the_rendezvous_graph_is_single_entry_everywhere() {
        let g = comm_graph(&ProcessorConfig::pausible_rendezvous_1ghz(1));
        assert_eq!(g.nodes.len(), 5);
        // 1 fetch→decode + 3 dispatch + 3×(completion + redirect + 2 wakeups)
        assert_eq!(g.edges.len(), 16);
        assert!(g.edges.iter().all(|e| e.rendezvous && e.capacity == 1));
        // The writeback groups are atomic — the hold-and-wait exemption.
        assert_eq!(g.groups.len(), 3);
        assert!(g.groups.iter().all(|grp| grp.atomic));
    }

    #[test]
    fn the_fifo_graph_keeps_configured_capacities() {
        let cfg = ProcessorConfig::gals_equal_1ghz(3);
        let g = comm_graph(&cfg);
        assert!(g.edges.iter().all(|e| !e.rendezvous));
        assert!(g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Data)
            .all(|e| e.capacity == cfg.channel_capacity));
        assert!(g
            .edges
            .iter()
            .filter(|e| e.kind != EdgeKind::Data)
            .all(|e| e.capacity == cfg.side_channel_capacity));
    }

    #[test]
    fn undersized_channels_become_ga005_errors() {
        let mut cfg = ProcessorConfig::synchronous_1ghz();
        cfg.channel_capacity = 1;
        let report = analyze(&cfg, &SimLimits::insts(1_000));
        let first = report.first_error().expect("undersized channel must error");
        assert_eq!(first.code, codes::CHANNEL_CAPACITY);
        assert!(first.message.contains("at least 2"));
    }

    #[test]
    fn a_bad_dvfs_plan_is_ga006_without_touching_clock_constructors() {
        let mut cfg = ProcessorConfig::gals_equal_1ghz(1);
        // Bypass `with_dvfs` (which would assert) to model a hand-built
        // plan reaching the analyzer.
        cfg.dvfs.slowdown[2] = 0.25;
        let report = analyze(&cfg, &SimLimits::insts(1_000));
        assert_eq!(report.first_error().unwrap().code, codes::DVFS_RANGE);
    }

    #[test]
    fn a_disabled_watchdog_is_only_a_warning_on_blocking_machines() {
        let limits = SimLimits::insts(1_000).with_watchdog_cycles(0);
        let buffered = analyze(&ProcessorConfig::gals_equal_1ghz(1), &limits);
        assert!(
            buffered.static_verdict().is_none(),
            "{:?}",
            buffered.findings
        );
        assert!(!buffered.is_clean(), "info-level note expected");
        let blocking = analyze(&ProcessorConfig::pausible_rendezvous_1ghz(1), &limits);
        assert_eq!(
            blocking.static_verdict().unwrap().code,
            codes::BUDGET_SANITY
        );
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn an_armed_wedge_below_budget_is_the_static_verdict() {
        let mut limits = SimLimits::insts(2_000).with_watchdog_cycles(500);
        limits.chaos.withhold_writeback = Some(150);
        let report = analyze(&ProcessorConfig::gals_equal_1ghz(1), &limits);
        assert!(report.first_error().is_none());
        assert_eq!(
            report.static_verdict().unwrap().code,
            codes::WEDGED_PRODUCER
        );
        // Unarmed (or out-of-reach) wedges change nothing.
        limits.chaos.withhold_writeback = Some(2_000);
        assert!(analyze(&ProcessorConfig::gals_equal_1ghz(1), &limits).is_clean());
    }
}
