//! Simulation results: everything the paper's figures are computed from.

use gals_events::Time;
use gals_power::EnergyBreakdown;
use gals_uarch::{BpredStats, CacheStats, IssueQueueStats};

/// Per-domain cycle counts at the end of a run, indexed by
/// [`gals_clocks::Domain::index`].
pub type DomainCycles = [u64; 5];

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Committed (architectural) instructions.
    pub committed: u64,
    /// Total instructions fetched (correct + wrong path).
    pub fetched: u64,
    /// Wrong-path instructions fetched — the paper's "mis-speculated
    /// instructions" (Figure 8).
    pub wrong_path_fetched: u64,
    /// Wall-clock simulated time of the run.
    pub exec_time: Time,
    /// Local cycles ticked per domain.
    pub domain_cycles: DomainCycles,
    /// Sum of per-instruction fetch-to-commit latency over committed
    /// instructions (Figure 6's "slip" numerator).
    pub slip_total: Time,
    /// Portion of the slip spent resident in inter-domain channels
    /// (Figure 7's "FIFO" share).
    pub slip_fifo: Time,
    /// Branch predictor statistics.
    pub bpred: BpredStats,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Issue-queue statistics per cluster (int, fp, mem).
    pub iq: [IssueQueueStats; 3],
    /// Mean in-flight (ROB) occupancy.
    pub rob_mean_occupancy: f64,
    /// Mean rename-table occupancy (in-flight renames, int + fp).
    pub rat_mean_occupancy: f64,
    /// Peak rename-table occupancy.
    pub rat_peak_occupancy: u32,
    /// Loads that forwarded from the store buffer.
    pub store_forwards: u64,
    /// Instructions issued to functional units (correct + wrong path).
    pub issued: u64,
    /// Wrong-path instructions that actually issued (speculatively
    /// executed) — the paper's Figure 8 numerator.
    pub issued_wrong_path: u64,
    /// Total channel pushes + pops (FIFO transfer count in GALS).
    pub channel_ops: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl SimReport {
    /// Committed instructions per nanosecond — the cross-configuration
    /// performance metric (higher is better; frequency-independent).
    pub fn insts_per_ns(&self) -> f64 {
        self.committed as f64 / self.exec_time.as_ns_f64()
    }

    /// IPC measured against a reference clock period.
    pub fn ipc(&self, period: Time) -> f64 {
        self.committed as f64 / (self.exec_time.as_fs() as f64 / period.as_fs() as f64)
    }

    /// Mean slip (fetch-to-commit latency) per committed instruction.
    pub fn mean_slip(&self) -> Time {
        if self.committed == 0 {
            Time::ZERO
        } else {
            self.slip_total / self.committed
        }
    }

    /// Fraction of the slip spent in inter-domain channels.
    pub fn fifo_slip_fraction(&self) -> f64 {
        if self.slip_total == Time::ZERO {
            0.0
        } else {
            self.slip_fifo.as_fs() as f64 / self.slip_total.as_fs() as f64
        }
    }

    /// The paper's mis-speculation metric (Figure 8): wrong-path
    /// instructions as a fraction of all *speculatively executed* (issued)
    /// instructions.
    pub fn misspeculation_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.issued_wrong_path as f64 / self.issued as f64
        }
    }

    /// Wrong-path instructions as a fraction of all instructions *fetched*
    /// (a coarser speculation measure than [`SimReport::misspeculation_rate`]).
    pub fn wrong_path_fetch_rate(&self) -> f64 {
        if self.fetched == 0 {
            0.0
        } else {
            self.wrong_path_fetched as f64 / self.fetched as f64
        }
    }

    /// Total energy (relative units).
    pub fn total_energy(&self) -> f64 {
        self.energy.total()
    }

    /// Average power (energy units per second).
    pub fn average_power(&self) -> f64 {
        self.energy.average_power(self.exec_time)
    }

    /// Relative performance of `self` against a baseline run of the same
    /// workload (1.0 = equal; < 1 = slower than baseline). The paper's
    /// Figure 5 metric.
    pub fn relative_performance(&self, base: &SimReport) -> f64 {
        assert_eq!(
            self.committed, base.committed,
            "relative performance requires equal committed-instruction counts"
        );
        base.exec_time.as_fs() as f64 / self.exec_time.as_fs() as f64
    }

    /// Relative total energy against a baseline run (Figure 9).
    pub fn relative_energy(&self, base: &SimReport) -> f64 {
        self.total_energy() / base.total_energy()
    }

    /// Relative average power against a baseline run (Figure 9).
    pub fn relative_power(&self, base: &SimReport) -> f64 {
        self.average_power() / base.average_power()
    }

    /// A multi-line human-readable summary of the run.
    ///
    /// # Examples
    ///
    /// ```
    /// use gals_core::{simulate, ProcessorConfig, SimLimits};
    /// use gals_workload::{generate, Benchmark};
    ///
    /// let program = generate(Benchmark::Adpcm, 1);
    /// let r = simulate(&program, ProcessorConfig::synchronous_1ghz(), SimLimits::insts(5_000));
    /// let text = r.summary();
    /// assert!(text.contains("committed"));
    /// assert!(text.contains("slip"));
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "committed            {:>12}", self.committed);
        let _ = writeln!(
            s,
            "fetched              {:>12}   ({:.1}% wrong path)",
            self.fetched,
            100.0 * self.wrong_path_fetch_rate()
        );
        let _ = writeln!(s, "execution time       {:>12}", format!("{}", self.exec_time));
        let _ = writeln!(s, "throughput           {:>12.3} insts/ns", self.insts_per_ns());
        let _ = writeln!(
            s,
            "mean slip            {:>12}   ({:.1}% in channels)",
            format!("{}", self.mean_slip()),
            100.0 * self.fifo_slip_fraction()
        );
        let _ = writeln!(
            s,
            "mis-speculation      {:>11.1}%   (of issued instructions)",
            100.0 * self.misspeculation_rate()
        );
        let _ = writeln!(
            s,
            "branch mispredicts   {:>11.1}%   ({} lookups)",
            100.0 * self.bpred.mispredict_rate(),
            self.bpred.cond_lookups
        );
        let _ = writeln!(
            s,
            "L1D / L2 miss        {:>11.1}% / {:.1}%",
            100.0 * self.dcache.miss_rate(),
            100.0 * self.l2.miss_rate()
        );
        let _ = writeln!(
            s,
            "occupancy            {:>12.1} ROB / {:.1} RAT (mean)",
            self.rob_mean_occupancy, self.rat_mean_occupancy
        );
        let _ = writeln!(s, "total energy         {:>12.0} EU", self.total_energy());
        let _ = writeln!(
            s,
            "clock energy share   {:>11.1}%   (global {:.1}%)",
            100.0 * self.energy.clock_total() / self.total_energy(),
            100.0 * self.energy.global_clock / self.total_energy()
        );
        s
    }
}
