//! Simulation results: everything the paper's figures are computed from.

use gals_clocks::Domain;
use gals_events::Time;
use gals_power::EnergyBreakdown;
use gals_uarch::{BpredStats, CacheStats, IssueQueueStats};

/// Per-domain cycle counts at the end of a run, indexed by
/// [`gals_clocks::Domain::index`].
pub type DomainCycles = [u64; 5];

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Committed (architectural) instructions.
    pub committed: u64,
    /// Total instructions fetched (correct + wrong path).
    pub fetched: u64,
    /// Wrong-path instructions fetched — the paper's "mis-speculated
    /// instructions" (Figure 8).
    pub wrong_path_fetched: u64,
    /// Wall-clock simulated time of the run.
    pub exec_time: Time,
    /// Local cycles ticked per domain.
    pub domain_cycles: DomainCycles,
    /// Sum of per-instruction fetch-to-commit latency over committed
    /// instructions (Figure 6's "slip" numerator).
    pub slip_total: Time,
    /// Portion of the slip spent resident in inter-domain channels
    /// (Figure 7's "FIFO" share).
    pub slip_fifo: Time,
    /// Branch predictor statistics.
    pub bpred: BpredStats,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Issue-queue statistics per cluster (int, fp, mem).
    pub iq: [IssueQueueStats; 3],
    /// Mean in-flight (ROB) occupancy.
    pub rob_mean_occupancy: f64,
    /// Mean rename-table occupancy (in-flight renames, int + fp).
    pub rat_mean_occupancy: f64,
    /// Peak rename-table occupancy.
    pub rat_peak_occupancy: u32,
    /// Loads that forwarded from the store buffer.
    pub store_forwards: u64,
    /// Instructions issued to functional units (correct + wrong path).
    pub issued: u64,
    /// Wrong-path instructions that actually issued (speculatively
    /// executed) — the paper's Figure 8 numerator.
    pub issued_wrong_path: u64,
    /// Total channel pushes + pops (FIFO transfer count in GALS).
    pub channel_ops: u64,
    /// Clock-stretch events per domain (pausible clocking only; all zero
    /// for the synchronous and FIFO-GALS machines). Each inter-domain
    /// transfer stretches both endpoint clocks, so a transfer counts once
    /// at each endpoint.
    pub stretches: [u64; 5],
    /// Total stretch time inserted into each domain's clock (pausible
    /// clocking only).
    pub stretch_time: [Time; 5],
    /// Cycles in which a domain's pipeline stage made *no* progress
    /// because its rendezvous port was occupied — fetch pushed nothing,
    /// decode renamed nothing, a cluster wrote back nothing (rendezvous
    /// pausible clocking only; the *capacity* cost of unbuffered
    /// handshakes; all zero in every other machine). At most one blocked
    /// cycle is counted per domain per tick, and ticks that moved some
    /// work before hitting the occupied port are progress, not stalls.
    pub rendezvous_blocked: [u64; 5],
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl SimReport {
    /// Committed instructions per nanosecond — the cross-configuration
    /// performance metric (higher is better; frequency-independent).
    /// Returns 0 for a run in which no simulated time elapsed (empty
    /// program or a zero instruction budget).
    pub fn insts_per_ns(&self) -> f64 {
        if self.exec_time == Time::ZERO {
            return 0.0;
        }
        self.committed as f64 / self.exec_time.as_ns_f64()
    }

    /// IPC measured against a reference clock period. Returns 0 for a run
    /// in which no simulated time elapsed.
    pub fn ipc(&self, period: Time) -> f64 {
        if self.exec_time == Time::ZERO {
            return 0.0;
        }
        self.committed as f64 / (self.exec_time.as_fs() as f64 / period.as_fs() as f64)
    }

    /// Measured effective frequency of one domain's clock in GHz: local
    /// cycles ticked over wall-clock simulated time. Matches the nominal
    /// frequency (±one partial cycle) for a free-running clock; lower when
    /// the clock was stretched by pausible handshakes. Returns 0 for a run
    /// in which no simulated time elapsed.
    pub fn effective_ghz(&self, domain: Domain) -> f64 {
        if self.exec_time == Time::ZERO {
            return 0.0;
        }
        self.domain_cycles[domain.index()] as f64 / self.exec_time.as_ns_f64()
    }

    /// Total clock-stretch events across all domains (non-zero only in
    /// pausible clocking).
    pub fn total_stretches(&self) -> u64 {
        self.stretches.iter().sum()
    }

    /// Total rendezvous-blocked cycles across all domains (non-zero only
    /// under rendezvous pausible clocking).
    pub fn total_rendezvous_blocked(&self) -> u64 {
        self.rendezvous_blocked.iter().sum()
    }

    /// Mean slip (fetch-to-commit latency) per committed instruction.
    pub fn mean_slip(&self) -> Time {
        if self.committed == 0 {
            Time::ZERO
        } else {
            self.slip_total / self.committed
        }
    }

    /// Fraction of the slip spent in inter-domain channels.
    pub fn fifo_slip_fraction(&self) -> f64 {
        if self.slip_total == Time::ZERO {
            0.0
        } else {
            self.slip_fifo.as_fs() as f64 / self.slip_total.as_fs() as f64
        }
    }

    /// The paper's mis-speculation metric (Figure 8): wrong-path
    /// instructions as a fraction of all *speculatively executed* (issued)
    /// instructions.
    pub fn misspeculation_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.issued_wrong_path as f64 / self.issued as f64
        }
    }

    /// Wrong-path instructions as a fraction of all instructions *fetched*
    /// (a coarser speculation measure than [`SimReport::misspeculation_rate`]).
    pub fn wrong_path_fetch_rate(&self) -> f64 {
        if self.fetched == 0 {
            0.0
        } else {
            self.wrong_path_fetched as f64 / self.fetched as f64
        }
    }

    /// Total energy (relative units).
    pub fn total_energy(&self) -> f64 {
        self.energy.total()
    }

    /// Average power (energy units per second). Returns 0 for a run in
    /// which no simulated time elapsed.
    pub fn average_power(&self) -> f64 {
        if self.exec_time == Time::ZERO {
            return 0.0;
        }
        self.energy.average_power(self.exec_time)
    }

    /// Relative performance of `self` against a baseline run of the same
    /// workload (1.0 = equal; < 1 = slower than baseline). The paper's
    /// Figure 5 metric. Returns 0 when no simulated time elapsed in `self`
    /// (a degenerate empty run).
    pub fn relative_performance(&self, base: &SimReport) -> f64 {
        assert_eq!(
            self.committed, base.committed,
            "relative performance requires equal committed-instruction counts"
        );
        if self.exec_time == Time::ZERO {
            return 0.0;
        }
        base.exec_time.as_fs() as f64 / self.exec_time.as_fs() as f64
    }

    /// Relative total energy against a baseline run (Figure 9). Returns 0
    /// when the baseline burned no energy (a degenerate empty run).
    pub fn relative_energy(&self, base: &SimReport) -> f64 {
        let base_energy = base.total_energy();
        if base_energy == 0.0 {
            return 0.0;
        }
        self.total_energy() / base_energy
    }

    /// Relative average power against a baseline run (Figure 9). Returns 0
    /// when the baseline power is zero (a degenerate empty run).
    pub fn relative_power(&self, base: &SimReport) -> f64 {
        let base_power = base.average_power();
        if base_power == 0.0 {
            return 0.0;
        }
        self.average_power() / base_power
    }

    /// A multi-line human-readable summary of the run.
    ///
    /// # Examples
    ///
    /// ```
    /// use gals_core::{simulate, ProcessorConfig, SimLimits};
    /// use gals_workload::{generate, Benchmark};
    ///
    /// let program = generate(Benchmark::Adpcm, 1);
    /// let r = simulate(&program, ProcessorConfig::synchronous_1ghz(), SimLimits::insts(5_000))
    ///     .expect("valid config, no deadlock");
    /// let text = r.summary();
    /// assert!(text.contains("committed"));
    /// assert!(text.contains("slip"));
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "committed            {:>12}", self.committed);
        let _ = writeln!(
            s,
            "fetched              {:>12}   ({:.1}% wrong path)",
            self.fetched,
            100.0 * self.wrong_path_fetch_rate()
        );
        let _ = writeln!(
            s,
            "execution time       {:>12}",
            format!("{}", self.exec_time)
        );
        let _ = writeln!(
            s,
            "throughput           {:>12.3} insts/ns",
            self.insts_per_ns()
        );
        let _ = writeln!(
            s,
            "mean slip            {:>12}   ({:.1}% in channels)",
            format!("{}", self.mean_slip()),
            100.0 * self.fifo_slip_fraction()
        );
        let _ = writeln!(
            s,
            "mis-speculation      {:>11.1}%   (of issued instructions)",
            100.0 * self.misspeculation_rate()
        );
        let _ = writeln!(
            s,
            "branch mispredicts   {:>11.1}%   ({} lookups)",
            100.0 * self.bpred.mispredict_rate(),
            self.bpred.cond_lookups
        );
        let _ = writeln!(
            s,
            "L1D / L2 miss        {:>11.1}% / {:.1}%",
            100.0 * self.dcache.miss_rate(),
            100.0 * self.l2.miss_rate()
        );
        let _ = writeln!(
            s,
            "occupancy            {:>12.1} ROB / {:.1} RAT (mean)",
            self.rob_mean_occupancy, self.rat_mean_occupancy
        );
        if self.total_stretches() > 0 {
            let total_stretch: Time = self.stretch_time.iter().copied().sum();
            let _ = writeln!(
                s,
                "clock stretches      {:>12}   ({} total, pausible handshakes)",
                self.total_stretches(),
                total_stretch
            );
        }
        if self.total_rendezvous_blocked() > 0 {
            let _ = writeln!(
                s,
                "rendezvous blocks    {:>12}   (producer cycles parked on full ports)",
                self.total_rendezvous_blocked()
            );
        }
        let _ = writeln!(s, "total energy         {:>12.0} EU", self.total_energy());
        let _ = writeln!(
            s,
            "clock energy share   {:>11.1}%   (global {:.1}%)",
            100.0 * self.energy.clock_total() / self.total_energy(),
            100.0 * self.energy.global_clock / self.total_energy()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_power::MacroBlock;

    /// A report of a run in which nothing happened and no time elapsed
    /// (empty program, or `SimLimits::insts(0)`).
    fn empty_report() -> SimReport {
        SimReport {
            committed: 0,
            fetched: 0,
            wrong_path_fetched: 0,
            exec_time: Time::ZERO,
            domain_cycles: [0; 5],
            slip_total: Time::ZERO,
            slip_fifo: Time::ZERO,
            bpred: BpredStats::default(),
            icache: CacheStats::default(),
            dcache: CacheStats::default(),
            l2: CacheStats::default(),
            iq: [IssueQueueStats::default(); 3],
            rob_mean_occupancy: 0.0,
            rat_mean_occupancy: 0.0,
            rat_peak_occupancy: 0,
            store_forwards: 0,
            issued: 0,
            issued_wrong_path: 0,
            channel_ops: 0,
            stretches: [0; 5],
            stretch_time: [Time::ZERO; 5],
            rendezvous_blocked: [0; 5],
            energy: EnergyBreakdown {
                blocks: [0.0; MacroBlock::ALL.len()],
                global_clock: 0.0,
                local_clocks: [0.0; 5],
            },
        }
    }

    #[test]
    fn zero_time_metrics_are_zero_not_nan() {
        // Regression: these used to return NaN (0/0), ∞ (x/0) or panic on
        // a run in which no simulated time elapsed.
        let r = empty_report();
        assert_eq!(r.insts_per_ns(), 0.0);
        assert_eq!(r.ipc(Time::from_ns(1)), 0.0);
        assert_eq!(r.average_power(), 0.0);
        assert_eq!(r.relative_performance(&empty_report()), 0.0);
        for d in Domain::ALL {
            assert_eq!(r.effective_ghz(d), 0.0);
        }
    }

    #[test]
    fn zero_baseline_relatives_are_zero_not_nan() {
        // Regression: relative_energy/relative_power used to divide by a
        // possibly-zero baseline.
        let empty = empty_report();
        let mut busy = empty_report();
        busy.exec_time = Time::from_ns(10);
        busy.committed = 5;
        busy.energy.global_clock = 3.0;
        assert_eq!(busy.relative_energy(&empty), 0.0);
        assert_eq!(busy.relative_power(&empty), 0.0);
        // Sane baselines still divide.
        assert_eq!(empty.relative_energy(&busy), 0.0);
        assert!((busy.relative_energy(&busy) - 1.0).abs() < 1e-12);
        assert!((busy.relative_power(&busy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_metrics_are_unchanged_by_the_guards() {
        let mut r = empty_report();
        r.committed = 2_000;
        r.exec_time = Time::from_ns(1_000);
        r.domain_cycles = [1_000; 5];
        assert!((r.insts_per_ns() - 2.0).abs() < 1e-12);
        assert!((r.ipc(Time::from_ns(1)) - 2.0).abs() < 1e-12);
        assert!((r.effective_ghz(Domain::Fetch) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_stretches_sums_domains() {
        let mut r = empty_report();
        r.stretches = [1, 2, 3, 4, 5];
        assert_eq!(r.total_stretches(), 15);
    }

    #[test]
    fn rendezvous_blocked_sums_domains_and_gates_the_summary_line() {
        let mut r = empty_report();
        assert_eq!(r.total_rendezvous_blocked(), 0);
        assert!(!r.summary().contains("rendezvous blocks"));
        r.rendezvous_blocked = [10, 0, 5, 0, 1];
        assert_eq!(r.total_rendezvous_blocked(), 16);
        assert!(r.summary().contains("rendezvous blocks"));
    }
}
