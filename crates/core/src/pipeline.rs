//! The eight-stage out-of-order pipeline over five clock domains — the
//! heart of both processor models.
//!
//! Stage-to-domain mapping (the paper's Table 2):
//!
//! | # | Stage                       | Domain      |
//! |---|-----------------------------|-------------|
//! | 1 | Fetch from I-cache          | 1 (fetch)   |
//! | 2 | Decode                      | 2 (decode)  |
//! | 3 | Rename, regfile read        | 2           |
//! | 4 | Dispatch into issue queue   | 2 → 3/4/5   |
//! | 5 | Issue to functional unit    | 3/4/5       |
//! | 6 | Execute                     | 3/4/5       |
//! | 7 | Wakeup, writeback           | 3/4/5       |
//! | 8 | Regfile write, commit       | 3/4/5 → 2   |
//!
//! Every arrow is a [`Channel`]: a 1-cycle pipeline latch in the
//! synchronous machine, a mixed-clock FIFO in the GALS machine. All other
//! behaviour is byte-identical between the two models, which is what makes
//! the paper's comparison meaningful.
//!
//! ## Modelling notes (divergences from RTL truth)
//!
//! * Branch predictor training happens at fetch (immediate update) rather
//!   than at resolution; the misprediction *penalty* is still paid through
//!   the resolve-and-redirect loop. Identical in both machines.
//! * Wakeup tags crossing domains use generously sized channels (the bypass
//!   network is not a literal queue); a stale in-flight wakeup can in rare
//!   interleavings mark a freshly reallocated register ready a few cycles
//!   early. The effect is orders of magnitude below the FIFO latencies
//!   being measured.
//! * The store buffer drains logically at commit; the cache write is
//!   charged at issue time.

use std::collections::VecDeque;

use gals_clocks::{Channel, Domain};
use gals_events::Time;
use gals_isa::{Cluster, DynStream, Inst, OpClass, Program, EXIT_PC};
use gals_power::{MacroBlock, PowerAccountant};
use gals_uarch::{BranchPredictor, Cache, FuPool, IssueQueue, RenameUnit, Rob, StoreBuffer};

use crate::config::{Clocking, ProcessorConfig, SimLimits};
use crate::inflight::{BranchInfo, InFlight, InFlightTable, Redirect, SrcTags, Tag, TAG_SPACE};
use crate::report::SimReport;

/// Salt mixed into wrong-path memory-address hashing so speculative loads
/// touch plausible but distinct addresses.
const WRONG_PATH_SALT: u64 = 0xD00D_F00D_5EED_0001;

/// Clock domain of each execution cluster, indexed like `Pipeline::clusters`.
const CLUSTER_DOMAINS: [Domain; 3] = [Domain::IntCluster, Domain::FpCluster, Domain::MemCluster];

/// `wakeup_interest` flag: the producer of this tag has already run its
/// writeback broadcast (bits 0..=2 hold per-cluster consumer interest).
const WAKEUP_DONE: u8 = 1 << 7;

/// One execution cluster (domains 3, 4, 5).
struct ClusterState {
    domain: Domain,
    iq: IssueQueue,
    fus: FuPool,
    /// Cluster-local operand availability, indexed by `Tag::index`.
    ready: Vec<bool>,
    /// `(done_at_local_cycle, seq)` of instructions in execution.
    executing: Vec<(u64, u64)>,
    /// Local cycle counter.
    cycle: u64,
    /// Per-tick scratch: sequence numbers finishing execution this cycle.
    /// Hoisted out of `tick_cluster` so the steady-state path allocates
    /// nothing.
    finished_scratch: Vec<u64>,
    /// Per-tick scratch: tokens picked by issue selection.
    picked_scratch: Vec<u64>,
    /// Per-tick scratch: `(seq, latency)` of admitted instructions.
    latency_scratch: Vec<(u64, u64)>,
}

impl ClusterState {
    fn new(domain: Domain, iq_size: usize, fu_count: u32) -> Self {
        ClusterState {
            domain,
            iq: IssueQueue::new(iq_size),
            fus: FuPool::new(fu_count),
            ready: vec![true; TAG_SPACE],
            executing: Vec::new(),
            cycle: 0,
            finished_scratch: Vec::with_capacity(2 * fu_count as usize),
            picked_scratch: Vec::with_capacity(2 * fu_count as usize),
            latency_scratch: Vec::with_capacity(2 * fu_count as usize),
        }
    }
}

/// The complete microarchitectural state of one simulated processor.
///
/// Driven by the event engine: each domain's periodic clock event calls
/// [`Pipeline::tick`].
pub struct Pipeline<'p> {
    program: &'p Program,
    cfg: ProcessorConfig,
    limits: SimLimits,

    // ---- front end (domain 1) ----
    stream: DynStream<'p>,
    peeked: Option<gals_isa::DynInst>,
    fetch_pc: u64,
    wrong_path: bool,
    wrong_pc: u64,
    fetch_halted: bool,
    icache: Cache,
    bpred: BranchPredictor,
    icache_stall: u32,

    // ---- decode/rename/commit (domain 2) ----
    decode_buf: VecDeque<u64>,
    rename: RenameUnit,
    /// Enforces program order only: completion is tracked on the in-flight
    /// table (`InFlight::completed`), so `Rob::complete`/`RobStatus` are
    /// deliberately not driven here — the head is popped with
    /// [`Rob::pop_head`] once its in-flight entry reports complete. Do not
    /// read this ROB's per-entry status.
    rob: Rob<u64>,
    decode_cycle: u64,

    // ---- clusters (domains 3, 4, 5) ----
    clusters: [ClusterState; 3],
    store_buffer: StoreBuffer,
    dcache: Cache,
    l2: Cache,
    l2_touched: bool,

    // ---- channels ----
    ch_fetch_decode: Channel<u64>,
    ch_dispatch: [Channel<u64>; 3],
    ch_complete: [Channel<u64>; 3],
    /// Wakeup tag channels `[from][to]` (diagonal unused).
    ch_wakeup: [[Channel<Tag>; 3]; 3],
    ch_redirect: Channel<Redirect>,

    // ---- bookkeeping ----
    inflight: InFlightTable,
    next_seq: u64,
    /// The one unresolved-recovery mispredicted branch (see module docs of
    /// `inflight`): set at resolution, cleared when fetch recovers.
    pending_recovery: Option<u64>,
    committed: u64,
    fetched: u64,
    wrong_path_fetched: u64,
    /// Reusable recovery scratch for the ROB/IQ squash walks, so branch
    /// recovery allocates nothing even under branchy sweep workloads.
    squash_scratch: Vec<u64>,
    slip_total: Time,
    slip_fifo: Time,
    store_forwards_total: u64,
    issued_total: u64,
    issued_wrong_path: u64,
    /// Pausible clocking: handshake duration charged to both endpoint
    /// clocks per inter-domain transfer; `None` in the synchronous and
    /// FIFO-GALS machines.
    stretch_handshake: Option<Time>,
    /// Stretch time accumulated since the driver last drained it, indexed
    /// by [`Domain::index`].
    pending_stretch: [Time; 5],
    /// Fast-path flag: whether `pending_stretch` holds anything.
    stretch_pending: bool,
    /// Lifetime stretch-event count per domain (each transfer counts once
    /// at each endpoint).
    stretch_events: [u64; 5],
    /// Lifetime stretch time per domain.
    stretch_time: [Time; 5],
    /// Wakeup-coalescing state (pausible + `coalesce_wakeup_stretch` only):
    /// the last producer-cluster cycle in which a wakeup handshake was
    /// charged on link `[from][to]`. Further wakeup tags pushed on the same
    /// link in the same cycle ride the already-paid handshake.
    wakeup_stretch_cycle: [[u64; 3]; 3],
    /// Producer-side dependence-filter state per wakeup tag (all zero
    /// unless `cfg.cross_cluster_wakeup_filter`): bits 0..=2 record which
    /// clusters renamed a consumer of the tag's current allocation;
    /// [`WAKEUP_DONE`] records that the producer's writeback broadcast has
    /// already run.
    ///
    /// Deadlock-freedom: a consumer renamed *before* the producer's
    /// writeback registers interest here, so the wakeup is delivered to its
    /// cluster; a consumer renamed *after* sees [`WAKEUP_DONE`] and marks
    /// the operand ready in its cluster view at rename (the busy-bit table
    /// read real rename stages do — the value is in the register file by
    /// then). Either way every dependent observes the wakeup.
    wakeup_interest: Box<[u8]>,
    halted: bool,
    last_commit_time: Time,
    fetch_cycles: u64,
    pub(crate) accountant: PowerAccountant,
    now: Time,
}

impl<'p> Pipeline<'p> {
    /// Builds the pipeline for a program under a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(program: &'p Program, cfg: ProcessorConfig, limits: SimLimits) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid processor configuration: {e}"));
        let u = &cfg.uarch;
        let mk_data_channel = |from: Domain, to: Domain, cap: usize| -> Channel<u64> {
            Self::make_channel(&cfg, from, to, cap)
        };
        let clusters = [
            ClusterState::new(Domain::IntCluster, u.int_iq_size, u.int_alus),
            ClusterState::new(Domain::FpCluster, u.fp_iq_size, u.fp_alus),
            ClusterState::new(Domain::MemCluster, u.mem_iq_size, u.mem_ports),
        ];
        let ch_dispatch = std::array::from_fn(|i| {
            mk_data_channel(Domain::Decode, CLUSTER_DOMAINS[i], cfg.channel_capacity)
        });
        let ch_complete = std::array::from_fn(|i| {
            mk_data_channel(
                CLUSTER_DOMAINS[i],
                Domain::Decode,
                cfg.side_channel_capacity,
            )
        });
        let ch_wakeup = std::array::from_fn(|from| {
            std::array::from_fn(|to| {
                Self::make_channel::<Tag>(
                    &cfg,
                    CLUSTER_DOMAINS[from],
                    CLUSTER_DOMAINS[to],
                    cfg.side_channel_capacity,
                )
            })
        });
        let mut accountant = PowerAccountant::new(cfg.energy.clone());
        if cfg.clocking.is_synchronous() {
            if cfg.dvfs.is_active() {
                accountant.set_global_voltage_factor(cfg.dvfs.energy_factor(Domain::Fetch));
            }
        } else {
            // GALS and pausible machines scale supplies per domain.
            for d in Domain::ALL {
                accountant.set_domain_voltage_factor(d, cfg.dvfs.energy_factor(d));
            }
        }

        let mut stream = DynStream::new(program);
        let peeked = stream.next();
        let fetch_pc = peeked.as_ref().map_or(EXIT_PC, |d| d.pc);

        Pipeline {
            ch_fetch_decode: mk_data_channel(Domain::Fetch, Domain::Decode, cfg.channel_capacity),
            ch_redirect: Self::make_channel(
                &cfg,
                Domain::IntCluster,
                Domain::Fetch,
                cfg.side_channel_capacity,
            ),
            ch_dispatch,
            ch_complete,
            ch_wakeup,
            icache: Cache::new(u.l1i),
            bpred: BranchPredictor::new(u.bpred),
            icache_stall: 0,
            decode_buf: VecDeque::with_capacity(2 * u.decode_width as usize),
            rename: RenameUnit::new(u.int_phys_regs, u.fp_phys_regs, u.max_branches),
            rob: Rob::new(u.rob_size),
            decode_cycle: 0,
            clusters,
            store_buffer: StoreBuffer::new(u.store_buffer_size),
            dcache: Cache::new(u.l1d),
            l2: Cache::new(u.l2),
            l2_touched: false,
            inflight: InFlightTable::with_window(
                u.rob_size
                    + 2 * u.decode_width as usize
                    + cfg.channel_capacity
                    + u.fetch_width as usize
                    + 8,
            ),
            next_seq: 0,
            pending_recovery: None,
            committed: 0,
            fetched: 0,
            wrong_path_fetched: 0,
            squash_scratch: Vec::new(),
            slip_total: Time::ZERO,
            slip_fifo: Time::ZERO,
            store_forwards_total: 0,
            issued_total: 0,
            issued_wrong_path: 0,
            stretch_handshake: match &cfg.clocking {
                Clocking::Pausible { model, .. } => Some(model.handshake),
                _ => None,
            },
            pending_stretch: [Time::ZERO; 5],
            stretch_pending: false,
            stretch_events: [0; 5],
            stretch_time: [Time::ZERO; 5],
            wakeup_stretch_cycle: [[0; 3]; 3],
            wakeup_interest: vec![0u8; TAG_SPACE].into_boxed_slice(),
            halted: false,
            last_commit_time: Time::ZERO,
            fetch_cycles: 0,
            accountant,
            stream,
            peeked,
            fetch_pc,
            wrong_path: false,
            wrong_pc: EXIT_PC,
            fetch_halted: false,
            program,
            cfg,
            limits,
            now: Time::ZERO,
        }
    }

    fn make_channel<T>(cfg: &ProcessorConfig, from: Domain, to: Domain, cap: usize) -> Channel<T> {
        match &cfg.clocking {
            Clocking::Synchronous(_) => Channel::sync_latch(cap),
            Clocking::Gals(clocks) => {
                let fwd = clocks[to.index()].period.scale(cfg.fifo_sync_periods);
                let bwd = clocks[from.index()].period.scale(cfg.fifo_sync_periods);
                Channel::mixed_clock_fifo(cap, fwd, bwd)
            }
            // Pausible clocking has no synchronisers: the transfer happens
            // with both clocks held, so the channel is an ordinary latch and
            // the cost is paid as clock stretch (see `note_transfer`).
            Clocking::Pausible { .. } => Channel::sync_latch(cap),
        }
    }

    /// Records one inter-domain transfer in pausible mode: both endpoint
    /// clocks stretch their current phase by the handshake duration while
    /// the arbiters settle and the data crosses (the paper's section-3.2
    /// objection, simulated). A transaction is charged at the *push*; the
    /// consumer-side pop reads a latch that is already local and costs
    /// nothing extra. No-op in the synchronous and FIFO-GALS machines.
    #[inline]
    fn note_transfer(&mut self, from: Domain, to: Domain) {
        let Some(handshake) = self.stretch_handshake else {
            return;
        };
        for d in [from, to] {
            let i = d.index();
            self.pending_stretch[i] += handshake;
            self.stretch_events[i] += 1;
            self.stretch_time[i] += handshake;
        }
        self.stretch_pending = true;
    }

    /// Records one cross-cluster wakeup transfer, coalescing the pausible
    /// handshake charge: with `coalesce_wakeup_stretch` on, all wakeup tags
    /// a producer cluster pushes onto one link within one local cycle share
    /// a single handshake (the arbitration is won once and the tag batch
    /// crosses together) instead of stretching both clocks once per tag.
    /// The tags themselves still travel individually. No-op difference
    /// outside pausible mode, where `note_transfer` charges nothing.
    #[inline]
    fn note_wakeup_transfer(&mut self, ci: usize, to: usize) {
        if self.stretch_handshake.is_some() && self.cfg.coalesce_wakeup_stretch {
            let cycle = self.clusters[ci].cycle;
            if self.wakeup_stretch_cycle[ci][to] == cycle {
                return;
            }
            self.wakeup_stretch_cycle[ci][to] = cycle;
        }
        self.note_transfer(CLUSTER_DOMAINS[ci], CLUSTER_DOMAINS[to]);
    }

    /// Drains the clock-stretch requests accumulated by pausible-mode
    /// transfers since the last call, indexed by [`Domain::index`]. The
    /// driver applies them to its scheduler — [`gals_events::ClockSet`]
    /// slots or [`gals_events::Engine`] periodic events — after the tick
    /// that produced them. Returns `None` when nothing is pending (always,
    /// outside pausible mode).
    pub fn take_stretch_requests(&mut self) -> Option<[Time; 5]> {
        if !self.stretch_pending {
            return None;
        }
        self.stretch_pending = false;
        Some(std::mem::take(&mut self.pending_stretch))
    }

    /// True once the run is finished (instruction budget met or program
    /// fully drained).
    pub fn done(&self) -> bool {
        self.halted || self.committed >= self.limits.max_insts
    }

    /// Committed instructions so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Advances one clock edge of `domain` at absolute time `now`.
    pub fn tick(&mut self, domain: Domain, now: Time) {
        self.now = now;
        match domain {
            Domain::Fetch => self.tick_fetch(),
            Domain::Decode => self.tick_decode(),
            Domain::IntCluster => self.tick_cluster(0),
            Domain::FpCluster => self.tick_cluster(1),
            Domain::MemCluster => self.tick_cluster(2),
        }
    }

    // ------------------------------------------------------------------
    // Domain 1: fetch
    // ------------------------------------------------------------------

    fn tick_fetch(&mut self) {
        let now = self.now;
        self.fetch_cycles += 1;
        self.accountant.tick_domain(Domain::Fetch);
        // The base machine's global grid toggles once per (shared) cycle;
        // the GALS and pausible machines have no global grid.
        if self.cfg.clocking.is_synchronous() {
            self.accountant.tick_global();
        }

        // 1. Redirect handling (branch recovery).
        while let Some((r, res)) = self.ch_redirect.try_pop_timed(now) {
            // The redirect's residency is pipeline recovery latency; it is
            // charged to the mispredicted branch for slip accounting.
            if let Some(inf) = self.inflight.get_mut(r.branch_seq) {
                inf.fifo_time += res;
            }
            self.process_redirect(r);
        }

        // 2. Fetch.
        let mut icache_active = false;
        let mut bpred_active = false;
        if self.icache_stall > 0 {
            self.icache_stall -= 1;
            icache_active = true;
        } else if !self.fetch_halted && self.pending_recovery.is_none() {
            // Once a misprediction has *resolved*, further wrong-path fetch
            // is gated (the squash broadcast reaches the front end with the
            // redirect); until resolution, fetch honestly runs down the
            // predicted path.
            let pc = if self.wrong_path {
                self.wrong_pc
            } else {
                self.fetch_pc
            };
            if pc != EXIT_PC {
                icache_active = true;
                if self.icache.access(pc) {
                    // One I-cache line per cycle: the fetch group ends at
                    // the line boundary (and at predicted-taken branches).
                    let line = pc / self.cfg.uarch.l1i.line_bytes;
                    for _ in 0..self.cfg.uarch.fetch_width {
                        let cur = if self.wrong_path {
                            self.wrong_pc
                        } else {
                            self.fetch_pc
                        };
                        if cur == EXIT_PC || cur / self.cfg.uarch.l1i.line_bytes != line {
                            break;
                        }
                        match self.fetch_one(&mut bpred_active) {
                            FetchOutcome::Continue => {}
                            FetchOutcome::Stop => break,
                        }
                    }
                } else {
                    self.icache_stall = self.l2_fill_latency();
                }
            }
        }
        self.accountant
            .block_cycle(MacroBlock::ICache, icache_active);
        self.accountant
            .block_cycle(MacroBlock::BranchPredictor, bpred_active);
    }

    /// Latency charged for an L1 miss: L2 hit latency, plus memory latency
    /// when L2 also misses. (Shared between I- and D-side.)
    fn l2_fill_latency_for(
        l2: &mut Cache,
        l2_touched: &mut bool,
        addr: u64,
        mem_latency: u32,
    ) -> u32 {
        *l2_touched = true;
        if l2.access(addr) {
            l2.latency()
        } else {
            l2.latency() + mem_latency
        }
    }

    fn l2_fill_latency(&mut self) -> u32 {
        let pc = if self.wrong_path {
            self.wrong_pc
        } else {
            self.fetch_pc
        };
        Self::l2_fill_latency_for(
            &mut self.l2,
            &mut self.l2_touched,
            pc,
            self.cfg.uarch.mem_latency,
        )
    }

    fn fetch_one(&mut self, bpred_active: &mut bool) -> FetchOutcome {
        let now = self.now;
        if !self.ch_fetch_decode.can_push(now) {
            return FetchOutcome::Stop;
        }
        if self.wrong_path {
            self.fetch_one_wrong_path(bpred_active)
        } else {
            self.fetch_one_correct_path(bpred_active)
        }
    }

    fn fetch_one_correct_path(&mut self, bpred_active: &mut bool) -> FetchOutcome {
        // `take` instead of `clone`: the cursor is re-primed from the stream
        // below on every path that continues fetching.
        let Some(d) = self.peeked.take() else {
            self.fetch_halted = true;
            return FetchOutcome::Stop;
        };
        debug_assert_eq!(d.pc, self.fetch_pc, "front end desynchronised from stream");

        let mut branch_info = None;
        let mut stop_after = false;

        if d.op.is_branch() {
            *bpred_active = true;
            let fallthrough = self.program.next_sequential_pc(d.block, d.index);
            let (predicted_taken, predicted_target) = match d.op {
                OpClass::BranchCond => {
                    let p = self.bpred.predict_cond(d.pc);
                    // Immediate training (see module docs).
                    let train_target = if d.taken { d.next_pc } else { 0 };
                    self.bpred.update_cond(d.pc, d.taken, train_target, p.taken);
                    (p.taken, p.target)
                }
                OpClass::Jump | OpClass::Call => {
                    let p = self.bpred.predict_uncond(d.pc);
                    self.bpred.update_uncond(d.pc, d.next_pc);
                    if d.op == OpClass::Call {
                        self.bpred.push_return(fallthrough);
                    }
                    (true, p.target)
                }
                OpClass::Ret => {
                    let p = self.bpred.predict_return(d.pc);
                    (true, p.target)
                }
                _ => unreachable!("is_branch covers these"),
            };
            // Where fetch believes it should go next.
            let predicted_next = if predicted_taken {
                predicted_target.unwrap_or(fallthrough)
            } else {
                fallthrough
            };
            let mispredicted = predicted_next != d.next_pc;
            branch_info = Some(BranchInfo {
                predicted_taken,
                actual_taken: d.taken,
                recovery_pc: d.next_pc,
                mispredicted,
            });
            if mispredicted {
                self.wrong_path = true;
                self.wrong_pc = predicted_next;
            }
            // Taken (predicted) control transfers end the fetch group.
            stop_after = predicted_taken;
        }

        let seq = self.alloc_seq();
        let static_inst = &self.program.block(d.block).insts[d.index as usize];
        let is_exit = d.is_exit();
        let inf = self.make_inflight(
            seq,
            d.pc,
            static_inst,
            false,
            d.mem_addr,
            branch_info,
            is_exit,
        );
        self.push_fetched(inf);

        // Advance the architectural cursor.
        self.fetch_pc = d.next_pc;
        self.peeked = self.stream.next();
        if d.is_exit() {
            self.fetch_halted = true;
            return FetchOutcome::Stop;
        }
        if stop_after || self.wrong_path {
            return FetchOutcome::Stop;
        }
        FetchOutcome::Continue
    }

    fn fetch_one_wrong_path(&mut self, bpred_active: &mut bool) -> FetchOutcome {
        // As in decode, copying the program reference out of self lets the
        // located instruction borrow the program directly — no clone.
        let program = self.program;
        let Some((block, index, inst)) = program.locate(self.wrong_pc) else {
            // Ran off the program on the wrong path: fetch bubbles until
            // the redirect arrives.
            return FetchOutcome::Stop;
        };
        let pc = self.wrong_pc;
        let seq = self.alloc_seq();

        let mut stop_after = false;
        if inst.op.is_branch() {
            *bpred_active = true;
            let fallthrough = self.program.next_sequential_pc(block, index);
            let taken_target = self.program.taken_target_pc(block);
            let (ptaken, ptarget) = match inst.op {
                OpClass::BranchCond => {
                    let p = self.bpred.predict_cond_nospec(pc);
                    (p.taken, p.target)
                }
                OpClass::Jump | OpClass::Call => {
                    let p = self.bpred.predict_uncond(pc);
                    if inst.op == OpClass::Call {
                        self.bpred.push_return(fallthrough);
                    }
                    // Wrong-path fetch may still know the static target.
                    (true, p.target.or(taken_target))
                }
                OpClass::Ret => {
                    let p = self.bpred.predict_return(pc);
                    (true, p.target)
                }
                _ => unreachable!(),
            };
            self.wrong_pc = if ptaken {
                ptarget.unwrap_or(fallthrough)
            } else {
                fallthrough
            };
            stop_after = ptaken;
        } else {
            self.wrong_pc = self.program.next_sequential_pc(block, index);
        }

        let mem_addr = inst.mem.map(|mid| {
            let behavior = self.program.mem_behavior(mid);
            let flat = self.program.flat_index(block, index);
            behavior.address(self.program.seed() ^ WRONG_PATH_SALT, flat, seq)
        });
        // Wrong-path branches never carry misprediction info: they have no
        // architectural outcome and are squashed before resolution matters.
        let branch_info = inst.op.is_branch().then_some(BranchInfo {
            predicted_taken: true,
            actual_taken: false,
            recovery_pc: EXIT_PC,
            mispredicted: false,
        });
        let inf = self.make_inflight(seq, pc, inst, true, mem_addr, branch_info, false);
        self.push_fetched(inf);

        if stop_after {
            FetchOutcome::Stop
        } else {
            FetchOutcome::Continue
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    #[allow(clippy::too_many_arguments)] // one field per argument, built in one place
    fn make_inflight(
        &mut self,
        seq: u64,
        pc: u64,
        inst: &Inst,
        wrong_path: bool,
        mem_addr: Option<u64>,
        branch: Option<BranchInfo>,
        is_exit: bool,
    ) -> InFlight {
        InFlight {
            seq,
            pc,
            op: inst.op,
            wrong_path,
            arch_dst: inst.dst,
            arch_srcs: [inst.src1, inst.src2],
            dst: None,
            srcs: SrcTags::new(),
            mem_addr,
            branch,
            completed: false,
            fetched_at: self.now,
            fifo_time: Time::ZERO,
            is_exit,
        }
    }

    fn push_fetched(&mut self, inf: InFlight) {
        let seq = inf.seq;
        let wrong = inf.wrong_path;
        self.inflight.insert(inf);
        self.ch_fetch_decode
            .try_push(seq, self.now)
            .expect("push guarded by can_push");
        self.note_transfer(Domain::Fetch, Domain::Decode);
        self.fetched += 1;
        if wrong {
            self.wrong_path_fetched += 1;
        }
    }

    fn process_redirect(&mut self, r: Redirect) {
        // Drop stale redirects for branches already squashed.
        if self.pending_recovery != Some(r.branch_seq) {
            return;
        }
        let now = self.now;
        let bseq = r.branch_seq;

        // Squash younger state everywhere. The walks write into one reused
        // scratch buffer: recovery allocates nothing even when mispredicts
        // are frequent (sweep workloads run branchy configurations hot).
        let mut scratch = std::mem::take(&mut self.squash_scratch);
        self.rob.squash_younger_into(bseq, &mut scratch);
        debug_assert!(scratch.iter().all(|&s| s > bseq));
        let recovered = self.rename.recover(bseq);
        debug_assert!(recovered, "mispredicted branch must hold a checkpoint");
        for cl in &mut self.clusters {
            cl.iq.squash_younger_into(bseq, &mut scratch);
            cl.executing.retain(|&(_, s)| s <= bseq);
        }
        scratch.clear();
        self.squash_scratch = scratch;
        self.store_buffer.squash_younger(bseq);
        self.decode_buf.retain(|&s| s <= bseq);
        self.ch_fetch_decode.flush_where(now, |&s| s <= bseq);
        for ch in &mut self.ch_dispatch {
            ch.flush_where(now, |&s| s <= bseq);
        }
        for ch in &mut self.ch_complete {
            ch.flush_where(now, |&s| s <= bseq);
        }
        // Wakeup channels carry register tags, not sequence numbers; stale
        // tags are tolerated (module docs).
        self.inflight.remove_younger(bseq, self.next_seq);

        // Resume correct-path fetch.
        self.wrong_path = false;
        self.wrong_pc = EXIT_PC;
        debug_assert_eq!(
            r.target_pc, self.fetch_pc,
            "recovery target must match the architectural cursor"
        );
        self.icache_stall = 0;
        self.pending_recovery = None;
    }

    // ------------------------------------------------------------------
    // Domain 2: decode, rename, dispatch, commit
    // ------------------------------------------------------------------

    fn tick_decode(&mut self) {
        let now = self.now;
        self.decode_cycle += 1;
        self.accountant.tick_domain(Domain::Decode);

        // 1. Absorb completions.
        for ci in 0..3 {
            while let Some((seq, res)) = self.ch_complete[ci].try_pop_timed(now) {
                // Stale messages for squashed instructions are no-ops.
                if let Some(inf) = self.inflight.get_mut(seq) {
                    inf.fifo_time += res;
                    inf.completed = true;
                }
            }
        }

        // 2. Commit. (The budget check keeps runs with different clockings
        // at exactly equal committed counts for paired comparisons.)
        let mut commits = 0;
        while commits < self.cfg.uarch.commit_width && self.committed < self.limits.max_insts {
            let Some((head_seq, _, _)) = self.rob.head() else {
                break;
            };
            // Hold a mispredicted branch at the head until its recovery has
            // executed: the checkpoint must survive, and nothing younger
            // (wrong-path) may commit.
            if self.pending_recovery == Some(head_seq) {
                break;
            }
            // Completion is tracked on the in-flight entry (O(1) ring probe
            // instead of a ROB search per completion message).
            if !self.inflight.get(head_seq).is_some_and(|i| i.completed) {
                break;
            }
            let (seq, _) = self.rob.pop_head().expect("head exists");
            let inf = self
                .inflight
                .remove(seq)
                .expect("committing unknown instruction");
            debug_assert!(!inf.wrong_path, "wrong-path instruction reached commit");
            if let Some((arch, new_tag, old)) = inf.dst {
                let _ = new_tag;
                self.rename.commit_release(arch, old);
            }
            if inf.op.is_branch() {
                self.rename.release_checkpoint(seq);
            }
            if inf.op == OpClass::Store {
                self.store_buffer.retire_through(seq);
            }
            self.slip_total += now - inf.fetched_at;
            self.slip_fifo += inf.fifo_time;
            self.committed += 1;
            self.last_commit_time = now;
            if inf.is_exit {
                self.halted = true;
            }
            commits += 1;
        }

        // Deadlock watchdog (development aid).
        let wd = self.limits.watchdog_cycles;
        if wd > 0 && !self.done() {
            let span = self.cfg.clocking.max_period() * wd;
            assert!(
                now.saturating_sub(self.last_commit_time) < span,
                "no commit for {wd} cycles at {now}: committed={} rob={} iq=[{},{},{}] \
                 pending_recovery={:?} fetch_halted={} wrong_path={}",
                self.committed,
                self.rob.len(),
                self.clusters[0].iq.len(),
                self.clusters[1].iq.len(),
                self.clusters[2].iq.len(),
                self.pending_recovery,
                self.fetch_halted,
                self.wrong_path,
            );
        }

        // 3. Rename + dispatch, in order, stalling at the first hazard.
        let mut renamed = 0;
        while renamed < self.cfg.uarch.decode_width {
            let Some(&seq) = self.decode_buf.front() else {
                break;
            };
            if !self.rob.has_space() {
                break;
            }
            // One in-flight probe covers the whole rename: the borrow of
            // `self.inflight` coexists with the disjoint borrows of the
            // rename unit, ROB, store buffer and channels below.
            let inf = self
                .inflight
                .get_mut(seq)
                .expect("decoded instruction vanished");
            let op = inf.op;
            let is_branch = op.is_branch();
            if is_branch && !self.rename.can_checkpoint() {
                break;
            }
            // Stores reserve their buffer slot here, in program order, so an
            // older store can never be starved by younger out-of-order
            // stores (deadlock avoidance; see gals_uarch::StoreBuffer).
            if op == OpClass::Store && !self.store_buffer.has_space() {
                break;
            }
            let ci = cluster_index(inf.cluster());
            if !self.ch_dispatch[ci].can_push(now) {
                break;
            }
            // Rename sources first (RAW within the group resolves to the
            // younger mapping naturally because older group members already
            // updated the RAT this cycle). The architectural operands were
            // captured at fetch, so rename needs no PC re-locate.
            let mut src_tags = SrcTags::new();
            for r in inf.arch_srcs.into_iter().flatten() {
                src_tags.push(Tag::new(self.rename.lookup(r), r.is_fp()));
            }
            let dst = if let Some(d) = inf.arch_dst {
                match self.rename.rename_dst(d) {
                    Ok(renamed_dst) => {
                        Some((d, Tag::new(renamed_dst.new, d.is_fp()), renamed_dst.old))
                    }
                    Err(_) => break, // out of physical registers: stall
                }
            } else {
                None
            };
            if is_branch {
                self.rename.checkpoint(seq);
            }
            inf.srcs = src_tags;
            inf.dst = dst;
            // Producer-side wakeup filter: register this consumer's cluster
            // against each source tag, or — when the producer has already
            // broadcast — mark the operand ready in this cluster's view now
            // (the rename-time busy-bit read; see `wakeup_interest` docs).
            if self.cfg.cross_cluster_wakeup_filter {
                for t in src_tags.iter() {
                    if self.wakeup_interest[t.index()] & WAKEUP_DONE != 0 {
                        self.clusters[ci].ready[t.index()] = true;
                    } else {
                        self.wakeup_interest[t.index()] |= 1 << ci;
                    }
                }
            }
            // Mark the destination not-ready in every cluster view (and
            // reset the filter state of the tag's fresh allocation).
            if let Some((_, tag, _)) = dst {
                self.wakeup_interest[tag.index()] = 0;
                for cl in &mut self.clusters {
                    cl.ready[tag.index()] = false;
                }
            }
            if op == OpClass::Store {
                self.store_buffer.reserve(seq).expect("space checked above");
            }
            self.rob.alloc(seq, seq).expect("space checked above");
            self.ch_dispatch[ci]
                .try_push(seq, now)
                .expect("push guarded by can_push");
            self.note_transfer(Domain::Decode, CLUSTER_DOMAINS[ci]);
            self.decode_buf.pop_front();
            renamed += 1;
        }

        // 4. Decode: pull from the fetch channel into the decode buffer.
        let mut decoded = 0;
        while decoded < self.cfg.uarch.decode_width
            && self.decode_buf.len() < 2 * self.cfg.uarch.decode_width as usize
        {
            let Some((seq, res)) = self.ch_fetch_decode.try_pop_timed(now) else {
                break;
            };
            if let Some(inf) = self.inflight.get_mut(seq) {
                inf.fifo_time += res;
                self.decode_buf.push_back(seq);
            }
            // (A flushed-but-raced seq simply evaporates.)
            decoded += 1;
        }

        self.accountant
            .block_cycle(MacroBlock::RenameLogic, renamed > 0 || decoded > 0);
        self.accountant
            .block_cycle(MacroBlock::RegisterFile, renamed > 0 || commits > 0);
        self.rename.sample_occupancy();
        self.rob.sample_occupancy();
    }

    // ------------------------------------------------------------------
    // Domains 3/4/5: the execution clusters
    // ------------------------------------------------------------------

    fn tick_cluster(&mut self, ci: usize) {
        let now = self.now;
        self.clusters[ci].cycle += 1;
        let domain = self.clusters[ci].domain;
        self.accountant.tick_domain(domain);

        // 1. Apply cross-domain wakeups.
        for from in 0..3 {
            if from == ci {
                continue;
            }
            while let Some(tag) = self.ch_wakeup[from][ci].try_pop(now) {
                let cl = &mut self.clusters[ci];
                cl.ready[tag.index()] = true;
                cl.iq.wakeup(tag.as_iq_tag());
            }
        }

        // 2. Writeback of finished executions. The scratch buffer lives in
        // the cluster and is moved out for the duration of the walk so
        // `writeback(&mut self)` can run while it is held.
        let cycle = self.clusters[ci].cycle;
        let mut finished = std::mem::take(&mut self.clusters[ci].finished_scratch);
        finished.clear();
        self.clusters[ci].executing.retain(|&(done, seq)| {
            if done <= cycle {
                finished.push(seq);
                false
            } else {
                true
            }
        });
        finished.sort_unstable();
        for &seq in &finished {
            self.writeback(ci, seq);
        }
        self.clusters[ci].finished_scratch = finished;

        // 3. Select + issue.
        let issued = self.issue(ci);

        // 4. Fill the IQ from the dispatch channel. The outstanding-source
        // tags stream straight into the queue's inline storage — no
        // per-instruction `Vec`.
        let mut inserted = 0;
        while self.clusters[ci].iq.has_space() {
            let Some((seq, res)) = self.ch_dispatch[ci].try_pop_timed(now) else {
                break;
            };
            let Some(inf) = self.inflight.get_mut(seq) else {
                continue;
            };
            inf.fifo_time += res;
            let ClusterState { iq, ready, .. } = &mut self.clusters[ci];
            iq.insert(
                seq,
                seq,
                inf.srcs
                    .iter()
                    .filter(|t| !ready[t.index()])
                    .map(|t| t.as_iq_tag()),
            )
            .expect("space checked by has_space");
            inserted += 1;
        }

        // 5. Power activity.
        let cl = &mut self.clusters[ci];
        cl.iq.sample_occupancy();
        let iq_active = !cl.iq.is_empty() || inserted > 0;
        let alu_active = issued > 0 || !cl.executing.is_empty();
        let (iq_block, alu_block) = match ci {
            0 => (MacroBlock::IntIssueWindow, MacroBlock::IntAlus),
            1 => (MacroBlock::FpIssueWindow, MacroBlock::FpAlus),
            _ => (MacroBlock::MemIssueWindow, MacroBlock::FpAlus), // alu handled below
        };
        self.accountant.block_cycle(iq_block, iq_active);
        if ci == 2 {
            // Memory cluster: charge the caches instead of ALUs.
            self.accountant
                .block_cycle(MacroBlock::DCache, issued > 0 || !cl.executing.is_empty());
            self.accountant
                .block_cycle(MacroBlock::L2Cache, self.l2_touched);
            self.l2_touched = false;
            let _ = alu_block;
        } else {
            self.accountant.block_cycle(alu_block, alu_active);
        }
        if ci == 2 {
            self.store_buffer.sample_occupancy();
        }
    }

    fn issue(&mut self, ci: usize) -> u32 {
        let now = self.now;
        let width = self.cfg.uarch.issue_width;
        let cycle = self.clusters[ci].cycle;
        // Reused per-tick scratch, moved out so the split borrows below
        // stay disjoint.
        let mut latencies = std::mem::take(&mut self.clusters[ci].latency_scratch);
        let mut picked = std::mem::take(&mut self.clusters[ci].picked_scratch);
        latencies.clear();
        // Split borrows: the IQ needs &mut independent of the rest.
        let ClusterState { iq, fus, .. } = &mut self.clusters[ci];
        let inflight = &self.inflight;
        let store_buffer = &mut self.store_buffer;
        let dcache = &mut self.dcache;
        let l2 = &mut self.l2;
        let l2_touched = &mut self.l2_touched;
        let mem_latency = self.cfg.uarch.mem_latency;
        let mut store_forwards = 0u64;

        iq.select_into(
            width,
            |seq| {
                let Some(inf) = inflight.get(seq) else {
                    return true; /* squash race: drop */
                };
                let base_lat = inf.op.exec_latency();
                match inf.op {
                    OpClass::Store => {
                        if !fus.try_issue(cycle, base_lat, true) {
                            return false;
                        }
                        let addr = inf.mem_addr.expect("stores carry addresses");
                        // Slot reserved at dispatch; fill the address now.
                        store_buffer.fill(seq, addr);
                        latencies.push((seq, u64::from(base_lat)));
                        true
                    }
                    OpClass::Load => {
                        if !fus.try_issue(cycle, base_lat, true) {
                            return false;
                        }
                        let addr = inf.mem_addr.expect("loads carry addresses");
                        let lat = if store_buffer.forwards_to(addr) {
                            store_forwards += 1;
                            u64::from(dcache.latency())
                        } else if dcache.access(addr) {
                            u64::from(dcache.latency())
                        } else {
                            u64::from(dcache.latency())
                                + u64::from(Self::l2_fill_latency_for(
                                    l2,
                                    l2_touched,
                                    addr,
                                    mem_latency,
                                ))
                        };
                        latencies.push((seq, lat));
                        true
                    }
                    op => {
                        if !fus.try_issue(cycle, op.exec_latency(), op.is_pipelined()) {
                            return false;
                        }
                        latencies.push((seq, u64::from(op.exec_latency())));
                        true
                    }
                }
            },
            &mut picked,
        );
        self.store_forwards_total += store_forwards;
        let issued = picked.len() as u32;
        self.issued_total += u64::from(issued);
        for &seq in &picked {
            if self
                .inflight
                .get(seq)
                .map(|i| i.wrong_path)
                .unwrap_or(false)
            {
                self.issued_wrong_path += 1;
            }
        }
        for &seq in &picked {
            let lat = latencies
                .iter()
                .find(|(s, _)| *s == seq)
                .map(|&(_, l)| l)
                .unwrap_or(1);
            self.clusters[ci].executing.push((cycle + lat.max(1), seq));
        }
        latencies.clear();
        picked.clear();
        self.clusters[ci].latency_scratch = latencies;
        self.clusters[ci].picked_scratch = picked;
        let _ = now;
        issued
    }

    fn writeback(&mut self, ci: usize, seq: u64) {
        let now = self.now;
        let Some(inf) = self.inflight.get(seq) else {
            return;
        };
        let dst = inf.dst;
        let is_mispredict = inf
            .branch
            .map(|b| b.mispredicted && !inf.wrong_path)
            .unwrap_or(false);
        let recovery_pc = inf.branch.map(|b| b.recovery_pc).unwrap_or(EXIT_PC);

        // Local + remote wakeup. With the producer-side filter on, remote
        // clusters receive the tag only when they registered a consumer at
        // rename; later consumers take the WAKEUP_DONE path instead.
        if let Some((_, tag, _)) = dst {
            let cl = &mut self.clusters[ci];
            cl.ready[tag.index()] = true;
            cl.iq.wakeup(tag.as_iq_tag());
            let filter = self.cfg.cross_cluster_wakeup_filter;
            let interest = self.wakeup_interest[tag.index()];
            for to in 0..CLUSTER_DOMAINS.len() {
                if to == ci || (filter && interest & (1 << to) == 0) {
                    continue;
                }
                self.ch_wakeup[ci][to]
                    .try_push(tag, now)
                    .expect("wakeup channel sized to never fill");
                self.note_wakeup_transfer(ci, to);
            }
            if filter {
                self.wakeup_interest[tag.index()] = WAKEUP_DONE;
            }
        }

        // Mispredicted branch: launch the redirect.
        if is_mispredict {
            debug_assert!(
                self.pending_recovery.is_none(),
                "only one correct-path misprediction can be outstanding"
            );
            self.pending_recovery = Some(seq);
            self.ch_redirect
                .try_push(
                    Redirect {
                        branch_seq: seq,
                        target_pc: recovery_pc,
                    },
                    now,
                )
                .expect("redirect channel sized to never fill");
            self.note_transfer(CLUSTER_DOMAINS[ci], Domain::Fetch);
        }

        // Completion notice to the ROB.
        self.ch_complete[ci]
            .try_push(seq, now)
            .expect("completion channel sized to never fill");
        self.note_transfer(CLUSTER_DOMAINS[ci], Domain::Decode);
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Finalises the run into a [`SimReport`]. `exec_time` is the timestamp
    /// of the last processed event.
    pub fn into_report(mut self, exec_time: Time) -> SimReport {
        // FIFO transfer energy (GALS only): every push and pop toggles the
        // FIFO's synchronisers and data latches.
        let mut channel_ops = 0u64;
        let mut add = |st: gals_clocks::ChannelStats| {
            channel_ops += st.pushes + st.pops;
        };
        add(self.ch_fetch_decode.stats());
        add(self.ch_redirect.stats());
        for ch in &self.ch_dispatch {
            add(ch.stats());
        }
        for ch in &self.ch_complete {
            add(ch.stats());
        }
        for row in &self.ch_wakeup {
            for ch in row {
                add(ch.stats());
            }
        }
        if self.cfg.clocking.is_gals() {
            self.accountant.fifo_access(channel_ops);
        }

        // Pausible clocking: the local clock trees stay driven over the
        // *effective* (stretched) period, so stretch time burns local grid
        // energy like ordinary cycles, pro-rated in nominal-cycle units.
        if let Clocking::Pausible { clocks, .. } = &self.cfg.clocking {
            for d in Domain::ALL {
                let i = d.index();
                if self.stretch_time[i] > Time::ZERO {
                    let extra_cycles =
                        self.stretch_time[i].as_fs() as f64 / clocks[i].period.as_fs() as f64;
                    self.accountant.stretched_clock(d, extra_cycles);
                }
            }
        }

        SimReport {
            committed: self.committed,
            fetched: self.fetched,
            wrong_path_fetched: self.wrong_path_fetched,
            exec_time,
            domain_cycles: [
                self.fetch_cycles,
                self.decode_cycle,
                self.clusters[0].cycle,
                self.clusters[1].cycle,
                self.clusters[2].cycle,
            ],
            slip_total: self.slip_total,
            slip_fifo: self.slip_fifo,
            bpred: self.bpred.stats(),
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            l2: self.l2.stats(),
            iq: [
                self.clusters[0].iq.stats(),
                self.clusters[1].iq.stats(),
                self.clusters[2].iq.stats(),
            ],
            rob_mean_occupancy: self.rob.mean_occupancy(),
            rat_mean_occupancy: self.rename.mean_occupancy(),
            rat_peak_occupancy: self.rename.peak_occupancy(),
            store_forwards: self.store_forwards_total,
            issued: self.issued_total,
            issued_wrong_path: self.issued_wrong_path,
            channel_ops,
            stretches: self.stretch_events,
            stretch_time: self.stretch_time,
            energy: self.accountant.breakdown(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchOutcome {
    Continue,
    Stop,
}

fn cluster_index(c: Cluster) -> usize {
    match c {
        Cluster::Int => 0,
        Cluster::Fp => 1,
        Cluster::Mem => 2,
    }
}
