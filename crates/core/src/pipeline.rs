//! The eight-stage out-of-order pipeline over five clock domains — the
//! heart of both processor models.
//!
//! Stage-to-domain mapping (the paper's Table 2):
//!
//! | # | Stage                       | Domain      |
//! |---|-----------------------------|-------------|
//! | 1 | Fetch from I-cache          | 1 (fetch)   |
//! | 2 | Decode                      | 2 (decode)  |
//! | 3 | Rename, regfile read        | 2           |
//! | 4 | Dispatch into issue queue   | 2 → 3/4/5   |
//! | 5 | Issue to functional unit    | 3/4/5       |
//! | 6 | Execute                     | 3/4/5       |
//! | 7 | Wakeup, writeback           | 3/4/5       |
//! | 8 | Regfile write, commit       | 3/4/5 → 2   |
//!
//! Every arrow is a [`Channel`]: a 1-cycle pipeline latch in the
//! synchronous machine, a mixed-clock FIFO in the GALS machine. All other
//! behaviour is byte-identical between the two models, which is what makes
//! the paper's comparison meaningful.
//!
//! ## The handle-based instruction store
//!
//! Instruction state lives once, in the slab-backed [`InFlightTable`];
//! everything that flows between stages — the decode buffer, the ROB, the
//! issue-queue tokens, every inter-domain channel — is an 8-byte
//! [`InstrId`] handle. See `crate::inflight` for the hot/cold
//! struct-of-arrays layout and the stale-handle semantics.
//!
//! ## Quiescence and idle-tick elision
//!
//! [`Pipeline::quiescent`] reports when a domain's next tick is provably a
//! pure *idle tick* — advancing only its cycle counter, idle energy and
//! occupancy samples, all of which [`Pipeline::replay_idle`] can apply
//! later in bulk, bit-identically. The `ClockSet` driver in `crate::sim`
//! uses this to park quiescent domain clocks and fast-forward them to the
//! next wake event; [`Pipeline::take_wake_mask`] surfaces the wake edges
//! (channel pushes into the domain, a fetch-side L2 touch for the memory
//! cluster). The general-engine oracle never elides, and the differential
//! tests pin that the two reports stay bit-identical — see the idle-tick
//! elision contract in `gals_events`.
//!
//! ## Modelling notes (divergences from RTL truth)
//!
//! * Branch predictor training happens at fetch (immediate update) rather
//!   than at resolution; the misprediction *penalty* is still paid through
//!   the resolve-and-redirect loop. Identical in both machines.
//! * Wakeup tags crossing domains use generously sized channels (the bypass
//!   network is not a literal queue); a stale in-flight wakeup can in rare
//!   interleavings mark a freshly reallocated register ready a few cycles
//!   early. The effect is orders of magnitude below the FIFO latencies
//!   being measured.
//! * The store buffer drains logically at commit; the cache write is
//!   charged at issue time.

use std::collections::VecDeque;

use gals_clocks::{Channel, Domain, PausibleModel};
use gals_events::Time;
use gals_isa::{Cluster, DynStream, Inst, OpClass, Program, EXIT_PC};
use gals_power::{MacroBlock, PowerAccountant};
use gals_uarch::{BranchPredictor, Cache, FuPool, IssueQueue, RenameUnit, Rob, StoreBuffer};

use crate::config::{Clocking, ProcessorConfig, SimLimits};
use crate::error::{DeadlockReport, DeadlockTrigger, PortState};
use crate::inflight::{
    BranchInfo, FetchedInstr, InFlightTable, InstrId, Redirect, SrcTags, Tag, TAG_SPACE,
};
use crate::report::SimReport;

/// Salt mixed into wrong-path memory-address hashing so speculative loads
/// touch plausible but distinct addresses.
const WRONG_PATH_SALT: u64 = 0xD00D_F00D_5EED_0001;

/// Clock domain of each execution cluster, indexed like `Pipeline::clusters`.
const CLUSTER_DOMAINS: [Domain; 3] = [Domain::IntCluster, Domain::FpCluster, Domain::MemCluster];

/// `wakeup_interest` flag: the producer of this tag has already run its
/// writeback broadcast (bits 0..=2 hold per-cluster consumer interest).
const WAKEUP_DONE: u8 = 1 << 7;

/// A `TAG_SPACE`-wide bitset: cluster-local operand availability packed
/// 64 tags per word (two cache lines instead of a 1 KB byte array — the
/// rename stage writes one bit in every cluster's view per destination,
/// so density matters).
struct ReadyBits([u64; TAG_SPACE / 64]);

impl ReadyBits {
    fn all_ready() -> Self {
        ReadyBits([u64::MAX; TAG_SPACE / 64])
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        self.0[idx >> 6] & (1 << (idx & 63)) != 0
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.0[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.0[idx >> 6] &= !(1 << (idx & 63));
    }
}

/// One execution cluster (domains 3, 4, 5).
struct ClusterState {
    domain: Domain,
    iq: IssueQueue,
    fus: FuPool,
    /// Cluster-local operand availability, indexed by `Tag::index`.
    ready: ReadyBits,
    /// `(done_at_local_cycle, seq, id)` of instructions in execution.
    executing: Vec<(u64, u64, InstrId)>,
    /// Local cycle counter.
    cycle: u64,
    /// Per-tick scratch: instructions finishing execution this cycle,
    /// `(seq, id)`. Hoisted out of `tick_cluster` so the steady-state path
    /// allocates nothing.
    finished_scratch: Vec<(u64, InstrId)>,
    /// Per-tick scratch: tokens picked by issue selection.
    picked_scratch: Vec<u64>,
    /// Per-tick scratch: `(token, seq, latency)` of admitted instructions.
    latency_scratch: Vec<(u64, u64, u64)>,
    /// Rendezvous mode only: finished executions whose writeback is parked
    /// on an occupied outbound port (completion, wakeup or redirect), as
    /// `(seq, id)` in program order. Retried every tick; always empty in
    /// the latched machines.
    writeback_pending: Vec<(u64, InstrId)>,
}

impl ClusterState {
    fn new(domain: Domain, iq_size: usize, fu_count: u32, rob_size: usize) -> Self {
        ClusterState {
            domain,
            iq: IssueQueue::new(iq_size),
            fus: FuPool::new(fu_count),
            ready: ReadyBits::all_ready(),
            // In-flight executions are bounded by the ROB (everything
            // executing holds a ROB entry); sizing to that bound keeps the
            // steady-state loop allocation-free even when a burst of
            // long-latency misses piles up.
            executing: Vec::with_capacity(rob_size),
            cycle: 0,
            finished_scratch: Vec::with_capacity(rob_size),
            picked_scratch: Vec::with_capacity(2 * fu_count as usize),
            latency_scratch: Vec::with_capacity(2 * fu_count as usize),
            writeback_pending: Vec::with_capacity(rob_size),
        }
    }
}

/// The complete microarchitectural state of one simulated processor.
///
/// Driven by the event engine: each domain's periodic clock event calls
/// [`Pipeline::tick`].
pub struct Pipeline<'p> {
    program: &'p Program,
    cfg: ProcessorConfig,
    limits: SimLimits,

    // ---- front end (domain 1) ----
    stream: DynStream<'p>,
    peeked: Option<gals_isa::DynInst>,
    fetch_pc: u64,
    wrong_path: bool,
    wrong_pc: u64,
    fetch_halted: bool,
    icache: Cache,
    bpred: BranchPredictor,
    icache_stall: u32,
    /// `log2(l1i line bytes)` — the per-fetch line-boundary check is a
    /// shift, not a division.
    l1i_line_shift: u32,

    // ---- decode/rename/commit (domain 2) ----
    decode_buf: VecDeque<InstrId>,
    rename: RenameUnit,
    /// Enforces program order only: completion is tracked on the in-flight
    /// table (the `completed` hot flag), so `Rob::complete`/`RobStatus` are
    /// deliberately not driven here — the head is popped with
    /// [`Rob::pop_head`] once its in-flight entry reports complete. Do not
    /// read this ROB's per-entry status.
    rob: Rob<InstrId>,
    decode_cycle: u64,

    // ---- clusters (domains 3, 4, 5) ----
    clusters: [ClusterState; 3],
    store_buffer: StoreBuffer,
    dcache: Cache,
    l2: Cache,
    l2_touched: bool,

    // ---- channels ----
    ch_fetch_decode: Channel<InstrId>,
    ch_dispatch: [Channel<InstrId>; 3],
    ch_complete: [Channel<InstrId>; 3],
    /// Wakeup tag channels `[from][to]` (diagonal unused).
    ch_wakeup: [[Channel<Tag>; 3]; 3],
    ch_redirect: Channel<Redirect>,

    // ---- bookkeeping ----
    inflight: InFlightTable,
    next_seq: u64,
    /// The one unresolved-recovery mispredicted branch (see module docs of
    /// `inflight`): set at resolution, cleared when fetch recovers.
    pending_recovery: Option<u64>,
    committed: u64,
    fetched: u64,
    wrong_path_fetched: u64,
    /// Reusable recovery scratch for the ROB squash walk, so branch
    /// recovery allocates nothing even under branchy sweep workloads.
    rob_squash_scratch: Vec<InstrId>,
    /// Reusable recovery scratch for the IQ squash walks (opaque tokens).
    squash_scratch: Vec<u64>,
    slip_total: Time,
    slip_fifo: Time,
    store_forwards_total: u64,
    issued_total: u64,
    issued_wrong_path: u64,
    /// Pausible clocking: handshake duration charged to both endpoint
    /// clocks per inter-domain transfer; `None` in the synchronous and
    /// FIFO-GALS machines.
    stretch_handshake: Option<Time>,
    /// Rendezvous pausible mode (`PausibleModel::Rendezvous`): every
    /// inter-domain channel is a single-entry rendezvous port and the push
    /// sites park-and-retry against an occupied port. `false` everywhere
    /// else (the counters below then stay zero).
    rendezvous: bool,
    /// Cycles in which a domain's stage made *no* progress because its
    /// rendezvous port was occupied (fetch pushed nothing, decode renamed
    /// nothing, a cluster wrote back nothing — at most one per domain per
    /// tick), indexed by [`Domain::index`]. Rendezvous mode only.
    rendezvous_blocked: [u64; 5],
    /// Stretch time accumulated since the driver last drained it, indexed
    /// by [`Domain::index`].
    pending_stretch: [Time; 5],
    /// Fast-path flag: whether `pending_stretch` holds anything.
    stretch_pending: bool,
    /// Lifetime stretch-event count per domain (each transfer counts once
    /// at each endpoint).
    stretch_events: [u64; 5],
    /// Lifetime stretch time per domain.
    stretch_time: [Time; 5],
    /// Wakeup-coalescing state (pausible + `coalesce_wakeup_stretch` only):
    /// the last producer-cluster cycle in which a wakeup handshake was
    /// charged on link `[from][to]`. Further wakeup tags pushed on the same
    /// link in the same cycle ride the already-paid handshake.
    wakeup_stretch_cycle: [[u64; 3]; 3],
    /// Producer-side dependence-filter state per wakeup tag (all zero
    /// unless `cfg.cross_cluster_wakeup_filter`): bits 0..=2 record which
    /// clusters renamed a consumer of the tag's current allocation;
    /// [`WAKEUP_DONE`] records that the producer's writeback broadcast has
    /// already run.
    ///
    /// Deadlock-freedom: a consumer renamed *before* the producer's
    /// writeback registers interest here, so the wakeup is delivered to its
    /// cluster; a consumer renamed *after* sees [`WAKEUP_DONE`] and marks
    /// the operand ready in its cluster view at rename (the busy-bit table
    /// read real rename stages do — the value is in the register file by
    /// then). Either way every dependent observes the wakeup.
    wakeup_interest: Box<[u8]>,
    halted: bool,
    last_commit_time: Time,
    /// Precomputed watchdog window (`max domain period × watchdog_cycles`);
    /// `Time::MAX` disables (the per-tick check is a compare, not a scan).
    watchdog_span: Time,
    /// Set (once) when the machine is detected wedged — by the commit
    /// watchdog or by the driver's all-parked check. [`Pipeline::done`]
    /// then reports the run finished so both drivers exit their loops, and
    /// they surface the report as `SimError::Deadlock` instead of a
    /// `SimReport`.
    deadlock: Option<Box<DeadlockReport>>,
    /// The static analyzer's pre-flight verdict (worst warning's code),
    /// stamped by the drivers so a deadlock report can cross-reference
    /// it. Cold: read only when a report is built.
    static_finding: Option<String>,
    fetch_cycles: u64,
    pub(crate) accountant: PowerAccountant,
    now: Time,

    // ---- idle-tick elision (ClockSet driver only; see module docs) ----
    /// Domains whose parked clock must wake now, as a `1 << Domain::index`
    /// mask. Raised by channel pushes into the domain and by the fetch-side
    /// L2 touch; drained by the driver after every tick.
    wake_mask: u8,
    /// Domains whose tick just ended quiescent, as a `1 << Domain::index`
    /// mask: each tick re-evaluates its own cheap quiescence conditions on
    /// the way out (the activity flags are already at hand), so the driver
    /// parks on the first idle tick instead of polling
    /// [`Pipeline::quiescent`].
    quiesced_mask: u8,
    /// Driver-maintained mirror of which domain clocks are parked.
    parked: [bool; 5],
    /// Why fetch parked (see [`Pipeline::set_parked`]): `true` when it was
    /// blocked on a full fetch→decode channel, so elided ticks replay as
    /// repeated I-cache hits instead of idle cycles.
    fetch_park_blocked: bool,
    /// ROB and RAT occupancies frozen when decode parked: the elided
    /// decode ticks sample these values (a recovery squash in the very
    /// instant decode is woken mutates both, but strictly after every
    /// elided tick).
    decode_park_occ: (usize, u32),
    /// Why decode parked (rendezvous mode only): `true` when the rename
    /// head was blocked on a saturated dispatch rendezvous port, so every
    /// elided decode tick replays one `rendezvous_blocked` cycle (the live
    /// tick's rename loop would have broken at the port).
    decode_park_blocked: bool,
    /// Per-channel cursors over a *parked* cluster's virtual edge grid —
    /// `[from][to]`, the next edge at or after the channel's last replayed
    /// wakeup pop. Each channel's pops replay in time order (cross-channel
    /// interleaving is irrelevant: only the per-pop edge matters), so
    /// advancing a cursor by whole periods replaces a ceiling division
    /// per pop.
    virtual_edge: [[Time; 3]; 3],
    /// Fetch-side L2 touches charged while the memory cluster is parked:
    /// the number of distinct (elided) memory-cluster edges that would
    /// have consumed the `l2_touched` flag, and the last such edge. The
    /// accountant is count-based, so replaying these as active-L2 cycles
    /// at unpark is bit-identical to the unelided schedule (see
    /// `replay_idle`).
    parked_l2_charges: u64,
    parked_l2_last_edge: Time,
    /// Per-domain `(first edge, period)` when the clock grids are static
    /// (synchronous and FIFO-GALS machines); `None` under pausible
    /// clocking, whose stretches shift the grids. A static grid lets a
    /// *parked* cluster keep absorbing broadcast wakeup tags exactly: the
    /// elided pop times are computable, so tag pops are replayed at decode
    /// ticks (before any rename touches the ready bits) instead of waking
    /// the cluster — see [`Pipeline::catch_up_parked_wakeups`].
    static_grid: Option<[(Time, Time); 5]>,
}

impl<'p> Pipeline<'p> {
    /// Builds the pipeline for a program under a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(program: &'p Program, cfg: ProcessorConfig, limits: SimLimits) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid processor configuration: {e}"));
        let u = &cfg.uarch;
        let mk_data_channel = |from: Domain, to: Domain, cap: usize| -> Channel<InstrId> {
            Self::make_channel(&cfg, from, to, cap)
        };
        let clusters = [
            ClusterState::new(Domain::IntCluster, u.int_iq_size, u.int_alus, u.rob_size),
            ClusterState::new(Domain::FpCluster, u.fp_iq_size, u.fp_alus, u.rob_size),
            ClusterState::new(Domain::MemCluster, u.mem_iq_size, u.mem_ports, u.rob_size),
        ];
        let ch_dispatch = std::array::from_fn(|i| {
            mk_data_channel(Domain::Decode, CLUSTER_DOMAINS[i], cfg.channel_capacity)
        });
        let ch_complete = std::array::from_fn(|i| {
            mk_data_channel(
                CLUSTER_DOMAINS[i],
                Domain::Decode,
                cfg.side_channel_capacity,
            )
        });
        let ch_wakeup = std::array::from_fn(|from| {
            std::array::from_fn(|to| {
                Self::make_channel::<Tag>(
                    &cfg,
                    CLUSTER_DOMAINS[from],
                    CLUSTER_DOMAINS[to],
                    cfg.side_channel_capacity,
                )
            })
        });
        let mut accountant = PowerAccountant::new(cfg.energy.clone());
        if cfg.clocking.is_synchronous() {
            if cfg.dvfs.is_active() {
                accountant.set_global_voltage_factor(cfg.dvfs.energy_factor(Domain::Fetch));
            }
        } else {
            // GALS and pausible machines scale supplies per domain.
            for d in Domain::ALL {
                accountant.set_domain_voltage_factor(d, cfg.dvfs.energy_factor(d));
            }
        }

        let mut stream = DynStream::new(program);
        let peeked = stream.next();
        let fetch_pc = peeked.as_ref().map_or(EXIT_PC, |d| d.pc);
        let static_grid = match &cfg.clocking {
            Clocking::Pausible { .. } => None,
            _ => Some(std::array::from_fn(|i| {
                let clock = cfg.clocking.domain_clock(Domain::ALL[i]);
                (clock.phase, clock.period)
            })),
        };

        Pipeline {
            ch_fetch_decode: mk_data_channel(Domain::Fetch, Domain::Decode, cfg.channel_capacity),
            ch_redirect: Self::make_channel(
                &cfg,
                Domain::IntCluster,
                Domain::Fetch,
                cfg.side_channel_capacity,
            ),
            ch_dispatch,
            ch_complete,
            ch_wakeup,
            icache: Cache::new(u.l1i),
            bpred: BranchPredictor::new(u.bpred),
            icache_stall: 0,
            l1i_line_shift: u.l1i.line_bytes.trailing_zeros(),
            decode_buf: VecDeque::with_capacity(2 * u.decode_width as usize),
            rename: RenameUnit::new(u.int_phys_regs, u.fp_phys_regs, u.max_branches),
            rob: Rob::new(u.rob_size),
            decode_cycle: 0,
            clusters,
            store_buffer: StoreBuffer::new(u.store_buffer_size),
            dcache: Cache::new(u.l1d),
            l2: Cache::new(u.l2),
            l2_touched: false,
            inflight: InFlightTable::with_capacity(
                u.rob_size
                    + 2 * u.decode_width as usize
                    + cfg.channel_capacity
                    + u.fetch_width as usize
                    + 8,
            ),
            next_seq: 0,
            pending_recovery: None,
            committed: 0,
            fetched: 0,
            wrong_path_fetched: 0,
            rob_squash_scratch: Vec::with_capacity(u.rob_size),
            squash_scratch: Vec::with_capacity(u.int_iq_size.max(u.fp_iq_size).max(u.mem_iq_size)),
            slip_total: Time::ZERO,
            slip_fifo: Time::ZERO,
            store_forwards_total: 0,
            issued_total: 0,
            issued_wrong_path: 0,
            stretch_handshake: match &cfg.clocking {
                Clocking::Pausible { model, .. } => Some(model.handshake),
                _ => None,
            },
            rendezvous: matches!(
                &cfg.clocking,
                Clocking::Pausible {
                    transfer: PausibleModel::Rendezvous,
                    ..
                }
            ),
            rendezvous_blocked: [0; 5],
            pending_stretch: [Time::ZERO; 5],
            stretch_pending: false,
            stretch_events: [0; 5],
            stretch_time: [Time::ZERO; 5],
            wakeup_stretch_cycle: [[0; 3]; 3],
            wakeup_interest: vec![0u8; TAG_SPACE].into_boxed_slice(),
            halted: false,
            last_commit_time: Time::ZERO,
            watchdog_span: if limits.watchdog_cycles > 0 {
                cfg.clocking.max_period() * limits.watchdog_cycles
            } else {
                Time::MAX
            },
            deadlock: None,
            static_finding: None,
            fetch_cycles: 0,
            accountant,
            stream,
            peeked,
            fetch_pc,
            wrong_path: false,
            wrong_pc: EXIT_PC,
            fetch_halted: false,
            program,
            cfg,
            limits,
            now: Time::ZERO,
            wake_mask: 0,
            quiesced_mask: 0,
            parked: [false; 5],
            fetch_park_blocked: false,
            decode_park_occ: (0, 0),
            decode_park_blocked: false,
            virtual_edge: [[Time::ZERO; 3]; 3],
            parked_l2_charges: 0,
            parked_l2_last_edge: Time::MAX,
            static_grid,
        }
    }

    fn make_channel<T>(cfg: &ProcessorConfig, from: Domain, to: Domain, cap: usize) -> Channel<T> {
        match &cfg.clocking {
            Clocking::Synchronous(_) => Channel::sync_latch(cap),
            Clocking::Gals(clocks) => {
                let fwd = clocks[to.index()].period.scale(cfg.fifo_sync_periods);
                let bwd = clocks[from.index()].period.scale(cfg.fifo_sync_periods);
                Channel::mixed_clock_fifo(cap, fwd, bwd)
            }
            // Pausible clocking has no synchronisers: the transfer happens
            // with both clocks held, so the timing cost is paid as clock
            // stretch (see `note_transfer`). The latched model keeps the
            // full latch capacity (only timing is charged); the rendezvous
            // model strips every crossing to a single-entry port, so the
            // capacity cost of unbuffered handshakes is charged too.
            Clocking::Pausible { transfer, .. } => match transfer {
                PausibleModel::Latched => Channel::sync_latch(cap),
                PausibleModel::Rendezvous => Channel::rendezvous(),
            },
        }
    }

    /// Raises the wake edge of a domain. Gated on the domain actually
    /// being parked, so the steady-state (nothing parked) cost is one
    /// predictable branch and the driver's wake drain stays empty.
    #[inline]
    fn note_wake(&mut self, domain: Domain) {
        if self.parked[domain.index()] {
            self.wake_mask |= 1 << domain.index();
        }
    }

    /// Records one inter-domain transfer in pausible mode: both endpoint
    /// clocks stretch their current phase by the handshake duration while
    /// the arbiters settle and the data crosses (the paper's section-3.2
    /// objection, simulated). A transaction is charged at the *push*; the
    /// consumer-side pop reads a latch that is already local and costs
    /// nothing extra. No-op in the synchronous and FIFO-GALS machines.
    #[inline]
    fn note_transfer(&mut self, from: Domain, to: Domain) {
        let Some(handshake) = self.stretch_handshake else {
            return;
        };
        for d in [from, to] {
            let i = d.index();
            self.pending_stretch[i] += handshake;
            self.stretch_events[i] += 1;
            self.stretch_time[i] += handshake;
        }
        self.stretch_pending = true;
    }

    /// Records one cross-cluster wakeup transfer, coalescing the pausible
    /// handshake charge: with `coalesce_wakeup_stretch` on, all wakeup tags
    /// a producer cluster pushes onto one link within one local cycle share
    /// a single handshake (the arbitration is won once and the tag batch
    /// crosses together) instead of stretching both clocks once per tag.
    /// The tags themselves still travel individually. No-op difference
    /// outside pausible mode, where `note_transfer` charges nothing.
    #[inline]
    fn note_wakeup_transfer(&mut self, ci: usize, to: usize) {
        if self.stretch_handshake.is_some() && self.cfg.coalesce_wakeup_stretch {
            let cycle = self.clusters[ci].cycle;
            if self.wakeup_stretch_cycle[ci][to] == cycle {
                return;
            }
            self.wakeup_stretch_cycle[ci][to] = cycle;
        }
        self.note_transfer(CLUSTER_DOMAINS[ci], CLUSTER_DOMAINS[to]);
    }

    /// Drains the clock-stretch requests accumulated by pausible-mode
    /// transfers since the last call, indexed by [`Domain::index`]. The
    /// driver applies them to its scheduler — [`gals_events::ClockSet`]
    /// slots or [`gals_events::Engine`] periodic events — after the tick
    /// that produced them. Returns `None` when nothing is pending (always,
    /// outside pausible mode).
    pub fn take_stretch_requests(&mut self) -> Option<[Time; 5]> {
        if !self.stretch_pending {
            return None;
        }
        self.stretch_pending = false;
        Some(std::mem::take(&mut self.pending_stretch))
    }

    /// Drains the wake edges raised since the last call, as a
    /// `1 << Domain::index` mask. The `ClockSet` driver unparks (and
    /// back-fills, via [`Pipeline::replay_idle`]) any parked domain whose
    /// bit is set; bits for running domains are meaningless and ignored.
    #[inline]
    pub fn take_wake_mask(&mut self) -> u8 {
        std::mem::take(&mut self.wake_mask)
    }

    /// Drains the quiescent-tick reports raised since the last call, as a
    /// `1 << Domain::index` mask (see `quiesced_mask`). A set bit means
    /// the domain's most recent tick ended with [`Pipeline::quiescent`]
    /// true — the driver may park its clock.
    #[inline]
    pub fn take_quiesced_mask(&mut self) -> u8 {
        std::mem::take(&mut self.quiesced_mask)
    }

    /// True once the run is finished (instruction budget met, program
    /// fully drained, or a deadlock was detected — see
    /// [`Pipeline::take_deadlock`]).
    pub fn done(&self) -> bool {
        self.halted || self.committed >= self.limits.max_insts || self.deadlock.is_some()
    }

    /// Committed instructions so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    // ------------------------------------------------------------------
    // Quiescence, parking and idle-tick replay (ClockSet driver support)
    // ------------------------------------------------------------------

    /// True when `domain`'s next tick is provably a pure idle tick — and
    /// will stay one until a wake edge ([`Pipeline::take_wake_mask`])
    /// arrives from another domain. The driver may then park the domain's
    /// clock and later replay the elided ticks with
    /// [`Pipeline::replay_idle`].
    ///
    /// This is the conservative core predicate. The actual park decisions
    /// come from each tick's own quiescence report
    /// ([`Pipeline::take_quiesced_mask`]): the fetch and cluster ticks
    /// report exactly this predicate, while the decode tick reports a
    /// *wider* condition — it may also park with a non-empty ROB or
    /// decode buffer when this tick did nothing and the stalled rename
    /// head waits on a resource only another domain's (wake-raising)
    /// push or pop can release; see `decode_stall_is_external` in
    /// `tick_decode`.
    ///
    /// The conditions here are conservative by construction:
    ///
    /// * every domain: no pending (undrained) pausible stretch;
    /// * fetch: no redirect in flight, no I-cache fill counting down, and
    ///   nothing to fetch (front end halted, recovery pending, or the
    ///   cursor parked at the exit sentinel) — a fetch stalled on a *full*
    ///   output channel still probes the I-cache every cycle, so it is
    ///   never quiescent;
    /// * decode: ROB, decode buffer and every inbound channel empty;
    /// * clusters: issue queue, execution list, port-parked writeback
    ///   list (rendezvous mode) and inbound dispatch
    ///   channel empty — plus, for the memory cluster, no store-buffer
    ///   residue and no pending fetch-side L2 touch. Inbound *wakeup-tag*
    ///   channels must also be empty under pausible clocking; with static
    ///   clock grids the elided tag pops are replayed exactly instead
    ///   (see `Pipeline::catch_up_parked_wakeups`).
    pub fn quiescent(&self, domain: Domain) -> bool {
        if self.pending_stretch[domain.index()] > Time::ZERO {
            return false;
        }
        match domain {
            Domain::Fetch => {
                let pc = if self.wrong_path {
                    self.wrong_pc
                } else {
                    self.fetch_pc
                };
                self.ch_redirect.is_empty()
                    && self.icache_stall == 0
                    && (self.fetch_halted
                        || self.pending_recovery.is_some()
                        || pc == EXIT_PC
                        // Blocked on a full output channel: occupancy alone
                        // blocks the producer (no full-flag sync can clear
                        // without a pop, which wakes us), and each blocked
                        // tick is a repeated same-line I-cache hit — pure,
                        // replayable activity as long as the line is
                        // resident.
                        || (self.ch_fetch_decode.len() >= self.ch_fetch_decode.capacity()
                            && self.icache.probe(pc)))
            }
            Domain::Decode => {
                self.rob.is_empty()
                    && self.decode_buf.is_empty()
                    && self.ch_fetch_decode.is_empty()
                    && self.ch_complete.iter().all(|c| c.is_empty())
            }
            Domain::IntCluster | Domain::FpCluster | Domain::MemCluster => {
                let ci = domain.index() - 2;
                let cl = &self.clusters[ci];
                cl.iq.is_empty()
                    && cl.executing.is_empty()
                    && cl.writeback_pending.is_empty()
                    && self.ch_dispatch[ci].is_empty()
                    && (self.static_grid.is_some()
                        || (0..3).all(|from| from == ci || self.ch_wakeup[from][ci].is_empty()))
                    && (ci != 2 || (!self.l2_touched && self.store_buffer.is_empty()))
            }
        }
    }

    /// Records that the driver parked / unparked `domain`'s clock (the
    /// pipeline needs the mirror to route broadcast wakeup tags around a
    /// parked cluster — see `Pipeline::catch_up_parked_wakeups`).
    pub fn set_parked(&mut self, domain: Domain, parked: bool) {
        self.parked[domain.index()] = parked;
        if parked && domain.index() >= 2 {
            if let Some(grids) = self.static_grid {
                // First elided edge: parking happens at the cluster's own
                // tick, so its next edge is strictly after `now`.
                let (phase, period) = grids[domain.index()];
                let first = grid_ceil(phase, period, self.now + Time::from_fs(1));
                let ci = domain.index() - 2;
                for from in 0..3 {
                    self.virtual_edge[from][ci] = first;
                }
            }
        }
        if domain == Domain::Decode && parked {
            self.decode_park_occ = (
                self.rob.len(),
                self.rename.int_occupancy() + self.rename.fp_occupancy(),
            );
            // Remember whether the rename head parked on a saturated
            // dispatch rendezvous port: every elided decode tick would
            // have broken at that port and charged one blocked cycle.
            // The state this reads cannot change while the clock is
            // parked (the releasing pop raises a decode wake).
            self.decode_park_blocked = self.rendezvous && self.decode_head_blocked_on_port();
        }
        if domain == Domain::Fetch && parked {
            // Remember *why* fetch parked: a fetch blocked on a full
            // output channel replays active (repeat-hit) I-cache cycles,
            // an empty front end replays idle ones. The state this reads
            // cannot change while the clock is parked.
            let pc = if self.wrong_path {
                self.wrong_pc
            } else {
                self.fetch_pc
            };
            self.fetch_park_blocked =
                !(self.fetch_halted || self.pending_recovery.is_some() || pc == EXIT_PC);
        }
    }

    /// Number of fetch ticks that are provably pure I-cache-fill countdown
    /// — the whole remaining stall, when no redirect can arrive during it
    /// (no misprediction is outstanding, so nothing can be pushed into the
    /// redirect channel). The driver may skip that many fetch edges
    /// wholesale and apply them through [`Pipeline::replay_fetch_stall`];
    /// each skipped tick would only have decremented the stall counter and
    /// charged one active-I-cache cycle. Returns 0 when the next fetch
    /// tick does anything else.
    pub fn fetch_stall_skip(&self) -> u32 {
        if self.icache_stall > 1
            && !self.wrong_path
            && self.pending_recovery.is_none()
            && self.ch_redirect.is_empty()
            && self.pending_stretch[Domain::Fetch.index()] == Time::ZERO
        {
            // Leave the final countdown tick to run live: it is the edge
            // whose successor resumes real fetching, and running it keeps
            // the skip logic trivially off the resume path.
            self.icache_stall - 1
        } else {
            0
        }
    }

    /// Applies `ticks` skipped I-cache-stall fetch ticks in O(1): the
    /// stall counter advances and each tick charges exactly what the live
    /// countdown tick charges (domain + global grids, *active* I-cache,
    /// idle branch predictor). Exact-integer counts, so the bulk
    /// application is bit-identical to the live schedule.
    pub fn replay_fetch_stall(&mut self, ticks: u32) {
        if ticks == 0 {
            return;
        }
        debug_assert!(ticks < self.icache_stall, "skip must leave a live tick");
        self.icache_stall -= ticks;
        let n = u64::from(ticks);
        self.fetch_cycles += n;
        self.accountant.tick_domain_n(Domain::Fetch, n);
        if self.cfg.clocking.is_synchronous() {
            self.accountant.tick_global_n(n);
        }
        self.accountant.block_cycles_n(MacroBlock::ICache, true, n);
        self.accountant
            .block_cycles_n(MacroBlock::BranchPredictor, false, n);
    }

    /// Replays `ticks` elided idle ticks of a parked domain in O(1):
    /// exactly the counter, idle-energy and occupancy-sample updates the
    /// real ticks would have performed while the domain was quiescent.
    /// All of these are exact integer counts (the accountant defers the
    /// energy arithmetic to report time), so the bulk application is
    /// bit-identical to the unelided schedule.
    ///
    /// `next_edge` is the first edge that will dispatch live (from
    /// `ClockSet::unpark`/`drain_parked`): the memory cluster uses it to
    /// decide whether the last deferred fetch-side L2 charge belongs to an
    /// elided edge or to the live tick about to run.
    pub fn replay_idle(&mut self, domain: Domain, ticks: u64, next_edge: Time) {
        if domain == Domain::MemCluster {
            // Deferred fetch-side L2 touches: every deferred charge whose
            // consuming edge was elided becomes an active-L2 cycle in the
            // replay; a charge pinned to `next_edge` (or later) is handed
            // back to the live tick through the still-set `l2_touched`
            // flag. Counts, not floats — bit-identical either way.
            let mut active = self.parked_l2_charges;
            if active > 0 {
                if self.parked_l2_last_edge >= next_edge {
                    active -= 1; // consumed by the live tick via l2_touched
                } else {
                    self.l2_touched = false; // all consumed among elided
                }
            }
            self.parked_l2_charges = 0;
            self.parked_l2_last_edge = Time::MAX;
            debug_assert!(active <= ticks, "more L2 charges than elided edges");
            if ticks == 0 {
                return;
            }
            self.clusters[2].cycle += ticks;
            self.accountant.tick_domain_n(domain, ticks);
            self.clusters[2].iq.sample_occupancy_n(ticks);
            self.accountant
                .block_cycles_n(MacroBlock::MemIssueWindow, false, ticks);
            self.accountant
                .block_cycles_n(MacroBlock::DCache, false, ticks);
            self.accountant
                .block_cycles_n(MacroBlock::L2Cache, true, active);
            self.accountant
                .block_cycles_n(MacroBlock::L2Cache, false, ticks - active);
            self.store_buffer.sample_occupancy_n(ticks);
            return;
        }
        if ticks == 0 {
            return;
        }
        match domain {
            Domain::Fetch => {
                self.fetch_cycles += ticks;
                self.accountant.tick_domain_n(Domain::Fetch, ticks);
                if self.cfg.clocking.is_synchronous() {
                    self.accountant.tick_global_n(ticks);
                }
                if self.fetch_park_blocked {
                    // Blocked-on-full-channel flavour: every elided tick
                    // re-accessed the resident line and charged an active
                    // I-cache cycle — and, on a rendezvous port, counted
                    // one blocked cycle at the failed `can_push`.
                    if self.rendezvous {
                        self.rendezvous_blocked[Domain::Fetch.index()] += ticks;
                    }
                    let pc = if self.wrong_path {
                        self.wrong_pc
                    } else {
                        self.fetch_pc
                    };
                    self.icache.record_repeat_hits(pc, ticks);
                    self.accountant
                        .block_cycles_n(MacroBlock::ICache, true, ticks);
                } else {
                    self.accountant
                        .block_cycles_n(MacroBlock::ICache, false, ticks);
                }
                self.accountant
                    .block_cycles_n(MacroBlock::BranchPredictor, false, ticks);
            }
            Domain::Decode => {
                self.decode_cycle += ticks;
                // Parked on a saturated dispatch rendezvous port: each
                // elided tick's rename loop would have broken at the port
                // and counted one blocked cycle.
                if self.decode_park_blocked {
                    self.rendezvous_blocked[Domain::Decode.index()] += ticks;
                }
                self.accountant.tick_domain_n(Domain::Decode, ticks);
                self.accountant
                    .block_cycles_n(MacroBlock::RenameLogic, false, ticks);
                self.accountant
                    .block_cycles_n(MacroBlock::RegisterFile, false, ticks);
                // Occupancies frozen at park time: the live values may
                // already reflect the squash of the recovery that woke us,
                // which lands strictly after every elided tick.
                let (rob_occ, rat_occ) = self.decode_park_occ;
                self.rename.sample_occupancy_n_at(rat_occ, ticks);
                self.rob.sample_occupancy_n_at(rob_occ, ticks);
            }
            Domain::IntCluster | Domain::FpCluster => {
                let ci = domain.index() - 2;
                let (iq_block, alu_block) = if ci == 0 {
                    (MacroBlock::IntIssueWindow, MacroBlock::IntAlus)
                } else {
                    (MacroBlock::FpIssueWindow, MacroBlock::FpAlus)
                };
                self.clusters[ci].cycle += ticks;
                self.accountant.tick_domain_n(domain, ticks);
                self.clusters[ci].iq.sample_occupancy_n(ticks);
                self.accountant.block_cycles_n(iq_block, false, ticks);
                self.accountant.block_cycles_n(alu_block, false, ticks);
            }
            Domain::MemCluster => unreachable!("handled above"),
        }
    }

    /// Replays the broadcast wakeup-tag pops a parked cluster's elided
    /// ticks would have performed, at their exact unelided pop times.
    ///
    /// With static clock grids (synchronous / FIFO-GALS) a parked
    /// cluster's edge times are known, so for each pending tag the first
    /// edge at which the real tick would have popped it is computable:
    /// the channel supplies the pop-legality bound
    /// ([`Channel::front_pop_bound`]) and a per-channel cursor walks the
    /// cluster's virtual edge grid to the first edge at or past it (the
    /// single-shot closed form is [`Channel::front_pop_time`]). The pop
    /// is replayed with that timestamp, making the channel statistics and
    /// the `ready` bit interleaving bit-identical to the unelided
    /// schedule. Called at the
    /// top of every decode tick — the only other writer of the clusters'
    /// `ready` arrays — with `cutoff = now` (exclusive), and once more at
    /// the end of the run by the driver. A tag popping at an edge *at or
    /// after* the cutoff is left for the next catch-up (or the cluster's
    /// own re-armed tick, which pops it live).
    fn catch_up_parked_wakeups(&mut self, cutoff: Time) {
        if self.static_grid.is_none() {
            return; // pausible: wakeup pushes wake the cluster instead
        }
        for ci in 0..3 {
            if self.parked[ci + 2] {
                self.catch_up_cluster_wakeups(ci, cutoff, false);
            }
        }
    }

    fn catch_up_cluster_wakeups(&mut self, ci: usize, cutoff: Time, inclusive: bool) {
        let Some(grids) = self.static_grid else {
            return;
        };
        let (_, period) = grids[ci + 2];
        for from in 0..3 {
            if from == ci {
                continue;
            }
            loop {
                // Division-free pre-check: if the front tag could not pop
                // before the cutoff on *any* grid, skip the edge walk (the
                // common case on every decode tick).
                let bound = match self.ch_wakeup[from][ci].front_pop_bound() {
                    Some(bound) if bound <= cutoff => bound,
                    _ => break,
                };
                // The pop edge: the first virtual edge at or after the
                // legality bound. Pops replay in time order, so the
                // cursor only ever steps forward — typically by zero or
                // one period.
                let mut e = self.virtual_edge[from][ci];
                while e < bound {
                    e += period;
                }
                self.virtual_edge[from][ci] = e;
                if e > cutoff || (e == cutoff && !inclusive) {
                    break;
                }
                let tag = self.ch_wakeup[from][ci]
                    .try_pop(e)
                    .expect("cursor edge satisfies the pop bound");
                let cl = &mut self.clusters[ci];
                cl.ready.set(tag.index());
                cl.iq.wakeup(tag.as_iq_tag());
            }
        }
    }

    /// End-of-run flush for a still-parked cluster: replays the wakeup-tag
    /// pops of its elided edges up to the final timestamp (`inclusive`
    /// when the cluster's edge at that instant was ordered before the
    /// stopping edge). No-op for non-cluster domains.
    pub fn flush_parked_wakeups(&mut self, domain: Domain, until: Time, inclusive: bool) {
        if domain.index() >= 2 {
            self.catch_up_cluster_wakeups(domain.index() - 2, until, inclusive);
        }
    }

    /// Advances one clock edge of `domain` at absolute time `now`.
    pub fn tick(&mut self, domain: Domain, now: Time) {
        self.now = now;
        match domain {
            Domain::Fetch => self.tick_fetch(),
            Domain::Decode => self.tick_decode(),
            Domain::IntCluster => self.tick_cluster(0),
            Domain::FpCluster => self.tick_cluster(1),
            Domain::MemCluster => self.tick_cluster(2),
        }
    }

    // ------------------------------------------------------------------
    // Domain 1: fetch
    // ------------------------------------------------------------------

    fn tick_fetch(&mut self) {
        let now = self.now;
        self.check_watchdog(now);
        self.fetch_cycles += 1;
        self.accountant.tick_domain(Domain::Fetch);
        // The base machine's global grid toggles once per (shared) cycle;
        // the GALS and pausible machines have no global grid.
        if self.cfg.clocking.is_synchronous() {
            self.accountant.tick_global();
        }

        // 1. Redirect handling (branch recovery).
        while let Some((r, res)) = self.ch_redirect.try_pop_timed(now) {
            // The redirect's residency is pipeline recovery latency; it is
            // charged to the mispredicted branch for slip accounting.
            self.inflight.add_fifo_time(r.branch, res);
            self.process_redirect(r);
        }

        // 2. Fetch.
        let mut icache_active = false;
        let mut bpred_active = false;
        if self.icache_stall > 0 {
            self.icache_stall -= 1;
            icache_active = true;
        } else if !self.fetch_halted && self.pending_recovery.is_none() {
            // Once a misprediction has *resolved*, further wrong-path fetch
            // is gated (the squash broadcast reaches the front end with the
            // redirect); until resolution, fetch honestly runs down the
            // predicted path.
            let pc = if self.wrong_path {
                self.wrong_pc
            } else {
                self.fetch_pc
            };
            if pc != EXIT_PC {
                icache_active = true;
                if self.icache.access(pc) {
                    // One I-cache line per cycle: the fetch group ends at
                    // the line boundary (and at predicted-taken branches).
                    let line = pc >> self.l1i_line_shift;
                    let fetched_before = self.fetched;
                    let mut port_blocked = false;
                    for _ in 0..self.cfg.uarch.fetch_width {
                        let cur = if self.wrong_path {
                            self.wrong_pc
                        } else {
                            self.fetch_pc
                        };
                        if cur == EXIT_PC || cur >> self.l1i_line_shift != line {
                            break;
                        }
                        match self.fetch_one(&mut bpred_active, &mut port_blocked) {
                            FetchOutcome::Continue => {}
                            FetchOutcome::Stop => break,
                        }
                    }
                    // Rendezvous mode: a blocked cycle is a tick in which
                    // fetch produced *nothing* because its output port was
                    // occupied. A parked blocked fetch replays exactly
                    // these (zero-push) ticks — see `replay_idle`.
                    if self.rendezvous && port_blocked && self.fetched == fetched_before {
                        self.rendezvous_blocked[Domain::Fetch.index()] += 1;
                    }
                } else {
                    self.icache_stall = self.l2_fill_latency();
                }
            }
        }
        self.accountant
            .block_cycle(MacroBlock::ICache, icache_active);
        self.accountant
            .block_cycle(MacroBlock::BranchPredictor, bpred_active);
        if self.icache_stall == 0 && self.quiescent(Domain::Fetch) {
            self.quiesced_mask |= 1 << Domain::Fetch.index();
        }
    }

    /// Latency charged for an L1 miss: L2 hit latency, plus memory latency
    /// when L2 also misses. (Shared between I- and D-side.)
    fn l2_fill_latency_for(
        l2: &mut Cache,
        l2_touched: &mut bool,
        addr: u64,
        mem_latency: u32,
    ) -> u32 {
        *l2_touched = true;
        if l2.access(addr) {
            l2.latency()
        } else {
            l2.latency() + mem_latency
        }
    }

    fn l2_fill_latency(&mut self) -> u32 {
        let pc = if self.wrong_path {
            self.wrong_pc
        } else {
            self.fetch_pc
        };
        // A fetch-side L2 touch is consumed by the memory cluster's next
        // tick (it charges the L2 block's activity and resets the flag).
        // With a static clock grid the consuming edge of a *parked* memory
        // cluster is computable, so the charge is deferred and the cluster
        // stays parked; under pausible clocking it must wake instead.
        match self.static_grid {
            Some(grids) => {
                if self.parked[Domain::MemCluster.index()] {
                    let (phase, period) = grids[Domain::MemCluster.index()];
                    // First memory-cluster edge at or after `now`: the
                    // memory cluster's priority orders it after fetch, so
                    // a same-instant edge would consume the flag.
                    let e = grid_ceil(phase, period, self.now);
                    if e != self.parked_l2_last_edge {
                        self.parked_l2_charges += 1;
                        self.parked_l2_last_edge = e;
                    }
                }
            }
            None => self.note_wake(Domain::MemCluster),
        }
        Self::l2_fill_latency_for(
            &mut self.l2,
            &mut self.l2_touched,
            pc,
            self.cfg.uarch.mem_latency,
        )
    }

    fn fetch_one(&mut self, bpred_active: &mut bool, port_blocked: &mut bool) -> FetchOutcome {
        let now = self.now;
        if !self.ch_fetch_decode.can_push(now) {
            // The occupied output port stops the group; the caller counts
            // a rendezvous-blocked cycle only when the whole tick fetched
            // nothing (a partially fetched group made progress).
            *port_blocked = true;
            return FetchOutcome::Stop;
        }
        if self.wrong_path {
            self.fetch_one_wrong_path(bpred_active)
        } else {
            self.fetch_one_correct_path(bpred_active)
        }
    }

    fn fetch_one_correct_path(&mut self, bpred_active: &mut bool) -> FetchOutcome {
        // `take` instead of `clone`: the cursor is re-primed from the stream
        // below on every path that continues fetching.
        let Some(d) = self.peeked.take() else {
            self.fetch_halted = true;
            return FetchOutcome::Stop;
        };
        debug_assert_eq!(d.pc, self.fetch_pc, "front end desynchronised from stream");

        let mut branch_info = None;
        let mut stop_after = false;

        if d.op.is_branch() {
            *bpred_active = true;
            let fallthrough = self.program.next_sequential_pc(d.block, d.index);
            let (predicted_taken, predicted_target) = match d.op {
                OpClass::BranchCond => {
                    let p = self.bpred.predict_cond(d.pc);
                    // Immediate training (see module docs).
                    let train_target = if d.taken { d.next_pc } else { 0 };
                    self.bpred.update_cond(d.pc, d.taken, train_target, p.taken);
                    (p.taken, p.target)
                }
                OpClass::Jump | OpClass::Call => {
                    let p = self.bpred.predict_uncond(d.pc);
                    self.bpred.update_uncond(d.pc, d.next_pc);
                    if d.op == OpClass::Call {
                        self.bpred.push_return(fallthrough);
                    }
                    (true, p.target)
                }
                OpClass::Ret => {
                    let p = self.bpred.predict_return(d.pc);
                    (true, p.target)
                }
                _ => unreachable!("is_branch covers these"),
            };
            // Where fetch believes it should go next.
            let predicted_next = if predicted_taken {
                predicted_target.unwrap_or(fallthrough)
            } else {
                fallthrough
            };
            let mispredicted = predicted_next != d.next_pc;
            branch_info = Some(BranchInfo {
                predicted_taken,
                actual_taken: d.taken,
                recovery_pc: d.next_pc,
                mispredicted,
            });
            if mispredicted {
                self.wrong_path = true;
                self.wrong_pc = predicted_next;
            }
            // Taken (predicted) control transfers end the fetch group.
            stop_after = predicted_taken;
        }

        let seq = self.alloc_seq();
        let static_inst = &self.program.block(d.block).insts[d.index as usize];
        let is_exit = d.is_exit();
        self.push_fetched(Self::make_fetched(
            seq,
            d.pc,
            static_inst,
            false,
            d.mem_addr,
            branch_info,
            is_exit,
            self.now,
        ));

        // Advance the architectural cursor.
        self.fetch_pc = d.next_pc;
        self.peeked = self.stream.next();
        if d.is_exit() {
            self.fetch_halted = true;
            return FetchOutcome::Stop;
        }
        if stop_after || self.wrong_path {
            return FetchOutcome::Stop;
        }
        FetchOutcome::Continue
    }

    fn fetch_one_wrong_path(&mut self, bpred_active: &mut bool) -> FetchOutcome {
        // As in decode, copying the program reference out of self lets the
        // located instruction borrow the program directly — no clone.
        let program = self.program;
        let Some((block, index, inst)) = program.locate(self.wrong_pc) else {
            // Ran off the program on the wrong path: fetch bubbles until
            // the redirect arrives.
            return FetchOutcome::Stop;
        };
        let pc = self.wrong_pc;
        let seq = self.alloc_seq();

        let mut stop_after = false;
        if inst.op.is_branch() {
            *bpred_active = true;
            let fallthrough = self.program.next_sequential_pc(block, index);
            let taken_target = self.program.taken_target_pc(block);
            let (ptaken, ptarget) = match inst.op {
                OpClass::BranchCond => {
                    let p = self.bpred.predict_cond_nospec(pc);
                    (p.taken, p.target)
                }
                OpClass::Jump | OpClass::Call => {
                    let p = self.bpred.predict_uncond(pc);
                    if inst.op == OpClass::Call {
                        self.bpred.push_return(fallthrough);
                    }
                    // Wrong-path fetch may still know the static target.
                    (true, p.target.or(taken_target))
                }
                OpClass::Ret => {
                    let p = self.bpred.predict_return(pc);
                    (true, p.target)
                }
                _ => unreachable!(),
            };
            self.wrong_pc = if ptaken {
                ptarget.unwrap_or(fallthrough)
            } else {
                fallthrough
            };
            stop_after = ptaken;
        } else {
            self.wrong_pc = self.program.next_sequential_pc(block, index);
        }

        let mem_addr = inst.mem.map(|mid| {
            let behavior = self.program.mem_behavior(mid);
            let flat = self.program.flat_index(block, index);
            behavior.address(self.program.seed() ^ WRONG_PATH_SALT, flat, seq)
        });
        // Wrong-path branches never carry misprediction info: they have no
        // architectural outcome and are squashed before resolution matters.
        let branch_info = inst.op.is_branch().then_some(BranchInfo {
            predicted_taken: true,
            actual_taken: false,
            recovery_pc: EXIT_PC,
            mispredicted: false,
        });
        self.push_fetched(Self::make_fetched(
            seq,
            pc,
            inst,
            true,
            mem_addr,
            branch_info,
            false,
            self.now,
        ));

        if stop_after {
            FetchOutcome::Stop
        } else {
            FetchOutcome::Continue
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    #[allow(clippy::too_many_arguments)] // one field per argument, built in one place
    fn make_fetched(
        seq: u64,
        pc: u64,
        inst: &Inst,
        wrong_path: bool,
        mem_addr: Option<u64>,
        branch: Option<BranchInfo>,
        is_exit: bool,
        fetched_at: Time,
    ) -> FetchedInstr {
        FetchedInstr {
            seq,
            pc,
            op: inst.op,
            wrong_path,
            arch_dst: inst.dst,
            arch_srcs: [inst.src1, inst.src2],
            mem_addr,
            branch,
            is_exit,
            fetched_at,
        }
    }

    fn push_fetched(&mut self, f: FetchedInstr) {
        let wrong = f.wrong_path;
        let id = self.inflight.insert(f);
        self.ch_fetch_decode
            .try_push(id, self.now)
            .expect("push guarded by can_push");
        self.note_wake(Domain::Decode);
        self.note_transfer(Domain::Fetch, Domain::Decode);
        self.fetched += 1;
        if wrong {
            self.wrong_path_fetched += 1;
        }
    }

    fn process_redirect(&mut self, r: Redirect) {
        // Drop stale redirects for branches already squashed.
        if self.pending_recovery != Some(r.branch_seq) {
            return;
        }
        let now = self.now;
        let bseq = r.branch_seq;

        // Squash younger state everywhere. The walks write into reused
        // scratch buffers: recovery allocates nothing even when mispredicts
        // are frequent (sweep workloads run branchy configurations hot).
        let mut ids = std::mem::take(&mut self.rob_squash_scratch);
        self.rob.squash_younger_into(bseq, &mut ids);
        ids.clear();
        self.rob_squash_scratch = ids;
        let recovered = self.rename.recover(bseq);
        debug_assert!(recovered, "mispredicted branch must hold a checkpoint");
        let mut scratch = std::mem::take(&mut self.squash_scratch);
        for cl in &mut self.clusters {
            cl.iq.squash_younger_into(bseq, &mut scratch);
            cl.executing.retain(|&(_, s, _)| s <= bseq);
            // Rendezvous mode: port-parked writebacks of squashed
            // instructions evaporate too (the list is empty otherwise).
            cl.writeback_pending.retain(|&(s, _)| s <= bseq);
        }
        scratch.clear();
        self.squash_scratch = scratch;
        self.store_buffer.squash_younger(bseq);
        // Flush the handles of squashed instructions out of the decode
        // buffer and the data channels (their table entries are still live
        // here, so the age test reads straight through the handle; a stale
        // handle — impossible today — would flush as squashed too).
        let inflight = &self.inflight;
        let keep = |id: &InstrId| inflight.seq_of(*id).is_some_and(|s| s <= bseq);
        self.decode_buf.retain(keep);
        self.ch_fetch_decode.flush_where(now, keep);
        for ch in &mut self.ch_dispatch {
            ch.flush_where(now, keep);
        }
        for ch in &mut self.ch_complete {
            ch.flush_where(now, keep);
        }
        // Wakeup channels carry register tags, not handles; stale tags are
        // tolerated (module docs).
        self.inflight.remove_younger(bseq);

        // Recovery mutates the ROB and the rename state: a decode parked on
        // a checkpoint/register stall must wake (and back-fill its elided
        // ticks at the pre-squash occupancies it froze when parking).
        self.note_wake(Domain::Decode);

        // Resume correct-path fetch.
        self.wrong_path = false;
        self.wrong_pc = EXIT_PC;
        debug_assert_eq!(
            r.target_pc, self.fetch_pc,
            "recovery target must match the architectural cursor"
        );
        self.icache_stall = 0;
        self.pending_recovery = None;
    }

    // ------------------------------------------------------------------
    // Domain 2: decode, rename, dispatch, commit
    // ------------------------------------------------------------------

    fn tick_decode(&mut self) {
        let now = self.now;
        self.decode_cycle += 1;
        self.accountant.tick_domain(Domain::Decode);

        // 0. Replay the wakeup-tag pops of parked clusters that fall
        // strictly before this tick: the rename stage below writes the
        // clusters' ready bits, and the elided pops must land first (in
        // the unelided schedule they did).
        self.catch_up_parked_wakeups(now);

        // 1. Absorb completions.
        for ci in 0..3 {
            while let Some((id, res)) = self.ch_complete[ci].try_pop_timed(now) {
                // Stale messages for squashed instructions are no-ops.
                self.inflight.complete_with_residency(id, res);
            }
        }

        // 2. Commit. (The budget check keeps runs with different clockings
        // at exactly equal committed counts for paired comparisons.)
        let mut commits = 0;
        while commits < self.cfg.uarch.commit_width && self.committed < self.limits.max_insts {
            let Some((head_seq, _, &head_id)) = self.rob.head() else {
                break;
            };
            // Hold a mispredicted branch at the head until its recovery has
            // executed: the checkpoint must survive, and nothing younger
            // (wrong-path) may commit.
            if self.pending_recovery == Some(head_seq) {
                break;
            }
            // Completion is tracked on the in-flight entry (O(1) hot-flag
            // probe instead of a ROB search per completion message).
            if !self.inflight.is_completed(head_id) {
                break;
            }
            let (seq, id) = self.rob.pop_head().expect("head exists");
            let retired = self
                .inflight
                .remove_retired(id)
                .expect("committing unknown instruction");
            debug_assert!(!retired.wrong_path, "wrong-path instruction reached commit");
            if let Some((arch, _new_tag, old)) = retired.dst {
                self.rename.commit_release(arch, old);
            }
            if retired.op.is_branch() {
                self.rename.release_checkpoint(seq);
            }
            if retired.op == OpClass::Store {
                self.store_buffer.retire_through(seq);
            }
            self.slip_total += now - retired.fetched_at;
            self.slip_fifo += retired.fifo_time;
            self.committed += 1;
            self.last_commit_time = now;
            if retired.is_exit {
                self.halted = true;
            }
            commits += 1;
        }

        // Deadlock watchdog (development aid).
        self.check_watchdog(now);

        // 3. Rename + dispatch, in order, stalling at the first hazard.
        let mut renamed = 0;
        while renamed < self.cfg.uarch.decode_width {
            let Some(&id) = self.decode_buf.front() else {
                break;
            };
            if !self.rob.has_space() {
                break;
            }
            // One hot-column probe covers the whole rename setup; the
            // architectural operands were captured at fetch, so rename
            // needs no PC re-locate.
            let (seq, op, arch_dst, arch_srcs) = self
                .inflight
                .rename_view(id)
                .expect("decoded instruction vanished");
            let is_branch = op.is_branch();
            if is_branch && !self.rename.can_checkpoint() {
                break;
            }
            // Stores reserve their buffer slot here, in program order, so an
            // older store can never be starved by younger out-of-order
            // stores (deadlock avoidance; see gals_uarch::StoreBuffer).
            if op == OpClass::Store && !self.store_buffer.has_space() {
                break;
            }
            let ci = cluster_index(op.cluster());
            if !self.ch_dispatch[ci].can_push(now) {
                // Rendezvous mode: a blocked cycle is a tick whose rename
                // stage moved *nothing* because the head's dispatch port
                // was occupied (breaking after some renames is progress,
                // not a stall). The cluster's consuming pop wakes a parked
                // decode, whose elided — necessarily zero-rename — blocked
                // ticks replay in `replay_idle`.
                if self.rendezvous && renamed == 0 {
                    self.rendezvous_blocked[Domain::Decode.index()] += 1;
                }
                break;
            }
            // Rename sources first (RAW within the group resolves to the
            // younger mapping naturally because older group members already
            // updated the RAT this cycle).
            let mut src_tags = SrcTags::new();
            for r in arch_srcs.into_iter().flatten() {
                src_tags.push(Tag::new(self.rename.lookup(r), r.is_fp()));
            }
            let dst = if let Some(d) = arch_dst {
                match self.rename.rename_dst(d) {
                    Ok(renamed_dst) => {
                        Some((d, Tag::new(renamed_dst.new, d.is_fp()), renamed_dst.old))
                    }
                    Err(_) => break, // out of physical registers: stall
                }
            } else {
                None
            };
            if is_branch {
                self.rename.checkpoint(seq);
            }
            self.inflight.set_rename(id, src_tags, dst);
            // Producer-side wakeup filter: register this consumer's cluster
            // against each source tag, or — when the producer has already
            // broadcast — mark the operand ready in this cluster's view now
            // (the rename-time busy-bit read; see `wakeup_interest` docs).
            if self.cfg.cross_cluster_wakeup_filter {
                for t in src_tags.iter() {
                    if self.wakeup_interest[t.index()] & WAKEUP_DONE != 0 {
                        self.clusters[ci].ready.set(t.index());
                    } else {
                        self.wakeup_interest[t.index()] |= 1 << ci;
                    }
                }
            }
            // Mark the destination not-ready in every cluster view (and
            // reset the filter state of the tag's fresh allocation — the
            // interest table is only touched when the filter is active).
            if let Some((_, tag, _)) = dst {
                if self.cfg.cross_cluster_wakeup_filter {
                    self.wakeup_interest[tag.index()] = 0;
                }
                for cl in &mut self.clusters {
                    cl.ready.clear(tag.index());
                }
            }
            if op == OpClass::Store {
                self.store_buffer.reserve(seq).expect("space checked above");
            }
            self.rob.alloc(seq, id).expect("space checked above");
            self.ch_dispatch[ci]
                .try_push(id, now)
                .expect("push guarded by can_push");
            self.note_wake(CLUSTER_DOMAINS[ci]);
            self.note_transfer(Domain::Decode, CLUSTER_DOMAINS[ci]);
            self.decode_buf.pop_front();
            renamed += 1;
        }

        // 4. Decode: pull from the fetch channel into the decode buffer.
        let mut decoded = 0;
        while decoded < self.cfg.uarch.decode_width
            && self.decode_buf.len() < 2 * self.cfg.uarch.decode_width as usize
        {
            let Some((id, res)) = self.ch_fetch_decode.try_pop_timed(now) else {
                break;
            };
            // A freed slot is what un-blocks a fetch parked on the full
            // channel (see the fetch arm of `quiescent`).
            self.note_wake(Domain::Fetch);
            if self.inflight.add_fifo_time(id, res) {
                self.decode_buf.push_back(id);
            }
            // (A flushed-but-raced handle simply evaporates.)
            decoded += 1;
        }

        self.accountant
            .block_cycle(MacroBlock::RenameLogic, renamed > 0 || decoded > 0);
        self.accountant
            .block_cycle(MacroBlock::RegisterFile, renamed > 0 || commits > 0);
        self.rename.sample_occupancy();
        self.rob.sample_occupancy();
        // Quiescence: this tick did nothing, its inbound channels carry
        // nothing it could consume, and whatever stalls the rename head
        // (if any) can only be released by another domain's push or pop —
        // each of which raises a decode wake. An in-flight-but-not-yet-
        // visible fetch group (a mixed-clock FIFO synchronising) blocks
        // parking: its visibility arrives by time, not by an event.
        if commits == 0
            && renamed == 0
            && decoded == 0
            && self.ch_complete.iter().all(|c| c.is_empty())
            && (self.ch_fetch_decode.is_empty()
                || self.decode_buf.len() >= 2 * self.cfg.uarch.decode_width as usize)
            && self.pending_stretch[Domain::Decode.index()] == Time::ZERO
            && self.decode_stall_is_external()
        {
            self.quiesced_mask |= 1 << Domain::Decode.index();
        }
    }

    /// Classifies the binding stall of the rename head, testing hazards in
    /// the same order the live rename loop in `tick_decode` does (ROB
    /// space, checkpoint, store-buffer slot, dispatch port, physical
    /// registers). The loop is the semantics; this is the one shared,
    /// side-effect-free mirror of it that the park predicates below are
    /// derived from — extend both the loop and this classification
    /// together when adding a rename hazard.
    fn rename_head_stall(&self) -> RenameHeadStall {
        let Some(&id) = self.decode_buf.front() else {
            return RenameHeadStall::Empty;
        };
        if !self.rob.has_space() {
            return RenameHeadStall::RobFull;
        }
        let Some((_, op, arch_dst, _)) = self.inflight.rename_view(id) else {
            return RenameHeadStall::Vanished;
        };
        if op.is_branch() && !self.rename.can_checkpoint() {
            return RenameHeadStall::Checkpoint;
        }
        if op == OpClass::Store && !self.store_buffer.has_space() {
            return RenameHeadStall::StoreBuffer;
        }
        let ci = cluster_index(op.cluster());
        if self.ch_dispatch[ci].len() >= self.ch_dispatch[ci].capacity() {
            return RenameHeadStall::PortSaturated;
        }
        if let Some(d) = arch_dst {
            let (int_free, fp_free) = self.rename.free_counts();
            let free = if d.is_fp() { fp_free } else { int_free };
            if free == 0 {
                return RenameHeadStall::Registers;
            }
        }
        RenameHeadStall::Ready
    }

    /// True when the rename head (if any) is stalled on a resource only
    /// another domain's activity can release — a commit enabled by a
    /// completion push, a recovery, or a dispatch-channel pop, all of
    /// which wake a parked decode. Returns `false` for the one stall whose
    /// release is time-driven: a dispatch channel whose *slots* are free
    /// but whose full-flag synchronisation has not yet expired (that case
    /// classifies as `Ready` — the synchronisation is invisible to the
    /// side-effect-free classifier, and `Ready` with nothing renamed this
    /// tick is precisely it).
    fn decode_stall_is_external(&self) -> bool {
        self.rename_head_stall() != RenameHeadStall::Ready
    }

    /// Rendezvous mode: true when the live rename loop would break at the
    /// `can_push` check of the head's dispatch port, so parked-decode
    /// replay charges blocked cycles if and only if the live ticks would
    /// have. (Rendezvous ports have no backward delay, so slot-saturation
    /// is exactly `!can_push`; the loop checks the port before renaming
    /// the destination, so a saturated port binds even when registers are
    /// also scarce.)
    fn decode_head_blocked_on_port(&self) -> bool {
        self.rename_head_stall() == RenameHeadStall::PortSaturated
    }

    /// Deadlock watchdog: records a [`DeadlockReport`] when no instruction
    /// has committed for the configured window. Checked from every *live*
    /// tick path — with idle-tick elision a hung simulator may have parked
    /// some domains (their elided ticks never run this), but any hang that
    /// is not the all-parked case (caught by the driver through
    /// [`Pipeline::note_all_parked`]) keeps at least one domain ticking,
    /// so the trap still springs. Once the report is recorded,
    /// [`Pipeline::done`] is true and the check never re-fires.
    #[inline]
    fn check_watchdog(&mut self, now: Time) {
        if now.saturating_sub(self.last_commit_time) >= self.watchdog_span && !self.done() {
            self.deadlock = Some(self.build_deadlock_report(DeadlockTrigger::Watchdog, now));
        }
    }

    /// Driver hook for the elision-aware deadlock case: every domain clock
    /// is parked but the run is unfinished. Wakes only come from ticks, so
    /// no progress is possible; record the report (making
    /// [`Pipeline::done`] true) so the driver exits and surfaces it.
    pub fn note_all_parked(&mut self, now: Time) {
        if !self.done() {
            self.deadlock = Some(self.build_deadlock_report(DeadlockTrigger::AllParked, now));
        }
    }

    /// Takes the deadlock report, if the run wedged. Drivers call this
    /// after their event loop exits; `Some` means the run failed and no
    /// [`SimReport`] exists.
    pub fn take_deadlock(&mut self) -> Option<Box<DeadlockReport>> {
        self.deadlock.take()
    }

    /// Stamps the static analyzer's pre-flight verdict (see
    /// [`crate::analyze`]) so any deadlock report built later can say
    /// "this wedge was flagged at submit".
    pub fn set_static_finding(&mut self, finding: Option<String>) {
        self.static_finding = finding;
    }

    /// True when every domain clock is parked (ClockSet driver's mirror).
    pub fn all_parked(&self) -> bool {
        self.parked == [true; 5]
    }

    /// Snapshots the stuck machine. Every field is a pure function of the
    /// configuration and workload, so re-running the same point rebuilds
    /// the same report bit-for-bit.
    fn build_deadlock_report(&self, trigger: DeadlockTrigger, now: Time) -> Box<DeadlockReport> {
        let port = |ch: &Channel<InstrId>| PortState {
            len: ch.len(),
            capacity: ch.capacity(),
            rendezvous: ch.is_rendezvous(),
        };
        Box::new(DeadlockReport {
            trigger,
            now,
            last_commit_time: self.last_commit_time,
            watchdog_cycles: self.limits.watchdog_cycles,
            committed: self.committed,
            parked: self.parked,
            rob_len: self.rob.len(),
            rob_head_seq: self.rob.head().map(|(seq, _, _)| seq),
            decode_buf_len: self.decode_buf.len(),
            iq_len: std::array::from_fn(|ci| self.clusters[ci].iq.len()),
            writeback_pending_len: std::array::from_fn(|ci| {
                self.clusters[ci].writeback_pending.len()
            }),
            ch_fetch_decode: port(&self.ch_fetch_decode),
            ch_dispatch: std::array::from_fn(|ci| port(&self.ch_dispatch[ci])),
            ch_complete: std::array::from_fn(|ci| port(&self.ch_complete[ci])),
            ch_redirect: PortState {
                len: self.ch_redirect.len(),
                capacity: self.ch_redirect.capacity(),
                rendezvous: self.ch_redirect.is_rendezvous(),
            },
            ch_wakeup_total: self.ch_wakeup.iter().flatten().map(|ch| ch.len()).sum(),
            rendezvous_blocked: self.rendezvous_blocked,
            pending_recovery: self.pending_recovery,
            fetch_halted: self.fetch_halted,
            wrong_path: self.wrong_path,
            static_finding: self.static_finding.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Domains 3/4/5: the execution clusters
    // ------------------------------------------------------------------

    fn tick_cluster(&mut self, ci: usize) {
        let now = self.now;
        self.check_watchdog(now);
        self.clusters[ci].cycle += 1;
        let domain = self.clusters[ci].domain;
        self.accountant.tick_domain(domain);

        // 1. Apply cross-domain wakeups.
        for from in 0..3 {
            if from == ci {
                continue;
            }
            while let Some(tag) = self.ch_wakeup[from][ci].try_pop(now) {
                let cl = &mut self.clusters[ci];
                cl.ready.set(tag.index());
                cl.iq.wakeup(tag.as_iq_tag());
            }
        }

        // 2. Writeback of finished executions. The scratch buffer lives in
        // the cluster and is moved out for the duration of the walk so
        // `writeback(&mut self)` can run while it is held.
        let cycle = self.clusters[ci].cycle;
        let mut finished = std::mem::take(&mut self.clusters[ci].finished_scratch);
        finished.clear();
        self.clusters[ci].executing.retain(|&(done, seq, id)| {
            if done <= cycle {
                finished.push((seq, id));
                false
            } else {
                true
            }
        });
        finished.sort_unstable_by_key(|&(seq, _)| seq);
        if self.rendezvous {
            // Rendezvous mode: a writeback pushes into single-entry ports
            // (wakeup broadcasts, the completion notice, possibly the
            // redirect), so it runs only when *every* port it needs can
            // accept — an atomic rendezvous. Blocked writebacks park in
            // program order on the pending list and retry next tick (the
            // non-empty list keeps the cluster from quiescing); one blocked
            // cycle is charged per tick that ends with the head parked.
            let mut pending = std::mem::take(&mut self.clusters[ci].writeback_pending);
            pending.extend_from_slice(&finished);
            // Seqs are unique, so the merged order is deterministic.
            pending.sort_unstable_by_key(|&(seq, _)| seq);
            let mut done = 0;
            while let Some(&(_, id)) = pending.get(done) {
                if !self.writeback_ports_free(ci, id) {
                    // A blocked cycle is a tick in which *no* writeback got
                    // through — a partially drained pending list made
                    // progress.
                    if done == 0 {
                        self.rendezvous_blocked[CLUSTER_DOMAINS[ci].index()] += 1;
                    }
                    break;
                }
                self.writeback(ci, id);
                done += 1;
            }
            pending.drain(..done);
            self.clusters[ci].writeback_pending = pending;
        } else {
            for &(_, id) in &finished {
                self.writeback(ci, id);
            }
        }
        self.clusters[ci].finished_scratch = finished;

        // 3. Select + issue.
        let issued = self.issue(ci);

        // 4. Fill the IQ from the dispatch channel. The outstanding-source
        // tags stream straight into the queue's inline storage — no
        // per-instruction `Vec`.
        let mut inserted = 0;
        while self.clusters[ci].iq.has_space() {
            let Some((id, res)) = self.ch_dispatch[ci].try_pop_timed(now) else {
                break;
            };
            // A freed dispatch slot is what un-blocks a decode parked on a
            // saturated dispatch channel (see `decode_stall_is_external`).
            self.note_wake(Domain::Decode);
            let Some((age, srcs)) = self.inflight.absorb_dispatch(id, res) else {
                continue;
            };
            let ClusterState { iq, ready, .. } = &mut self.clusters[ci];
            iq.insert(
                id.bits(),
                age,
                srcs.iter()
                    .filter(|t| !ready.get(t.index()))
                    .map(|t| t.as_iq_tag()),
            )
            .expect("space checked by has_space");
            inserted += 1;
        }

        // 5. Power activity.
        let cl = &mut self.clusters[ci];
        cl.iq.sample_occupancy();
        let iq_active = !cl.iq.is_empty() || inserted > 0;
        let alu_active = issued > 0 || !cl.executing.is_empty();
        let (iq_block, alu_block) = match ci {
            0 => (MacroBlock::IntIssueWindow, MacroBlock::IntAlus),
            1 => (MacroBlock::FpIssueWindow, MacroBlock::FpAlus),
            _ => (MacroBlock::MemIssueWindow, MacroBlock::FpAlus), // alu handled below
        };
        self.accountant.block_cycle(iq_block, iq_active);
        if ci == 2 {
            // Memory cluster: charge the caches instead of ALUs.
            self.accountant
                .block_cycle(MacroBlock::DCache, issued > 0 || !cl.executing.is_empty());
            self.accountant
                .block_cycle(MacroBlock::L2Cache, self.l2_touched);
            self.l2_touched = false;
            let _ = alu_block;
        } else {
            self.accountant.block_cycle(alu_block, alu_active);
        }
        if ci == 2 {
            self.store_buffer.sample_occupancy();
        }
        if !iq_active && !alu_active && self.quiescent(CLUSTER_DOMAINS[ci]) {
            self.quiesced_mask |= 1 << CLUSTER_DOMAINS[ci].index();
        }
    }

    fn issue(&mut self, ci: usize) -> u32 {
        let now = self.now;
        let width = self.cfg.uarch.issue_width;
        let cycle = self.clusters[ci].cycle;
        // Reused per-tick scratch, moved out so the split borrows below
        // stay disjoint. Each admitted instruction records everything the
        // post-selection loop needs — `(token, seq, latency, wrong_path)` —
        // so issue re-probes nothing.
        let mut admitted = std::mem::take(&mut self.clusters[ci].latency_scratch);
        let mut picked = std::mem::take(&mut self.clusters[ci].picked_scratch);
        admitted.clear();
        // Split borrows: the IQ needs &mut independent of the rest.
        let ClusterState { iq, fus, .. } = &mut self.clusters[ci];
        let inflight = &self.inflight;
        let store_buffer = &mut self.store_buffer;
        let dcache = &mut self.dcache;
        let l2 = &mut self.l2;
        let l2_touched = &mut self.l2_touched;
        let mem_latency = self.cfg.uarch.mem_latency;
        let mut store_forwards = 0u64;
        let mut wrong_path_issues = 0u64;

        iq.select_into(
            width,
            |token| {
                let id = InstrId::from_bits(token);
                let Some((seq, op, wrong)) = inflight.issue_view(id) else {
                    return true; /* squash race: drop */
                };
                let base_lat = op.exec_latency();
                let lat = match op {
                    OpClass::Store => {
                        if !fus.try_issue(cycle, base_lat, true) {
                            return false;
                        }
                        let addr = inflight.mem_addr_of(id).expect("stores carry addresses");
                        // Slot reserved at dispatch; fill the address now.
                        store_buffer.fill(seq, addr);
                        u64::from(base_lat)
                    }
                    OpClass::Load => {
                        if !fus.try_issue(cycle, base_lat, true) {
                            return false;
                        }
                        let addr = inflight.mem_addr_of(id).expect("loads carry addresses");
                        if store_buffer.forwards_to(addr) {
                            store_forwards += 1;
                            u64::from(dcache.latency())
                        } else if dcache.access(addr) {
                            u64::from(dcache.latency())
                        } else {
                            u64::from(dcache.latency())
                                + u64::from(Self::l2_fill_latency_for(
                                    l2,
                                    l2_touched,
                                    addr,
                                    mem_latency,
                                ))
                        }
                    }
                    op => {
                        if !fus.try_issue(cycle, op.exec_latency(), op.is_pipelined()) {
                            return false;
                        }
                        u64::from(op.exec_latency())
                    }
                };
                if wrong {
                    wrong_path_issues += 1;
                }
                admitted.push((token, seq, lat));
                true
            },
            &mut picked,
        );
        self.store_forwards_total += store_forwards;
        let issued = picked.len() as u32;
        self.issued_total += u64::from(issued);
        self.issued_wrong_path += wrong_path_issues;
        for &(token, seq, lat) in &admitted {
            self.clusters[ci]
                .executing
                .push((cycle + lat.max(1), seq, InstrId::from_bits(token)));
        }
        admitted.clear();
        picked.clear();
        self.clusters[ci].latency_scratch = admitted;
        self.clusters[ci].picked_scratch = picked;
        let _ = now;
        issued
    }

    /// Rendezvous mode: true when every rendezvous port this instruction's
    /// writeback will push into — the completion notice, the redirect for
    /// a mispredicted branch, and each wakeup link the broadcast (or the
    /// producer-side filter) selects — can accept an item at `now`. The
    /// check mirrors [`Pipeline::writeback`] exactly, so a `true` here
    /// guarantees the writeback's pushes all succeed.
    fn writeback_ports_free(&mut self, ci: usize, id: InstrId) -> bool {
        let now = self.now;
        let Some((_, dst, is_mispredict)) = self.inflight.writeback_view(id) else {
            return true; // squashed under us: the writeback is a no-op
        };
        if !self.ch_complete[ci].can_push(now) {
            return false;
        }
        if is_mispredict && !self.ch_redirect.can_push(now) {
            return false;
        }
        if let Some((_, tag, _)) = dst {
            let filter = self.cfg.cross_cluster_wakeup_filter;
            let interest = if filter {
                self.wakeup_interest[tag.index()]
            } else {
                0
            };
            for to in 0..3 {
                if to == ci || (filter && interest & (1 << to) == 0) {
                    continue;
                }
                if !self.ch_wakeup[ci][to].can_push(now) {
                    return false;
                }
            }
        }
        true
    }

    fn writeback(&mut self, ci: usize, id: InstrId) {
        let now = self.now;
        let Some((seq, dst, is_mispredict)) = self.inflight.writeback_view(id) else {
            return;
        };

        // Chaos mode: drop this writeback on the floor. The threshold is a
        // `>=` (not an exact match) so the wedge survives the targeted seq
        // being a squashed wrong-path instruction: the first *correct-path*
        // instruction past it never completes, commit wedges behind it,
        // and the deadlock layer must turn the hang into a structured
        // report.
        #[cfg(feature = "chaos")]
        if self
            .limits
            .chaos
            .withhold_writeback
            .is_some_and(|n| seq >= n)
        {
            return;
        }

        // Local + remote wakeup. With the producer-side filter on, remote
        // clusters receive the tag only when they registered a consumer at
        // rename; later consumers take the WAKEUP_DONE path instead.
        if let Some((_, tag, _)) = dst {
            let cl = &mut self.clusters[ci];
            cl.ready.set(tag.index());
            cl.iq.wakeup(tag.as_iq_tag());
            let filter = self.cfg.cross_cluster_wakeup_filter;
            let broadcast_wakes = self.static_grid.is_none();
            let interest = if filter {
                self.wakeup_interest[tag.index()]
            } else {
                0
            };
            for (to, &to_domain) in CLUSTER_DOMAINS.iter().enumerate() {
                if to == ci || (filter && interest & (1 << to) == 0) {
                    continue;
                }
                self.ch_wakeup[ci][to]
                    .try_push(tag, now)
                    .expect("wakeup channel sized to never fill");
                if broadcast_wakes {
                    // Pausible grids stretch, so a parked consumer cannot
                    // replay the pop later: wake it instead. With static
                    // grids the pop is replayed exactly and the consumer
                    // stays parked (see catch_up_parked_wakeups).
                    self.note_wake(to_domain);
                }
                self.note_wakeup_transfer(ci, to);
            }
            if filter {
                self.wakeup_interest[tag.index()] = WAKEUP_DONE;
            }
        }

        // Mispredicted branch: launch the redirect.
        if is_mispredict {
            debug_assert!(
                self.pending_recovery.is_none(),
                "only one correct-path misprediction can be outstanding"
            );
            let recovery_pc = self
                .inflight
                .recovery_pc_of(id)
                .expect("mispredicted instruction carries branch info");
            self.pending_recovery = Some(seq);
            self.ch_redirect
                .try_push(
                    Redirect {
                        branch: id,
                        branch_seq: seq,
                        target_pc: recovery_pc,
                    },
                    now,
                )
                .expect("redirect channel sized to never fill");
            self.note_wake(Domain::Fetch);
            self.note_transfer(CLUSTER_DOMAINS[ci], Domain::Fetch);
        }

        // Completion notice to the ROB.
        self.ch_complete[ci]
            .try_push(id, now)
            .expect("completion channel sized to never fill");
        self.note_wake(Domain::Decode);
        self.note_transfer(CLUSTER_DOMAINS[ci], Domain::Decode);
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Finalises the run into a [`SimReport`]. `exec_time` is the timestamp
    /// of the last processed event.
    pub fn into_report(mut self, exec_time: Time) -> SimReport {
        // FIFO transfer energy (GALS only): every push and pop toggles the
        // FIFO's synchronisers and data latches.
        let mut channel_ops = 0u64;
        let mut add = |st: gals_clocks::ChannelStats| {
            channel_ops += st.pushes + st.pops;
        };
        add(self.ch_fetch_decode.stats());
        add(self.ch_redirect.stats());
        for ch in &self.ch_dispatch {
            add(ch.stats());
        }
        for ch in &self.ch_complete {
            add(ch.stats());
        }
        for row in &self.ch_wakeup {
            for ch in row {
                add(ch.stats());
            }
        }
        if self.cfg.clocking.is_gals() {
            self.accountant.fifo_access(channel_ops);
        }

        // Pausible clocking: the local clock trees stay driven over the
        // *effective* (stretched) period, so stretch time burns local grid
        // energy like ordinary cycles, pro-rated in nominal-cycle units.
        if let Clocking::Pausible { clocks, .. } = &self.cfg.clocking {
            for d in Domain::ALL {
                let i = d.index();
                if self.stretch_time[i] > Time::ZERO {
                    let extra_cycles =
                        self.stretch_time[i].as_fs() as f64 / clocks[i].period.as_fs() as f64;
                    self.accountant.stretched_clock(d, extra_cycles);
                }
            }
        }

        SimReport {
            committed: self.committed,
            fetched: self.fetched,
            wrong_path_fetched: self.wrong_path_fetched,
            exec_time,
            domain_cycles: [
                self.fetch_cycles,
                self.decode_cycle,
                self.clusters[0].cycle,
                self.clusters[1].cycle,
                self.clusters[2].cycle,
            ],
            slip_total: self.slip_total,
            slip_fifo: self.slip_fifo,
            bpred: self.bpred.stats(),
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            l2: self.l2.stats(),
            iq: [
                self.clusters[0].iq.stats(),
                self.clusters[1].iq.stats(),
                self.clusters[2].iq.stats(),
            ],
            rob_mean_occupancy: self.rob.mean_occupancy(),
            rat_mean_occupancy: self.rename.mean_occupancy(),
            rat_peak_occupancy: self.rename.peak_occupancy(),
            store_forwards: self.store_forwards_total,
            issued: self.issued_total,
            issued_wrong_path: self.issued_wrong_path,
            channel_ops,
            stretches: self.stretch_events,
            stretch_time: self.stretch_time,
            rendezvous_blocked: self.rendezvous_blocked,
            energy: self.accountant.breakdown(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchOutcome {
    Continue,
    Stop,
}

/// The binding stall of the rename head, as classified by
/// `Pipeline::rename_head_stall` (hazards in the live rename loop's test
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenameHeadStall {
    /// Decode buffer empty — nothing to rename.
    Empty,
    /// ROB full: waits on a commit (a completion push wakes decode).
    RobFull,
    /// The head vanished under the buffer (defensive squash race).
    Vanished,
    /// Branch with no free checkpoint: waits on commit or recovery.
    Checkpoint,
    /// Store with no buffer slot: waits on commit.
    StoreBuffer,
    /// Dispatch channel slot-saturated: waits on a consumer pop.
    PortSaturated,
    /// Out of physical registers: waits on commit or recovery.
    Registers,
    /// No stall visible to a side-effect-free classification: the head
    /// would rename — unless the dispatch channel's full-flag
    /// synchronisation is still pending, the one time-driven wait, which
    /// also lands here and which park decisions must treat as
    /// not-parkable.
    Ready,
}

/// First edge of the grid `(phase + k·period)` at or after `bound`.
fn grid_ceil(phase: Time, period: Time, bound: Time) -> Time {
    if bound <= phase {
        return phase;
    }
    let delta = bound.as_fs() - phase.as_fs();
    phase + period * delta.div_ceil(period.as_fs())
}

fn cluster_index(c: Cluster) -> usize {
    match c {
        Cluster::Int => 0,
        Cluster::Fp => 1,
        Cluster::Mem => 2,
    }
}
