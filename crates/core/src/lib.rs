//! # gals-core
//!
//! The processor models of *"Power and Performance Evaluation of Globally
//! Asynchronous Locally Synchronous Processors"* (Iyer & Marculescu, ISCA
//! 2002): a 4-wide out-of-order superscalar pipeline that runs either
//!
//! * **synchronously** — one clock, pipeline latches, a global clock grid
//!   burning power every cycle;
//! * **GALS** — five locally synchronous domains (fetch / decode /
//!   integer / FP / memory) with independent clock periods *and* phases,
//!   mixed-clock FIFOs on every domain crossing, and no global grid; or
//! * **pausible** — the section-3.2 ablation: the same five local clocks,
//!   but every domain crossing stretches both participating clocks for an
//!   arbiter handshake instead of buffering through a FIFO, so measured
//!   effective frequencies are set by communication rates. Two transfer
//!   models ([`gals_clocks::PausibleModel`]): *latched* keeps full channel
//!   capacity (timing cost only), *rendezvous* strips every crossing to a
//!   single-entry port, so producers block until the consumer pops and the
//!   capacity cost of unbuffered handshakes is charged too (reported in
//!   [`SimReport::rendezvous_blocked`]).
//!
//! Both machines share all pipeline code; they differ only in channel
//! construction and clock wiring (see [`ProcessorConfig`]), mirroring how
//! the paper built both simulators on one SimpleScalar-derived model.
//!
//! ```
//! use gals_core::{simulate, ProcessorConfig, SimLimits};
//! use gals_workload::{generate, Benchmark};
//!
//! let program = generate(Benchmark::Gcc, 42);
//! let limits = SimLimits::insts(20_000);
//! let base = simulate(&program, ProcessorConfig::synchronous_1ghz(), limits).expect("baseline");
//! let gals = simulate(&program, ProcessorConfig::gals_equal_1ghz(1), limits).expect("gals");
//! // GALS is slower on the same work at the same frequencies (paper Fig 5).
//! assert!(gals.exec_time > base.exec_time);
//! ```

// The counting global allocator (`bench` feature) is the one place that
// needs `unsafe` (the `GlobalAlloc` trait contract); everything else stays
// forbidden either way.
#![cfg_attr(not(feature = "bench"), forbid(unsafe_code))]
#![cfg_attr(feature = "bench", deny(unsafe_code))]
#![warn(missing_docs)]

mod advisor;
#[cfg(feature = "bench")]
pub mod alloc_counter;
mod analysis;
mod config;
mod error;
pub mod inflight;
mod pipeline;
mod report;
mod sim;

pub use advisor::{AdvisorConfig, DomainUtilisation, DvfsAdvisor};
pub use analysis::{analyze, comm_graph};
#[cfg(feature = "chaos")]
pub use config::ChaosFaults;
pub use config::{Clocking, DvfsPlan, ProcessorConfig, SimLimits};
pub use error::{DeadlockReport, DeadlockTrigger, PortState, SimError};
pub use gals_analysis::{codes, AnalysisReport, Finding, Severity};
pub use inflight::{
    BranchInfo, FetchedInstr, InFlightCold, InFlightTable, InstrId, Redirect, RetiredInstr,
    SrcTags, Tag,
};
pub use pipeline::Pipeline;
pub use report::{DomainCycles, SimReport};
pub use sim::{simulate, simulate_with_engine};
