//! A counting global allocator (`bench` feature only): wraps the system
//! allocator and counts every allocation, so tests and benchmarks can pin
//! the simulator's zero-allocation steady-state claims.
//!
//! Install it in the consuming binary/test crate:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gals_core::alloc_counter::CountingAllocator =
//!     gals_core::alloc_counter::CountingAllocator::new();
//! ```
//!
//! and diff [`CountingAllocator::allocations`] around the region under
//! test. The counters are relaxed atomics — cheap enough to leave enabled
//! for whole benchmark runs, and exact on a single thread.

#![allow(unsafe_code)] // the GlobalAlloc contract itself

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts calls and bytes.
#[derive(Debug, Default)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    allocated_bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter (all zeros).
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            allocated_bytes: AtomicU64::new(0),
        }
    }

    /// Number of allocation calls (`alloc`, `alloc_zeroed`, and `realloc`s
    /// that had to move) so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested by counted allocation calls.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes.load(Ordering::Relaxed)
    }

    fn count(&self, bytes: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.allocated_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

// SAFETY: defers every contract obligation to `System`; the counters have
// no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count(new_size);
        System.realloc(ptr, layout, new_size)
    }
}
