//! Structured simulation failures.
//!
//! A run that cannot produce a [`SimReport`](crate::SimReport) fails with a
//! [`SimError`] instead of aborting the process. The two failure classes
//! are caught at different layers:
//!
//! * **Invalid configuration** is rejected by [`simulate`](crate::simulate)
//!   before any pipeline state is built, so a mis-configured matrix point
//!   costs nothing and cannot poison a shared sweep.
//! * **Deadlock** — no commit inside the watchdog window, or every domain
//!   clock parked with the run unfinished — ends the run with a
//!   [`DeadlockReport`]: a deterministic snapshot of the stuck machine
//!   (parked clocks, channel and rendezvous-port occupancy, ROB/IQ heads,
//!   last-commit time). The same hung configuration produces the same
//!   report bit-for-bit, so a wedge found in a sweep is reproducible from
//!   its recorded diagnostics alone.

use std::fmt;

use gals_analysis::Finding;
use gals_events::Time;

/// What ended a deadlocked run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockTrigger {
    /// The commit watchdog fired: no instruction committed for
    /// [`SimLimits::watchdog_cycles`](crate::SimLimits) slow-domain periods
    /// while at least one domain clock kept ticking.
    Watchdog,
    /// Idle-tick elision parked all five domain clocks with the run
    /// unfinished. Parked clocks can only be woken by another domain's
    /// tick, so an all-parked unfinished machine can never make progress —
    /// this is the elision-aware equivalent of an empty event queue.
    AllParked,
}

impl DeadlockTrigger {
    /// Stable lowercase label (used in JSON artifacts).
    pub fn as_str(self) -> &'static str {
        match self {
            DeadlockTrigger::Watchdog => "watchdog",
            DeadlockTrigger::AllParked => "all-parked",
        }
    }
}

/// Occupancy of one inter-domain channel or rendezvous port at deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortState {
    /// Items currently buffered (0 or 1 for a rendezvous port).
    pub len: usize,
    /// Buffer capacity (1 for a rendezvous port).
    pub capacity: usize,
    /// Whether the crossing is a single-entry rendezvous port.
    pub rendezvous: bool,
}

impl fmt::Display for PortState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.rendezvous { "r" } else { "" };
        write!(f, "{}/{}{}", self.len, self.capacity, tag)
    }
}

/// Deterministic snapshot of the pipeline at the instant a deadlock was
/// detected.
///
/// Built once, by the first tick that trips the watchdog (or by the driver
/// when the last live clock parks), from state that is itself a pure
/// function of the configuration and workload seed — so re-running the same
/// point reproduces the same report exactly, which the chaos-mode tests
/// pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Which detector ended the run.
    pub trigger: DeadlockTrigger,
    /// Simulated time at detection.
    pub now: Time,
    /// Simulated time of the last commit (`Time::ZERO` if nothing ever
    /// committed).
    pub last_commit_time: Time,
    /// The configured watchdog window, in slow-domain periods.
    pub watchdog_cycles: u64,
    /// Instructions committed before the machine wedged.
    pub committed: u64,
    /// Which domain clocks the driver had parked, indexed by
    /// [`Domain::index`](gals_clocks::Domain) (all `false` under the
    /// engine driver, which never elides).
    pub parked: [bool; 5],
    /// ROB occupancy.
    pub rob_len: usize,
    /// Sequence number of the ROB head — the instruction commit is stuck
    /// behind — if the ROB is non-empty.
    pub rob_head_seq: Option<u64>,
    /// Decode-buffer occupancy (fetched, not yet renamed).
    pub decode_buf_len: usize,
    /// Issue-queue occupancy per cluster (int, fp, mem).
    pub iq_len: [usize; 3],
    /// Finished executions awaiting writeback per cluster — in rendezvous
    /// mode these are exactly the instructions blocked on occupied ports.
    pub writeback_pending_len: [usize; 3],
    /// Fetch→decode channel occupancy.
    pub ch_fetch_decode: PortState,
    /// Decode→cluster dispatch channel occupancy (int, fp, mem).
    pub ch_dispatch: [PortState; 3],
    /// Cluster→decode completion channel occupancy (int, fp, mem).
    pub ch_complete: [PortState; 3],
    /// Cluster→fetch redirect channel occupancy.
    pub ch_redirect: PortState,
    /// Total wakeup tags in flight across the nine cross-cluster links.
    pub ch_wakeup_total: usize,
    /// Lifetime rendezvous-blocked cycles per domain (all zero outside
    /// rendezvous mode).
    pub rendezvous_blocked: [u64; 5],
    /// The unresolved-recovery branch sequence, if a misprediction was
    /// mid-recovery.
    pub pending_recovery: Option<u64>,
    /// Whether fetch had drained the program.
    pub fetch_halted: bool,
    /// Whether fetch was on the wrong path.
    pub wrong_path: bool,
    /// The static analyzer's pre-flight verdict on this run, if it
    /// flagged anything (the code of the worst warning-level finding,
    /// e.g. `"GA002"` for an armed chaos wedge): a deadlock that was
    /// statically predictable says so in its own report.
    pub static_finding: Option<String>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock ({}) at {}: no commit since {} ({} committed, window {} cycles)",
            self.trigger.as_str(),
            self.now,
            self.last_commit_time,
            self.committed,
            self.watchdog_cycles,
        )?;
        let parked: Vec<&str> = ["fetch", "decode", "int", "fp", "mem"]
            .iter()
            .zip(self.parked.iter())
            .filter_map(|(name, &p)| p.then_some(*name))
            .collect();
        writeln!(
            f,
            "  parked=[{}] rob={} head_seq={:?} decode_buf={}",
            parked.join(","),
            self.rob_len,
            self.rob_head_seq,
            self.decode_buf_len,
        )?;
        writeln!(
            f,
            "  iq=[{},{},{}] writeback_pending=[{},{},{}]",
            self.iq_len[0],
            self.iq_len[1],
            self.iq_len[2],
            self.writeback_pending_len[0],
            self.writeback_pending_len[1],
            self.writeback_pending_len[2],
        )?;
        writeln!(
            f,
            "  ch: fetch->decode={} dispatch=[{},{},{}] complete=[{},{},{}] \
             redirect={} wakeup_total={}",
            self.ch_fetch_decode,
            self.ch_dispatch[0],
            self.ch_dispatch[1],
            self.ch_dispatch[2],
            self.ch_complete[0],
            self.ch_complete[1],
            self.ch_complete[2],
            self.ch_redirect,
            self.ch_wakeup_total,
        )?;
        write!(
            f,
            "  rendezvous_blocked={:?} pending_recovery={:?} fetch_halted={} wrong_path={}",
            self.rendezvous_blocked, self.pending_recovery, self.fetch_halted, self.wrong_path,
        )?;
        if let Some(code) = &self.static_finding {
            write!(
                f,
                "\n  static_finding={code} (flagged by pre-flight analysis at submit)"
            )?;
        }
        Ok(())
    }
}

/// Why a simulation run failed to produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed static analysis; the simulation never
    /// started. The boxed [`Finding`] carries the stable code (`GA…`),
    /// severity and message of the first error-level finding.
    InvalidConfig(Box<Finding>),
    /// The machine stopped making progress; the boxed report is a
    /// deterministic snapshot of the stuck state.
    Deadlock(Box<DeadlockReport>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(finding) => {
                write!(f, "invalid processor configuration: {finding}")
            }
            SimError::Deadlock(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for SimError {}
