//! Value-generation strategies: ranges, tuples, maps, filters, unions,
//! collections and boxed (type-erased) strategies.

use std::ops::Range;

/// Deterministic RNG used to draw test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name, so every test draws its own
    /// reproducible sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in [0, bound).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of values for one test argument.
///
/// `sample` returns `None` when the drawn value was rejected (by a filter or
/// an exhausted retry budget); the runner then rejects the whole case and
/// draws a fresh one.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling rejected
    /// draws. `whence` names the filter in exhaustion panics.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy for heterogeneous composition
    /// ([`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        // Local retries keep cheap filters from rejecting whole cases; after
        // the budget, reject upward (the runner will panic if the filter
        // starves the test entirely, citing `whence`).
        for _ in 0..64 {
            if let Some(v) = self.inner.sample(rng) {
                if let Some(out) = (self.f)(v) {
                    return Some(out);
                }
            }
        }
        let _ = self.whence;
        None
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                Some((self.start as i128 + draw as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($idx:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 S0);
    (0 S0, 1 S1);
    (0 S0, 1 S1, 2 S2);
    (0 S0, 1 S1, 2 S2, 3 S3);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9, 10 S10);
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7, 8 S8, 9 S9, 10 S10, 11 S11);
}

/// Length bounds for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = self.size.max - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}

/// See [`crate::array::uniform5`].
pub struct UniformArray<S, const N: usize> {
    pub(crate) element: S,
}

impl<S: Strategy + Clone, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Option<[S::Value; N]> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(self.element.sample(rng)?);
        }
        out.try_into()
            .ok()
            .or_else(|| unreachable!("exactly N sampled"))
    }
}
