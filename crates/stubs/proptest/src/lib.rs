//! Offline stub of the slice of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible miniature: the `proptest!` macro, `prop_assert*` /
//! `prop_assume!`, range/tuple/vec/array strategies, `prop_map`,
//! `prop_filter_map`, `prop_oneof!` and `any::<bool>()`.
//!
//! Differences from upstream, by design:
//!
//! * cases are drawn from a deterministic per-test RNG (seeded from the test
//!   name), so failures reproduce without a persistence file;
//! * there is no shrinking — a failing case panics with the message from the
//!   failed assertion;
//! * the default case count is 64 (upstream: 256) to keep the heavier
//!   whole-pipeline properties fast in CI.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform5`).
pub mod array {
    use crate::strategy::{Strategy, UniformArray};

    /// A strategy for `[S::Value; 5]` sampling each element from `strategy`.
    pub fn uniform5<S: Strategy + Clone>(strategy: S) -> UniformArray<S, 5> {
        UniformArray { element: strategy }
    }
}

/// The `Arbitrary` trait and the `any` entry point.
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy of an [`Arbitrary`] type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case (and
/// its inputs' debug forms) is reported via panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header, then test functions whose arguments are
/// drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::strategy::TestRng::for_test(stringify!($name));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(200).saturating_add(1_000),
                    "proptest '{}': too many rejected samples ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    config.cases
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg = match $crate::strategy::Strategy::sample(&($strategy), &mut rng) {
                                ::core::option::Option::Some(v) => v,
                                ::core::option::Option::None => {
                                    return ::core::result::Result::Err(
                                        $crate::test_runner::TestCaseError::Reject,
                                    )
                                }
                            };
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' case {} failed: {}", stringify!($name), ran, msg)
                    }
                }
            }
        }
    )*};
}
