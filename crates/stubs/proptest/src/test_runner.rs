//! Runner configuration and case outcomes.

pub use crate::strategy::TestRng;

/// Configuration of a `proptest!` block, settable via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Outcome of one drawn case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (by `prop_assume!` or a filter); draw another.
    Reject,
    /// An assertion failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}
