//! Offline stub of the small slice of the `rand` crate API this workspace
//! uses (`SmallRng`, `SeedableRng`, `Rng::{gen, gen_bool, gen_range}`).
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real `rand`. The generator is xoshiro256++ seeded via SplitMix64 —
//! statistically solid for workload synthesis, deterministic across
//! platforms. The sampled *sequences* differ from upstream `rand`; nothing in
//! the workspace depends on upstream's exact streams, only on determinism
//! per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro reference implementation recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn FnMut() -> u64) -> bool {
        rng() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> u64 {
        rng()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng() as u128) % width;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::sample(&mut f)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(3);
        let total: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum();
        let mean = total / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "{mean}");
    }
}
