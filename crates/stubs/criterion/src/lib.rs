//! Offline stub of the slice of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real Criterion: same macro/builder surface
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `Throughput`), a plain wall-clock measurement loop
//! instead of statistics, and one summary line per benchmark on stdout:
//!
//! ```text
//! bench simulate/base/gcc ... 1234567 ns/iter (8100 elem/s)
//! ```
//!
//! Iteration counts auto-scale to keep each benchmark around
//! `MEASURE_TARGET` of wall time, so both quick CI smoke runs and real
//! measurements use the same entry point.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(400);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, auto-scaling the iteration count to the target
    /// measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: time a single iteration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            format!(" ({:.0} elem/s)", n as f64 * 1e9 / ns_per_iter)
        }
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            format!(" ({:.0} B/s)", n as f64 * 1e9 / ns_per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name} ... {ns_per_iter:.0} ns/iter{rate}");
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark over an input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
