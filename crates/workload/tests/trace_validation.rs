//! Trace validation: the executed `.gasm` kernels must actually resemble
//! the synthetic profiles they were written to model.
//!
//! Each kernel names a reference [`Benchmark`] profile; this suite
//! executes the kernel and pins its *executed-trace* statistics against
//! the profile's knobs. Tolerances (deliberately documented here, not
//! buried in the asserts):
//!
//! * op-class fractions (branch, load, store, fp, int-mul): within
//!   **±0.03 absolute** of the profile fraction — real control flow
//!   cannot hit a synthetic mix exactly, but a kernel drifting further
//!   than this no longer stands in for its benchmark;
//! * aggregate conditional-branch taken rate: within **±0.02 absolute**
//!   of the profile's `branch_bias` (the profiles use bias as the
//!   strongly-predictable fraction; the kernels realise it as the
//!   aggregate taken rate of their data-dependent branches);
//! * mean inner-loop trip count: within **±10% relative** of the
//!   profile's `loop_trip`.
//!
//! The stats come from [`gals_isa::TraceStats`], i.e. the same executed
//! trace the trace-replay program feeds both schedulers — so these bounds
//! hold for what is actually simulated, not for a separate model.

use gals_isa::parse;
use gals_workload::ProgramKernel;

const FUEL: u64 = 4_000_000;

/// Absolute tolerance on dynamic op-class fractions.
const FRAC_TOL: f64 = 0.03;
/// Absolute tolerance on the aggregate conditional taken rate.
const TAKEN_TOL: f64 = 0.02;
/// Relative tolerance on the mean inner-loop trip count.
const TRIP_REL_TOL: f64 = 0.10;

fn assert_close(kernel: ProgramKernel, what: &str, got: f64, want: f64, tol: f64) {
    assert!(
        (got - want).abs() <= tol,
        "{kernel}: {what} = {got:.4}, profile wants {want:.4} (tol {tol})"
    );
}

#[test]
fn kernel_traces_match_their_reference_profiles() {
    for kernel in ProgramKernel::ALL {
        let module = parse(kernel.source()).unwrap_or_else(|e| panic!("{kernel}: {e}"));
        let exec = module
            .execute(0, FUEL)
            .unwrap_or_else(|e| panic!("{kernel}: {e}"));
        let s = &exec.stats;
        let p = kernel.reference_profile().profile();

        assert_close(
            kernel,
            "branch fraction",
            s.branch_frac(),
            p.frac_branch,
            FRAC_TOL,
        );
        assert_close(
            kernel,
            "load fraction",
            s.load_frac(),
            p.frac_load,
            FRAC_TOL,
        );
        assert_close(
            kernel,
            "store fraction",
            s.store_frac(),
            p.frac_store,
            FRAC_TOL,
        );
        assert_close(kernel, "fp fraction", s.fp_frac(), p.frac_fp, FRAC_TOL);
        assert_close(
            kernel,
            "int-mul fraction",
            s.int_mul_frac(),
            p.frac_int_mul,
            FRAC_TOL,
        );
        assert_close(
            kernel,
            "taken rate",
            s.taken_rate(),
            p.branch_bias,
            TAKEN_TOL,
        );

        let trip = s.mean_trip();
        let want = f64::from(p.loop_trip);
        assert!(
            (trip - want).abs() <= want * TRIP_REL_TOL,
            "{kernel}: mean trip {trip:.2}, profile wants {want} (±{:.0}%)",
            TRIP_REL_TOL * 100.0
        );
    }
}

#[test]
fn kernel_traces_are_structurally_real_programs() {
    // The acceptance floor: real loops (back-edges dominate executed
    // conditionals), data-dependent branches (the taken rate is neither 0
    // nor 1), and for gcc_like a live call/return stack.
    for kernel in ProgramKernel::ALL {
        let module = parse(kernel.source()).unwrap_or_else(|e| panic!("{kernel}: {e}"));
        let exec = module
            .execute(0, FUEL)
            .unwrap_or_else(|e| panic!("{kernel}: {e}"));
        let s = &exec.stats;
        assert!(s.executed > 50_000, "{kernel}: trace too short");
        assert!(s.backedge_execs > 0, "{kernel}: no loop back-edges");
        assert!(
            s.taken_rate() > 0.5 && s.taken_rate() < 1.0,
            "{kernel}: taken rate {} is not loop-like",
            s.taken_rate()
        );
    }
    let gcc = parse(ProgramKernel::GccLike.source()).expect("gcc_like parses");
    let exec = gcc.execute(0, FUEL).expect("gcc_like executes");
    assert_eq!(
        exec.stats.max_call_depth, 1,
        "gcc_like exercises call/return"
    );
}

#[test]
fn kernel_stats_are_identical_across_seeds() {
    // The kernels' branches and addresses are all architectural, so the
    // executed-trace statistics are a function of the source alone; the
    // seed only feeds declared behavioural draws (these kernels have
    // none). A seed-dependent stat would leak synthetic behaviour into
    // the program-driven axis.
    for kernel in ProgramKernel::ALL {
        let module = parse(kernel.source()).unwrap_or_else(|e| panic!("{kernel}: {e}"));
        let a = module.execute(3, FUEL).expect("seed 3").stats;
        let b = module.execute(4, FUEL).expect("seed 4").stats;
        assert_eq!(a, b, "{kernel}");
    }
}
