//! Hand-written microbenchmark kernels for tests, examples and calibration.

use gals_isa::{ArchReg, BranchBehavior, Inst, MemBehavior, OpClass, Program, ProgramBuilder};

/// A tight counted loop of `body_len` independent integer ALU operations per
/// iteration — the simplest possible IPC probe.
///
/// # Examples
///
/// ```
/// use gals_workload::micro;
/// use gals_isa::DynStream;
///
/// let p = micro::alu_loop(100, 4);
/// // 4 ALU + 1 branch per trip, plus the final exit nop.
/// assert_eq!(DynStream::new(&p).count(), 100 * 5 + 1);
/// ```
pub fn alu_loop(trips: u32, body_len: usize) -> Program {
    assert!(trips >= 2 && body_len >= 1);
    let mut b = ProgramBuilder::new(1);
    let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: trips });
    let mut insts = Vec::with_capacity(body_len + 1);
    for i in 0..body_len {
        // Independent chains: r8..r15 round-robin, no cross dependences.
        let r = ArchReg::int(8 + (i % 8) as u8);
        insts.push(Inst::alu(OpClass::IntAlu, r, Some(r), None));
    }
    insts.push(Inst::branch(Some(ArchReg::int(8)), beh));
    let blk = b.add_block(insts, None, None);
    let exit = b.add_block(vec![Inst::nop()], None, None);
    b.set_edges(blk, Some(blk), Some(exit));
    b.build().expect("alu_loop is structurally valid")
}

/// A serial dependency chain: every ALU op reads the previous one's result.
/// IPC approaches 1 regardless of width — exposes forwarding latency.
pub fn dependency_chain(trips: u32, body_len: usize) -> Program {
    assert!(trips >= 2 && body_len >= 1);
    let mut b = ProgramBuilder::new(2);
    let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: trips });
    let r = ArchReg::int(9);
    let mut insts = Vec::with_capacity(body_len + 1);
    for _ in 0..body_len {
        insts.push(Inst::alu(OpClass::IntAlu, r, Some(r), None));
    }
    insts.push(Inst::branch(Some(r), beh));
    let blk = b.add_block(insts, None, None);
    let exit = b.add_block(vec![Inst::nop()], None, None);
    b.set_edges(blk, Some(blk), Some(exit));
    b.build().expect("dependency_chain is structurally valid")
}

/// A streaming-load loop walking `footprint` bytes with 64-byte stride —
/// exercises L1/L2/memory according to the footprint.
pub fn stream_loads(trips: u32, footprint: u64) -> Program {
    assert!(trips >= 2 && footprint >= 64);
    let mut b = ProgramBuilder::new(3);
    let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: trips });
    let mem = b.add_mem_behavior(MemBehavior::Stride {
        base: 0x2000_0000,
        stride: 64,
        footprint,
    });
    let blk = b.add_block(
        vec![
            Inst::load(ArchReg::int(10), Some(ArchReg::int(11)), mem),
            Inst::alu(
                OpClass::IntAlu,
                ArchReg::int(11),
                Some(ArchReg::int(10)),
                None,
            ),
            Inst::branch(Some(ArchReg::int(11)), beh),
        ],
        None,
        None,
    );
    let exit = b.add_block(vec![Inst::nop()], None, None);
    b.set_edges(blk, Some(blk), Some(exit));
    b.build().expect("stream_loads is structurally valid")
}

/// A loop whose single if-branch is taken with probability 0.5 — a
/// worst-case branch predictor workload for misprediction experiments.
pub fn random_branches(trips: u32) -> Program {
    assert!(trips >= 2);
    let mut b = ProgramBuilder::new(4);
    let backedge = b.add_branch_behavior(BranchBehavior::Loop { trip: trips });
    let coin = b.add_branch_behavior(BranchBehavior::TakenProb(0.5));
    // b0: work + coin-flip branch; taken -> b2 (skip b1).
    let b0 = b.add_block(
        vec![
            Inst::alu(
                OpClass::IntAlu,
                ArchReg::int(8),
                Some(ArchReg::int(8)),
                None,
            ),
            Inst::branch(Some(ArchReg::int(8)), coin),
        ],
        None,
        None,
    );
    let b1 = b.add_block(
        vec![Inst::alu(
            OpClass::IntAlu,
            ArchReg::int(9),
            Some(ArchReg::int(9)),
            None,
        )],
        None,
        None,
    );
    let b2 = b.add_block(
        vec![
            Inst::alu(
                OpClass::IntAlu,
                ArchReg::int(10),
                Some(ArchReg::int(10)),
                None,
            ),
            Inst::branch(Some(ArchReg::int(10)), backedge),
        ],
        None,
        None,
    );
    let exit = b.add_block(vec![Inst::nop()], None, None);
    b.set_edges(b0, Some(b2), Some(b1));
    b.set_edges(b1, None, Some(b2));
    b.set_edges(b2, Some(b0), Some(exit));
    b.build().expect("random_branches is structurally valid")
}

/// A mixed int/FP loop where FP results feed integer stores — creates
/// cross-cluster (domain 3 <-> 4 <-> 5) forwarding traffic, the paper's key
/// GALS overhead.
pub fn cross_cluster(trips: u32) -> Program {
    assert!(trips >= 2);
    let mut b = ProgramBuilder::new(5);
    let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: trips });
    let loads = b.add_mem_behavior(MemBehavior::Stride {
        base: 0x3000_0000,
        stride: 8,
        footprint: 8 * 1024,
    });
    // Stores write the word the *next* iteration's load reads, so the load
    // usually finds the store still pending and forwards from the buffer.
    let stores = b.add_mem_behavior(MemBehavior::Stride {
        base: 0x3000_0008,
        stride: 8,
        footprint: 8 * 1024,
    });
    let blk = b.add_block(
        vec![
            // load -> fp -> fp -> store chain crossing mem/fp domains.
            Inst::load(ArchReg::fp(8), Some(ArchReg::int(8)), loads),
            Inst::alu(
                OpClass::FpMul,
                ArchReg::fp(9),
                Some(ArchReg::fp(8)),
                Some(ArchReg::fp(9)),
            ),
            Inst::alu(OpClass::FpAdd, ArchReg::fp(10), Some(ArchReg::fp(9)), None),
            Inst::store(Some(ArchReg::fp(10)), Some(ArchReg::int(8)), stores),
            Inst::alu(
                OpClass::IntAlu,
                ArchReg::int(8),
                Some(ArchReg::int(8)),
                None,
            ),
            Inst::branch(Some(ArchReg::int(8)), beh),
        ],
        None,
        None,
    );
    let exit = b.add_block(vec![Inst::nop()], None, None);
    b.set_edges(blk, Some(blk), Some(exit));
    b.build().expect("cross_cluster is structurally valid")
}

/// A loop in which every iteration stores a ready value and then loads the
/// same word back through a slow address dependence — the store is always
/// pending when the load issues, so the load forwards from the store
/// buffer.
pub fn store_forward(trips: u32) -> Program {
    assert!(trips >= 2);
    let mut b = ProgramBuilder::new(6);
    let beh = b.add_branch_behavior(BranchBehavior::Loop { trip: trips });
    let stream = b.add_mem_behavior(MemBehavior::Stride {
        base: 0x4000_0000,
        stride: 8,
        footprint: 4 * 1024,
    });
    // The load shares the store's address stream (identical behaviour =>
    // identical n-th address). A 20-cycle divide *older* than the store
    // holds up in-order commit, so the store is still buffered (not yet
    // drained to the cache) when the load issues right behind it.
    let same_stream = b.add_mem_behavior(MemBehavior::Stride {
        base: 0x4000_0000,
        stride: 8,
        footprint: 4 * 1024,
    });
    let blk = b.add_block(
        vec![
            Inst::alu(
                OpClass::IntDiv,
                ArchReg::int(12),
                Some(ArchReg::int(12)),
                None,
            ),
            Inst::store(Some(ArchReg::int(8)), Some(ArchReg::int(8)), stream),
            Inst::load(ArchReg::int(11), Some(ArchReg::int(8)), same_stream),
            Inst::alu(
                OpClass::IntAlu,
                ArchReg::int(8),
                Some(ArchReg::int(8)),
                None,
            ),
            Inst::branch(Some(ArchReg::int(8)), beh),
        ],
        None,
        None,
    );
    let exit = b.add_block(vec![Inst::nop()], None, None);
    b.set_edges(blk, Some(blk), Some(exit));
    b.build().expect("store_forward is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::DynStream;

    #[test]
    fn alu_loop_length() {
        let p = alu_loop(10, 3);
        assert_eq!(DynStream::new(&p).count(), 10 * 4 + 1);
    }

    #[test]
    fn dependency_chain_is_serial() {
        let p = dependency_chain(5, 4);
        let insts: Vec<_> = DynStream::new(&p).collect();
        assert_eq!(insts.len(), 26); // 5 trips x 5 insts + exit nop
    }

    #[test]
    fn stream_loads_walks_memory() {
        let p = stream_loads(10, 1 << 20);
        let addrs: Vec<u64> = DynStream::new(&p).filter_map(|d| d.mem_addr).collect();
        assert_eq!(addrs.len(), 10);
        assert_eq!(addrs[1] - addrs[0], 64);
    }

    #[test]
    fn random_branches_flip_roughly_evenly() {
        let p = random_branches(2_000);
        let outcomes: Vec<bool> = DynStream::new(&p)
            .filter(|d| d.op == gals_isa::OpClass::BranchCond && d.pc == 4)
            .map(|d| d.taken)
            .collect();
        let taken = outcomes.iter().filter(|&&t| t).count() as f64 / outcomes.len() as f64;
        assert!((0.42..0.58).contains(&taken), "taken rate {taken}");
    }

    #[test]
    fn cross_cluster_touches_three_clusters() {
        use gals_isa::Cluster;
        let p = cross_cluster(5);
        let clusters: std::collections::HashSet<Cluster> =
            DynStream::new(&p).map(|d| d.op.cluster()).collect();
        assert!(clusters.contains(&Cluster::Int));
        assert!(clusters.contains(&Cluster::Fp));
        assert!(clusters.contains(&Cluster::Mem));
    }
}
