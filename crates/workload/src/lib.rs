//! # gals-workload
//!
//! Synthetic benchmark workloads standing in for the paper's SPEC95 and
//! MediaBench binaries (see DESIGN.md §2 for why a statistically matched
//! synthetic stream preserves the paper's effects).
//!
//! Each [`Benchmark`] carries a [`WorkloadProfile`] — instruction mix,
//! branch density and predictability, memory footprint and locality,
//! dependence structure — and [`generate`] synthesises a deterministic
//! [`gals_isa::Program`] from it. The same `(benchmark, seed)` pair always
//! yields the same program, so the synchronous baseline and the GALS
//! processor are compared on identical "binaries" exactly as in the paper.
//!
//! ```
//! use gals_workload::{generate, Benchmark};
//! use gals_isa::DynStream;
//!
//! let program = generate(Benchmark::Fpppp, 42);
//! let branches = DynStream::new(&program)
//!     .take(10_000)
//!     .filter(|d| d.op.is_branch())
//!     .count();
//! // fpppp: roughly one branch per 67 instructions.
//! assert!(branches < 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod kernels;
pub mod micro;
mod profile;

pub use gen::{generate, generate_profile};
pub use kernels::{generate_workload, ProgramKernel, Workload};
pub use profile::{Benchmark, Suite, WorkloadProfile};
