//! Program-driven workloads: checked-in `.gasm` kernels executed to a
//! concrete trace, as an alternative to the synthetic profiles.
//!
//! Each [`ProgramKernel`] embeds the source of one assembly kernel from
//! `examples/programs/` at compile time. [`generate_workload`] parses and
//! functionally executes it (resolving every architectural branch and
//! address from real register values) and returns the trace-replay
//! [`Program`], which both schedulers then consume through the same stream
//! interface as the synthetic programs.
//!
//! [`Workload`] is the sum of the two axes — a synthetic [`Benchmark`]
//! profile or a [`ProgramKernel`] — and is what the sweep matrix ranges
//! over. Kernel identity is content-addressed: [`Workload::identity`]
//! hashes the kernel source, so editing a `.gasm` file changes every
//! affected `RunKey` and invalidates exactly the cached results that
//! depended on it.

use std::fmt;

use gals_isa::{rng::fnv1a, Program};

use crate::gen::generate;
use crate::profile::Benchmark;

/// Execution fuel for kernel traces: enough for every checked-in kernel
/// (each terminates well under 200k dynamic instructions) with a wide
/// margin, while still bounding a buggy kernel that loops forever.
const KERNEL_FUEL: u64 = 4_000_000;

/// A checked-in `.gasm` kernel (see `docs/PROGRAM_FORMAT.md` and
/// `examples/programs/`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramKernel {
    /// Integer, branchy, hash-table-flavoured kernel (models [`Benchmark::Gcc`]).
    GccLike,
    /// FP-dense kernel with very long basic blocks (models [`Benchmark::Fpppp`]).
    FppppLike,
    /// Multiply-heavy image-compression kernel (models [`Benchmark::Ijpeg`]).
    IjpegLike,
}

impl ProgramKernel {
    /// All checked-in kernels.
    pub const ALL: [ProgramKernel; 3] = [
        ProgramKernel::GccLike,
        ProgramKernel::FppppLike,
        ProgramKernel::IjpegLike,
    ];

    /// Lower-case display name (without the `prog:` axis prefix).
    pub fn name(self) -> &'static str {
        match self {
            ProgramKernel::GccLike => "gcc_like",
            ProgramKernel::FppppLike => "fpppp_like",
            ProgramKernel::IjpegLike => "ijpeg_like",
        }
    }

    /// The kernel's `.gasm` source text, embedded at compile time.
    pub fn source(self) -> &'static str {
        match self {
            ProgramKernel::GccLike => include_str!("../../../examples/programs/gcc_like.gasm"),
            ProgramKernel::FppppLike => include_str!("../../../examples/programs/fpppp_like.gasm"),
            ProgramKernel::IjpegLike => include_str!("../../../examples/programs/ijpeg_like.gasm"),
        }
    }

    /// The synthetic benchmark whose profile this kernel was written to
    /// resemble — the reference for the trace-validation tests.
    pub fn reference_profile(self) -> Benchmark {
        match self {
            ProgramKernel::GccLike => Benchmark::Gcc,
            ProgramKernel::FppppLike => Benchmark::Fpppp,
            ProgramKernel::IjpegLike => Benchmark::Ijpeg,
        }
    }
}

impl fmt::Display for ProgramKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prog:{}", self.name())
    }
}

/// A workload for the simulator: either a synthetic [`Benchmark`] profile
/// or a checked-in [`ProgramKernel`] executed to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Synthetic profile-driven workload (the original axis).
    Profile(Benchmark),
    /// Program-driven workload: a `.gasm` kernel executed to a trace.
    Kernel(ProgramKernel),
}

impl Workload {
    /// Every workload: the 12 synthetic profiles, then the 3 kernels.
    pub fn all() -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::Profile(b))
            .chain(ProgramKernel::ALL.iter().map(|&k| Workload::Kernel(k)))
            .collect()
    }

    /// Display / matrix-file name: `"gcc"` for profiles, `"prog:gcc_like"`
    /// for kernels.
    pub fn name(self) -> String {
        match self {
            Workload::Profile(b) => b.name().to_string(),
            Workload::Kernel(k) => format!("prog:{}", k.name()),
        }
    }

    /// Cache-key identity. Profiles use their name (the profile constants
    /// are versioned by the sweep schema); kernels append a 16-hex-digit
    /// FNV-1a hash of the embedded source, so editing a kernel changes its
    /// identity and invalidates exactly the cache entries built from it.
    pub fn identity(self) -> String {
        match self {
            Workload::Profile(b) => b.name().to_string(),
            Workload::Kernel(k) => {
                format!("prog:{}#{:016x}", k.name(), fnv1a(k.source().as_bytes()))
            }
        }
    }

    /// Parses a workload name as written in matrix files: a benchmark name
    /// (`"gcc"`) or a `prog:`-prefixed kernel name (`"prog:gcc_like"`).
    pub fn by_name(name: &str) -> Option<Workload> {
        if let Some(kernel) = name.strip_prefix("prog:") {
            ProgramKernel::ALL
                .iter()
                .find(|k| k.name() == kernel)
                .map(|&k| Workload::Kernel(k))
        } else {
            Benchmark::ALL
                .iter()
                .find(|b| b.name() == name)
                .map(|&b| Workload::Profile(b))
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Generates the program for a workload.
///
/// Profiles go through the synthetic generator exactly as [`generate`]
/// does. Kernels are parsed and functionally executed at `seed` (the seed
/// feeds their declared behavioural ops; architectural control flow is
/// seed-independent), yielding a trace-replay program whose dynamic stream
/// is the executed trace.
///
/// # Panics
///
/// Panics if a checked-in kernel fails to parse or execute — that is a
/// build defect (the CI smoke gate runs every kernel), not a runtime
/// condition, and the sweep executor isolates per-run panics anyway.
pub fn generate_workload(workload: Workload, seed: u64) -> Program {
    match workload {
        Workload::Profile(b) => generate(b, seed),
        Workload::Kernel(k) => {
            let module =
                gals_isa::parse(k.source()).unwrap_or_else(|e| panic!("kernel {}: {e}", k.name()));
            module
                .execute(seed, KERNEL_FUEL)
                .unwrap_or_else(|e| panic!("kernel {}: {e}", k.name()))
                .program
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::DynStream;

    #[test]
    fn kernels_execute_and_terminate() {
        for k in ProgramKernel::ALL {
            let p = generate_workload(Workload::Kernel(k), 0);
            let n = DynStream::new(&p).count();
            assert!(n > 10_000, "{k}: only {n} dynamic instructions");
        }
    }

    #[test]
    fn names_round_trip_through_by_name() {
        for w in Workload::all() {
            assert_eq!(Workload::by_name(&w.name()), Some(w), "{w}");
        }
        assert_eq!(Workload::by_name("prog:nope"), None);
        assert_eq!(Workload::by_name("nope"), None);
    }

    #[test]
    fn kernel_identity_is_content_addressed() {
        let id = Workload::Kernel(ProgramKernel::GccLike).identity();
        let hash = format!("{:016x}", fnv1a(ProgramKernel::GccLike.source().as_bytes()));
        assert_eq!(id, format!("prog:gcc_like#{hash}"));
        // Distinct kernels get distinct identities.
        let ids: std::collections::BTreeSet<_> =
            Workload::all().iter().map(|w| w.identity()).collect();
        assert_eq!(ids.len(), Workload::all().len());
    }

    #[test]
    fn profile_identity_is_the_plain_name() {
        assert_eq!(Workload::Profile(Benchmark::Gcc).identity(), "gcc");
        assert_eq!(Workload::Profile(Benchmark::Gcc).name(), "gcc");
    }

    #[test]
    fn kernel_trace_is_seed_stable_in_control_flow() {
        // Architectural control flow must not depend on the seed: the same
        // kernel at two seeds takes the same path (only declared
        // behavioural ops draw from the seed, and these kernels' branches
        // are all architectural).
        for k in ProgramKernel::ALL {
            let a = generate_workload(Workload::Kernel(k), 1);
            let b = generate_workload(Workload::Kernel(k), 2);
            let pa: Vec<_> = DynStream::new(&a).take(20_000).map(|d| d.pc).collect();
            let pb: Vec<_> = DynStream::new(&b).take(20_000).map(|d| d.pc).collect();
            assert_eq!(pa, pb, "{k}");
        }
    }
}
