//! Workload profiles: statistical descriptions of the paper's benchmarks.
//!
//! The paper evaluates on SPEC95 and MediaBench binaries. Those binaries
//! (and a SimpleScalar/Alpha toolchain to run them) are not available here,
//! so each benchmark is replaced by a *profile* — the dynamic-stream
//! statistics that drive every effect the paper measures — from which
//! `generate` synthesises a concrete program. The characteristics the paper
//! itself calls out are encoded directly:
//!
//! * *fpppp*: "exceptionally small proportion of branch instructions; on an
//!   average only one in every 67 instructions is a branch" (most other
//!   applications: one in five to six);
//! * *perl*: "virtually no floating-point instructions";
//! * *ijpeg*: "a very low proportion of memory accesses";
//! * *gcc*: "the instruction bandwidth of this benchmark is also low".

use std::fmt;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC95 integer.
    Spec95Int,
    /// SPEC95 floating point.
    Spec95Fp,
    /// MediaBench.
    MediaBench,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Spec95Int => write!(f, "SPEC95 int"),
            Suite::Spec95Fp => write!(f, "SPEC95 fp"),
            Suite::MediaBench => write!(f, "MediaBench"),
        }
    }
}

/// The benchmarks used as workload stand-ins (paper section 5: "a set of
/// benchmarks taken from the Spec95 and the Mediabench benchmark suites").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Gcc,
    Perl,
    Ijpeg,
    Compress,
    Go,
    Li,
    Fpppp,
    Swim,
    Applu,
    Mpeg2,
    Adpcm,
    Epic,
}

impl Benchmark {
    /// All benchmarks, integer suite first.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Gcc,
        Benchmark::Perl,
        Benchmark::Ijpeg,
        Benchmark::Compress,
        Benchmark::Go,
        Benchmark::Li,
        Benchmark::Fpppp,
        Benchmark::Swim,
        Benchmark::Applu,
        Benchmark::Mpeg2,
        Benchmark::Adpcm,
        Benchmark::Epic,
    ];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gcc => "gcc",
            Benchmark::Perl => "perl",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Compress => "compress",
            Benchmark::Go => "go",
            Benchmark::Li => "li",
            Benchmark::Fpppp => "fpppp",
            Benchmark::Swim => "swim",
            Benchmark::Applu => "applu",
            Benchmark::Mpeg2 => "mpeg2",
            Benchmark::Adpcm => "adpcm",
            Benchmark::Epic => "epic",
        }
    }

    /// Suite of origin.
    pub fn suite(self) -> Suite {
        match self {
            Benchmark::Gcc
            | Benchmark::Perl
            | Benchmark::Ijpeg
            | Benchmark::Compress
            | Benchmark::Go
            | Benchmark::Li => Suite::Spec95Int,
            Benchmark::Fpppp | Benchmark::Swim | Benchmark::Applu => Suite::Spec95Fp,
            Benchmark::Mpeg2 | Benchmark::Adpcm | Benchmark::Epic => Suite::MediaBench,
        }
    }

    /// True for the integer benchmarks (the population the paper's Figure 8
    /// misspeculation numbers average over).
    pub fn is_integer(self) -> bool {
        self.suite() == Suite::Spec95Int
    }

    /// The workload profile of this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        profile_of(self)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistical description of a dynamic instruction stream, sufficient to
/// synthesise a program exercising the same microarchitectural behaviour.
///
/// Fractions are of the *dynamic* instruction stream and must satisfy
/// `frac_branch + frac_load + frac_store + frac_fp + frac_int_mul +
/// frac_int_div <= 1` (the remainder is single-cycle integer ALU work).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Display name.
    pub name: &'static str,
    /// Fraction of conditional branches (including loop back-edges).
    pub frac_branch: f64,
    /// Fraction of loads.
    pub frac_load: f64,
    /// Fraction of stores.
    pub frac_store: f64,
    /// Fraction of FP operations (split internally add/mul/div).
    pub frac_fp: f64,
    /// Fraction of integer multiplies.
    pub frac_int_mul: f64,
    /// Fraction of integer divides.
    pub frac_int_div: f64,
    /// Fraction of non-loop branches that are strongly biased (easy to
    /// predict); the rest are data-dependent with taken probabilities near
    /// 0.5.
    pub branch_bias: f64,
    /// Mean trip count of inner loops.
    pub loop_trip: u32,
    /// Total data footprint in bytes (sets cache behaviour against the
    /// 16 KB L1 / 256 KB L2 hierarchy).
    pub footprint: u64,
    /// Fraction of memory reference streams that walk sequentially (the
    /// rest are hot/cold mixtures or uniform random within the footprint).
    pub stride_frac: f64,
    /// Among non-streaming references, the probability of a *low-locality*
    /// uniform-random stream (the cache-hostility knob; the rest are
    /// L1-friendly hot/cold mixtures).
    pub random_frac: f64,
    /// Mean register dependence distance (in instructions) between a value's
    /// producer and its consumers; small values serialise, large values
    /// expose ILP.
    pub dep_distance: u32,
    /// Number of call-connected functions in the synthesised program.
    pub functions: u32,
}

impl WorkloadProfile {
    /// Validates fraction arithmetic.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            self.frac_branch,
            self.frac_load,
            self.frac_store,
            self.frac_fp,
            self.frac_int_mul,
            self.frac_int_div,
            self.branch_bias,
            self.stride_frac,
            self.random_frac,
        ];
        if fracs.iter().any(|f| !(0.0..=1.0).contains(f)) {
            return Err(format!("{}: a fraction is outside [0,1]", self.name));
        }
        let sum = self.frac_branch
            + self.frac_load
            + self.frac_store
            + self.frac_fp
            + self.frac_int_mul
            + self.frac_int_div;
        if sum > 1.0 {
            return Err(format!("{}: instruction mix sums to {sum} > 1", self.name));
        }
        if self.frac_branch <= 0.0 {
            return Err(format!("{}: programs need branches to loop", self.name));
        }
        if self.loop_trip < 2 {
            return Err(format!("{}: loop trip must be at least 2", self.name));
        }
        if self.footprint == 0 || self.functions == 0 || self.dep_distance == 0 {
            return Err(format!("{}: zero structural parameter", self.name));
        }
        Ok(())
    }

    /// Fraction of memory operations in the stream.
    pub fn frac_mem(&self) -> f64 {
        self.frac_load + self.frac_store
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn profile_of(b: Benchmark) -> WorkloadProfile {
    match b {
        // One branch per ~5 instructions, no FP, moderate predictability,
        // big instruction working set: the classic hard integer benchmark.
        Benchmark::Gcc => WorkloadProfile {
            name: "gcc",
            frac_branch: 0.19,
            frac_load: 0.23,
            frac_store: 0.11,
            frac_fp: 0.01,
            frac_int_mul: 0.01,
            frac_int_div: 0.0,
            branch_bias: 0.93,
            loop_trip: 12,
            footprint: 768 * KB,
            stride_frac: 0.3,
            random_frac: 0.06,
            dep_distance: 8,
            functions: 10,
        },
        Benchmark::Perl => WorkloadProfile {
            name: "perl",
            frac_branch: 0.20,
            frac_load: 0.24,
            frac_store: 0.12,
            frac_fp: 0.005,
            frac_int_mul: 0.01,
            frac_int_div: 0.001,
            branch_bias: 0.93,
            loop_trip: 12,
            footprint: 512 * KB,
            stride_frac: 0.35,
            random_frac: 0.06,
            dep_distance: 8,
            functions: 8,
        },
        // "Very low proportion of memory accesses": DCT-style compute.
        Benchmark::Ijpeg => WorkloadProfile {
            name: "ijpeg",
            frac_branch: 0.11,
            frac_load: 0.09,
            frac_store: 0.04,
            frac_fp: 0.04,
            frac_int_mul: 0.06,
            frac_int_div: 0.002,
            branch_bias: 0.95,
            loop_trip: 32,
            footprint: 192 * KB,
            stride_frac: 0.8,
            random_frac: 0.05,
            dep_distance: 10,
            functions: 6,
        },
        Benchmark::Compress => WorkloadProfile {
            name: "compress",
            frac_branch: 0.16,
            frac_load: 0.26,
            frac_store: 0.10,
            frac_fp: 0.0,
            frac_int_mul: 0.005,
            frac_int_div: 0.0,
            branch_bias: 0.88,
            loop_trip: 16,
            footprint: MB, // hash tables: low locality
            stride_frac: 0.15,
            random_frac: 0.25,
            dep_distance: 6,
            functions: 4,
        },
        Benchmark::Go => WorkloadProfile {
            name: "go",
            frac_branch: 0.19,
            frac_load: 0.21,
            frac_store: 0.08,
            frac_fp: 0.0,
            frac_int_mul: 0.005,
            frac_int_div: 0.0,
            branch_bias: 0.85, // notoriously unpredictable
            loop_trip: 8,
            footprint: 384 * KB,
            stride_frac: 0.2,
            random_frac: 0.08,
            dep_distance: 8,
            functions: 12,
        },
        Benchmark::Li => WorkloadProfile {
            name: "li",
            frac_branch: 0.19,
            frac_load: 0.27, // pointer chasing
            frac_store: 0.11,
            frac_fp: 0.0,
            frac_int_mul: 0.0,
            frac_int_div: 0.0,
            branch_bias: 0.93,
            loop_trip: 12,
            footprint: 384 * KB,
            stride_frac: 0.15,
            random_frac: 0.08,
            dep_distance: 6,
            functions: 8,
        },
        // "Only one in every 67 instructions is a branch."
        Benchmark::Fpppp => WorkloadProfile {
            name: "fpppp",
            frac_branch: 0.015,
            frac_load: 0.26,
            frac_store: 0.11,
            frac_fp: 0.46,
            frac_int_mul: 0.0,
            frac_int_div: 0.0,
            branch_bias: 0.97,
            loop_trip: 40,
            footprint: 256 * KB,
            stride_frac: 0.85,
            random_frac: 0.0,
            dep_distance: 14,
            functions: 3,
        },
        Benchmark::Swim => WorkloadProfile {
            name: "swim",
            frac_branch: 0.03,
            frac_load: 0.30,
            frac_store: 0.14,
            frac_fp: 0.42,
            frac_int_mul: 0.0,
            frac_int_div: 0.0,
            branch_bias: 0.97,
            loop_trip: 64,
            footprint: 2 * MB, // streams through L2
            stride_frac: 0.95,
            random_frac: 0.0,
            dep_distance: 14,
            functions: 3,
        },
        Benchmark::Applu => WorkloadProfile {
            name: "applu",
            frac_branch: 0.04,
            frac_load: 0.28,
            frac_store: 0.12,
            frac_fp: 0.40,
            frac_int_mul: 0.0,
            frac_int_div: 0.004,
            branch_bias: 0.95,
            loop_trip: 32,
            footprint: 1536 * KB,
            stride_frac: 0.9,
            random_frac: 0.05,
            dep_distance: 12,
            functions: 4,
        },
        Benchmark::Mpeg2 => WorkloadProfile {
            name: "mpeg2",
            frac_branch: 0.10,
            frac_load: 0.24,
            frac_store: 0.07,
            frac_fp: 0.08,
            frac_int_mul: 0.05,
            frac_int_div: 0.0,
            branch_bias: 0.93,
            loop_trip: 24,
            footprint: 768 * KB,
            stride_frac: 0.85,
            random_frac: 0.05,
            dep_distance: 10,
            functions: 5,
        },
        Benchmark::Adpcm => WorkloadProfile {
            name: "adpcm",
            frac_branch: 0.21,
            frac_load: 0.11,
            frac_store: 0.05,
            frac_fp: 0.0,
            frac_int_mul: 0.01,
            frac_int_div: 0.0,
            branch_bias: 0.90,
            loop_trip: 24,
            footprint: 16 * KB, // tiny kernel: everything hits in L1
            stride_frac: 0.9,
            random_frac: 0.0,
            dep_distance: 6,
            functions: 2,
        },
        Benchmark::Epic => WorkloadProfile {
            name: "epic",
            frac_branch: 0.10,
            frac_load: 0.26,
            frac_store: 0.09,
            frac_fp: 0.06,
            frac_int_mul: 0.04,
            frac_int_div: 0.0,
            branch_bias: 0.92,
            loop_trip: 24,
            footprint: 384 * KB,
            stride_frac: 0.8,
            random_frac: 0.05,
            dep_distance: 10,
            functions: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            b.profile().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn fpppp_matches_the_papers_branch_density() {
        // "Only one in every 67 instructions is a branch."
        let p = Benchmark::Fpppp.profile();
        let per_branch = 1.0 / p.frac_branch;
        assert!(
            (60.0..75.0).contains(&per_branch),
            "1 branch per {per_branch}"
        );
        // Everyone else: roughly one per five or six.
        for b in [
            Benchmark::Gcc,
            Benchmark::Perl,
            Benchmark::Go,
            Benchmark::Li,
        ] {
            let f = b.profile().frac_branch;
            assert!((0.15..0.25).contains(&f), "{b}: branch fraction {f}");
        }
    }

    #[test]
    fn perl_and_gcc_have_virtually_no_fp() {
        // "Virtually no floating-point instructions" (paper, perl): at most
        // a token amount, so the FP-clock experiments of Figures 11/13 can
        // distinguish 2x from 3x slowdowns without costing performance.
        assert!(Benchmark::Perl.profile().frac_fp <= 0.01);
        assert!(Benchmark::Gcc.profile().frac_fp <= 0.01);
        assert!(Benchmark::Fpppp.profile().frac_fp > 0.4);
    }

    #[test]
    fn ijpeg_memory_traffic_is_low() {
        let ij = Benchmark::Ijpeg.profile().frac_mem();
        for other in [Benchmark::Gcc, Benchmark::Compress, Benchmark::Li] {
            assert!(
                ij < other.profile().frac_mem() / 2.0,
                "ijpeg ({ij}) vs {other}"
            );
        }
    }

    #[test]
    fn suites_partition_benchmarks() {
        assert_eq!(Benchmark::ALL.iter().filter(|b| b.is_integer()).count(), 6);
        assert_eq!(Benchmark::Fpppp.suite(), Suite::Spec95Fp);
        assert_eq!(Benchmark::Mpeg2.suite(), Suite::MediaBench);
        assert_eq!(format!("{}", Suite::MediaBench), "MediaBench");
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        let mut p = Benchmark::Gcc.profile();
        p.frac_load = 0.9;
        assert!(p.validate().is_err());
        let mut p = Benchmark::Gcc.profile();
        p.frac_branch = 0.0;
        assert!(p.validate().is_err());
        let mut p = Benchmark::Gcc.profile();
        p.loop_trip = 1;
        assert!(p.validate().is_err());
    }
}
