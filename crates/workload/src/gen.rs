//! Program synthesis: turns a [`WorkloadProfile`] into a concrete
//! [`Program`] whose dynamic stream matches the profile's statistics.
//!
//! The synthesised shape is a *dispatcher loop* calling a set of functions
//! (exercising the call/return predictor), each function an inner loop over
//! a chain of basic blocks with if-diamond side exits. Block length is
//! derived from the profile's branch density; loop back-edges use exact
//! trip-count behaviours (predictable), if-branches use biased or
//! data-dependent probabilities per `branch_bias`.

use gals_isa::{
    ArchReg, BranchBehavior, Inst, MemBehavior, MemBehaviorId, OpClass, Program, ProgramBuilder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::{Benchmark, WorkloadProfile};

/// Number of distinct memory reference streams per program.
const MEM_STREAMS: usize = 8;
/// Body blocks per function loop.
const BLOCKS_PER_LOOP: usize = 4;
/// Data-register ring (r8..r23, f8..f23).
const RING_BASE: u8 = 8;
const RING_LEN: u8 = 16;
/// One mebibyte.
const MB: u64 = 1024 * 1024;

/// Generates the program for a named benchmark.
///
/// The same `(benchmark, seed)` pair always yields the identical program,
/// so the synchronous and GALS machines run the same "binary" — the
/// property the paper's comparisons rest on.
///
/// # Examples
///
/// ```
/// use gals_workload::{generate, Benchmark};
/// let program = generate(Benchmark::Gcc, 42);
/// assert!(program.static_inst_count() > 100);
/// ```
pub fn generate(benchmark: Benchmark, seed: u64) -> Program {
    generate_profile(&benchmark.profile(), seed)
}

/// Generates a program from an explicit profile.
///
/// # Panics
///
/// Panics if the profile fails [`WorkloadProfile::validate`] (the built-in
/// benchmark profiles never do).
pub fn generate_profile(profile: &WorkloadProfile, seed: u64) -> Program {
    profile
        .validate()
        .unwrap_or_else(|e| panic!("invalid workload profile: {e}"));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6A5C_935A_9E1D_47B1);
    let mut b = ProgramBuilder::new(seed);

    let mem_ids = build_mem_streams(&mut b, profile, &mut rng);

    // Derived block length: one structural branch per block.
    let block_len = ((1.0 / profile.frac_branch).round() as usize)
        .saturating_sub(1)
        .max(1);

    let mut gen = InstGen::new(profile, mem_ids);

    // Function bodies first; remember entries.
    let mut func_entries = Vec::new();
    for _ in 0..profile.functions {
        func_entries.push(build_function(
            &mut b, profile, block_len, &mut gen, &mut rng,
        ));
    }

    // Dispatcher: c0 -> c1 -> ... -> c_{F-1} -> backedge to c0.
    // Block c_i ends in a Call to function i; its fallthrough (the return
    // target) is c_{i+1}.
    let dispatch_behavior = b.add_branch_behavior(BranchBehavior::Loop { trip: u32::MAX });
    let call_blocks: Vec<_> = (0..func_entries.len())
        .map(|_| {
            let mut insts = gen.straight_line(2, &mut rng);
            insts.push(Inst::call());
            b.add_block(insts, None, None)
        })
        .collect();
    let backedge_block = {
        let mut insts = gen.straight_line(2, &mut rng);
        insts.push(Inst::branch(Some(gen.recent_int()), dispatch_behavior));
        b.add_block(insts, None, None)
    };
    let exit_block = b.add_block(vec![Inst::nop()], None, None);

    for (i, &cb) in call_blocks.iter().enumerate() {
        let ret_to = if i + 1 < call_blocks.len() {
            call_blocks[i + 1]
        } else {
            backedge_block
        };
        b.set_edges(cb, Some(func_entries[i]), Some(ret_to));
    }
    b.set_edges(backedge_block, Some(call_blocks[0]), Some(exit_block));
    b.set_entry(call_blocks[0]);

    b.build().expect("generator produced an invalid program")
}

/// Registers the program's memory reference streams.
fn build_mem_streams(
    b: &mut ProgramBuilder,
    profile: &WorkloadProfile,
    rng: &mut SmallRng,
) -> Vec<MemBehaviorId> {
    let region = (profile.footprint / MEM_STREAMS as u64).max(64);
    (0..MEM_STREAMS)
        .map(|i| {
            let base = 0x10_0000 + i as u64 * region;
            let behavior = if rng.gen_bool(profile.stride_frac) {
                // Small-footprint codes walk blocked tiles that stay cache
                // resident after the first pass (loop blocking); large-
                // footprint scientific codes genuinely stream.
                // Tile sizes chosen so the union of all blocked tiles
                // stays L1-resident: kernels with small footprints re-walk
                // tiny tiles (tight DSP/linear-algebra blocks), mid-size
                // codes use page-ish tiles, big scientific codes stream.
                let tile = if profile.footprint <= 256 * 1024 {
                    1_536
                } else if profile.footprint <= MB {
                    8 * 1024
                } else {
                    u64::MAX
                };
                MemBehavior::Stride {
                    base,
                    // 8- or 16-byte element walks: one L1 miss per 8 or 4
                    // accesses while streaming (64-byte lines).
                    stride: if rng.gen_bool(0.7) { 8 } else { 16 },
                    footprint: region.min(tile),
                }
            } else if rng.gen_bool(profile.random_frac) {
                // Low-locality stream: the profile's cache-hostility knob.
                MemBehavior::Random {
                    base,
                    footprint: region,
                }
            } else {
                // Stack/heap-like mixture: a small hot set that lives in L1
                // plus occasional cold excursions over the region.
                MemBehavior::HotCold {
                    base,
                    hot: (region / 64).clamp(64, 2_048),
                    cold: region,
                    hot_frac: 0.97,
                }
            };
            b.add_mem_behavior(behavior)
        })
        .collect()
}

/// Builds one function (inner loop over a chain of blocks, then `ret`);
/// returns the entry block id.
fn build_function(
    b: &mut ProgramBuilder,
    profile: &WorkloadProfile,
    block_len: usize,
    gen: &mut InstGen,
    rng: &mut SmallRng,
) -> gals_isa::BlockId {
    // Trip count around the profile mean (x0.5 .. x2).
    let trip = (profile.loop_trip as f64 * rng.gen_range(0.5..2.0))
        .round()
        .max(2.0) as u32;
    let backedge = b.add_branch_behavior(BranchBehavior::Loop { trip });

    let bodies: Vec<_> = (0..BLOCKS_PER_LOOP)
        .map(|i| {
            // Later blocks get slightly shorter bodies so skipping an
            // if-diamond changes path length (realistic control variance).
            let len = if i == 0 {
                block_len
            } else {
                block_len.max(2) - 1
            };
            let mut insts = gen.straight_line(len, rng);
            let cond_src = Some(gen.recent_int());
            let branch = if i == BLOCKS_PER_LOOP - 1 {
                Inst::branch(cond_src, backedge)
            } else {
                let beh = if rng.gen_bool(profile.branch_bias) {
                    // Strongly biased: mostly taken or mostly not-taken.
                    let p = if rng.gen_bool(0.5) {
                        rng.gen_range(0.02..0.12)
                    } else {
                        rng.gen_range(0.88..0.98)
                    };
                    BranchBehavior::TakenProb(p)
                } else {
                    BranchBehavior::TakenProb(rng.gen_range(0.35..0.65))
                };
                let id = b.add_branch_behavior(beh);
                Inst::branch(cond_src, id)
            };
            insts.push(branch);
            b.add_block(insts, None, None)
        })
        .collect();
    let exit = b.add_block(vec![Inst::ret()], None, None);

    for i in 0..BLOCKS_PER_LOOP {
        let (taken, fall);
        if i == BLOCKS_PER_LOOP - 1 {
            taken = bodies[0]; // loop back-edge
            fall = exit;
        } else {
            // If-diamond: taken skips the next block.
            taken = bodies[(i + 2).min(BLOCKS_PER_LOOP - 1)];
            fall = bodies[i + 1];
        }
        b.set_edges(bodies[i], Some(taken), Some(fall));
    }
    bodies[0]
}

/// Stateful instruction sampler: keeps register rings and recent-writer
/// lists so dependences have the profile's mean distance.
struct InstGen {
    frac_load: f64,
    frac_store: f64,
    frac_fp: f64,
    frac_mul: f64,
    frac_div: f64,
    fp_load_frac: f64,
    dep_distance: u32,
    mem_ids: Vec<MemBehaviorId>,
    int_ring: u8,
    fp_ring: u8,
    recent_int: Vec<ArchReg>,
    recent_fp: Vec<ArchReg>,
    mem_cursor: usize,
}

impl InstGen {
    fn new(profile: &WorkloadProfile, mem_ids: Vec<MemBehaviorId>) -> Self {
        // Renormalise the mix over non-branch instructions.
        let non_branch = 1.0 - profile.frac_branch;
        InstGen {
            frac_load: profile.frac_load / non_branch,
            frac_store: profile.frac_store / non_branch,
            frac_fp: profile.frac_fp / non_branch,
            frac_mul: profile.frac_int_mul / non_branch,
            frac_div: profile.frac_int_div / non_branch,
            fp_load_frac: if profile.frac_fp > 0.0 { 0.5 } else { 0.0 },
            dep_distance: profile.dep_distance,
            mem_ids,
            int_ring: 0,
            fp_ring: 0,
            recent_int: vec![ArchReg::int(RING_BASE)],
            recent_fp: vec![ArchReg::fp(RING_BASE)],
            mem_cursor: 0,
        }
    }

    fn next_int_dst(&mut self) -> ArchReg {
        let r = ArchReg::int(RING_BASE + self.int_ring);
        self.int_ring = (self.int_ring + 1) % RING_LEN;
        self.recent_int.push(r);
        if self.recent_int.len() > 32 {
            self.recent_int.remove(0);
        }
        r
    }

    fn next_fp_dst(&mut self) -> ArchReg {
        let r = ArchReg::fp(RING_BASE + self.fp_ring);
        self.fp_ring = (self.fp_ring + 1) % RING_LEN;
        self.recent_fp.push(r);
        if self.recent_fp.len() > 32 {
            self.recent_fp.remove(0);
        }
        r
    }

    fn recent_int(&self) -> ArchReg {
        *self.recent_int.last().expect("seeded non-empty")
    }

    fn pick_src(&self, fp: bool, rng: &mut SmallRng) -> ArchReg {
        let pool = if fp {
            &self.recent_fp
        } else {
            &self.recent_int
        };
        let d = rng.gen_range(1..=self.dep_distance as usize);
        let idx = pool.len().saturating_sub(d).min(pool.len() - 1);
        pool[idx]
    }

    fn next_mem(&mut self) -> MemBehaviorId {
        let id = self.mem_ids[self.mem_cursor % self.mem_ids.len()];
        self.mem_cursor += 1;
        id
    }

    /// Samples `len` non-branch instructions.
    fn straight_line(&mut self, len: usize, rng: &mut SmallRng) -> Vec<Inst> {
        (0..len).map(|_| self.sample(rng)).collect()
    }

    fn sample(&mut self, rng: &mut SmallRng) -> Inst {
        let x: f64 = rng.gen();
        let mut acc = self.frac_load;
        if x < acc {
            let fp_dst = rng.gen_bool(self.fp_load_frac);
            let addr_src = Some(self.pick_src(false, rng));
            let mem = self.next_mem();
            let dst = if fp_dst {
                self.next_fp_dst()
            } else {
                self.next_int_dst()
            };
            return Inst::load(dst, addr_src, mem);
        }
        acc += self.frac_store;
        if x < acc {
            let data_fp = rng.gen_bool(self.fp_load_frac);
            let data = Some(self.pick_src(data_fp, rng));
            let addr = Some(self.pick_src(false, rng));
            let mem = self.next_mem();
            // Stores carry the int address dependence as src1 and data as src2.
            return Inst::store(data, addr, mem);
        }
        acc += self.frac_fp;
        if x < acc {
            let op = match rng.gen_range(0..10) {
                0..=4 => OpClass::FpAdd,
                5..=8 => OpClass::FpMul,
                _ => OpClass::FpDiv,
            };
            let s1 = Some(self.pick_src(true, rng));
            let s2 = Some(self.pick_src(true, rng));
            let dst = self.next_fp_dst();
            return Inst::alu(op, dst, s1, s2);
        }
        acc += self.frac_mul;
        if x < acc {
            let s1 = Some(self.pick_src(false, rng));
            let s2 = Some(self.pick_src(false, rng));
            let dst = self.next_int_dst();
            return Inst::alu(OpClass::IntMul, dst, s1, s2);
        }
        acc += self.frac_div;
        if x < acc {
            let s1 = Some(self.pick_src(false, rng));
            let s2 = Some(self.pick_src(false, rng));
            let dst = self.next_int_dst();
            return Inst::alu(OpClass::IntDiv, dst, s1, s2);
        }
        let s1 = Some(self.pick_src(false, rng));
        let s2 = if rng.gen_bool(0.5) {
            Some(self.pick_src(false, rng))
        } else {
            None
        };
        let dst = self.next_int_dst();
        Inst::alu(OpClass::IntAlu, dst, s1, s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::DynStream;
    use std::collections::HashMap;

    fn dynamic_mix(bench: Benchmark, n: usize) -> HashMap<&'static str, f64> {
        let p = generate(bench, 7);
        let mut counts: HashMap<&'static str, u64> = HashMap::new();
        let mut total = 0u64;
        for d in DynStream::new(&p).take(n) {
            let key = match d.op {
                OpClass::Load => "load",
                OpClass::Store => "store",
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => "fp",
                OpClass::BranchCond => "branch",
                OpClass::Call | OpClass::Ret | OpClass::Jump => "ctl",
                _ => "int",
            };
            *counts.entry(key).or_default() += 1;
            total += 1;
        }
        counts
            .into_iter()
            .map(|(k, v)| (k, v as f64 / total as f64))
            .collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Benchmark::Gcc, 3);
        let b = generate(Benchmark::Gcc, 3);
        assert_eq!(a.static_inst_count(), b.static_inst_count());
        let sa: Vec<_> = DynStream::new(&a)
            .take(5_000)
            .map(|d| (d.pc, d.taken))
            .collect();
        let sb: Vec<_> = DynStream::new(&b)
            .take(5_000)
            .map(|d| (d.pc, d.taken))
            .collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Benchmark::Gcc, 3);
        let b = generate(Benchmark::Gcc, 4);
        let sa: Vec<_> = DynStream::new(&a).take(2_000).map(|d| d.pc).collect();
        let sb: Vec<_> = DynStream::new(&b).take(2_000).map(|d| d.pc).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gcc_dynamic_mix_tracks_profile() {
        let mix = dynamic_mix(Benchmark::Gcc, 60_000);
        let p = Benchmark::Gcc.profile();
        let branch = mix.get("branch").copied().unwrap_or(0.0);
        let load = mix.get("load").copied().unwrap_or(0.0);
        assert!(
            (branch - p.frac_branch).abs() < 0.05,
            "branch fraction {branch} vs profile {}",
            p.frac_branch
        );
        assert!(
            (load - p.frac_load).abs() < 0.06,
            "load fraction {load} vs profile {}",
            p.frac_load
        );
        let fp = mix.get("fp").copied().unwrap_or(0.0);
        assert!(fp < 0.03, "gcc fp fraction {fp} should be token-sized");
    }

    #[test]
    fn fpppp_is_branch_poor_and_fp_rich() {
        let mix = dynamic_mix(Benchmark::Fpppp, 60_000);
        let branch =
            mix.get("branch").copied().unwrap_or(0.0) + mix.get("ctl").copied().unwrap_or(0.0);
        assert!(branch < 0.03, "fpppp branch fraction {branch}");
        let fp = mix.get("fp").copied().unwrap_or(0.0);
        assert!(fp > 0.35, "fpppp fp fraction {fp}");
    }

    #[test]
    fn ijpeg_memory_fraction_is_low() {
        let mix = dynamic_mix(Benchmark::Ijpeg, 60_000);
        let mem =
            mix.get("load").copied().unwrap_or(0.0) + mix.get("store").copied().unwrap_or(0.0);
        assert!(mem < 0.18, "ijpeg memory fraction {mem}");
    }

    #[test]
    fn streams_run_far_without_exiting() {
        for bench in Benchmark::ALL {
            let p = generate(bench, 11);
            let n = DynStream::new(&p).take(200_000).count();
            assert_eq!(n, 200_000, "{bench} exited early");
        }
    }

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for bench in Benchmark::ALL {
            let p = generate(bench, 1);
            assert!(p.block_count() > 5, "{bench}");
            assert!(p.static_inst_count() > 20, "{bench}");
        }
    }
}
