//! Microarchitecture configuration (the paper's Table 3).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles of the owning domain (hit latency).
    pub latency: u32,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `ways * line_bytes`, or a non-power-of-two set count).
    pub fn sets(&self) -> u64 {
        assert!(self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        let way_bytes = u64::from(self.ways) * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(way_bytes),
            "cache size {} not a multiple of ways*line {}",
            self.size_bytes,
            way_bytes
        );
        let sets = self.size_bytes / way_bytes;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        sets
    }
}

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Number of 2-bit counters in the gshare pattern history table
    /// (power of two).
    pub pht_entries: usize,
    /// Global history length in bits.
    pub history_bits: u32,
    /// Branch target buffer entries (power of two, direct mapped).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for BpredConfig {
    fn default() -> Self {
        BpredConfig {
            pht_entries: 4096,
            history_bits: 10,
            btb_entries: 512,
            ras_depth: 8,
        }
    }
}

/// Full microarchitecture parameter set; defaults reproduce the paper's
/// Table 3.
///
/// # Examples
///
/// ```
/// use gals_uarch::UarchConfig;
/// let cfg = UarchConfig::default();
/// assert_eq!(cfg.fetch_width, 4);
/// assert_eq!(cfg.int_iq_size, 20);
/// assert_eq!(cfg.l1d.sets(), 64); // 16 KB, 4-way, 64 B lines
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UarchConfig {
    /// Instructions fetched per front-end cycle ("fetch and decode rate: 4").
    pub fetch_width: u32,
    /// Instructions decoded/renamed per cycle.
    pub decode_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Integer issue queue capacity (paper: 20).
    pub int_iq_size: usize,
    /// FP issue queue capacity (paper: 16).
    pub fp_iq_size: usize,
    /// Memory issue queue capacity (paper: 16).
    pub mem_iq_size: usize,
    /// Per-queue issue width (instructions selected per cycle).
    pub issue_width: u32,
    /// Physical integer registers (paper: 72).
    pub int_phys_regs: u16,
    /// Physical FP registers (paper: 72).
    pub fp_phys_regs: u16,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Maximum unresolved branches in flight (RAT checkpoints).
    pub max_branches: usize,
    /// Integer ALUs (paper: 4).
    pub int_alus: u32,
    /// FP ALUs (paper: 4).
    pub fp_alus: u32,
    /// D-cache ports (loads/stores issued per memory cycle).
    pub mem_ports: u32,
    /// L1 data cache (paper: 16 KB 4-way, 1 cycle).
    pub l1d: CacheGeometry,
    /// L1 instruction cache (paper: 16 KB direct mapped, 1 cycle).
    pub l1i: CacheGeometry,
    /// Unified L2 (paper: 256 KB 4-way, 6 cycles).
    pub l2: CacheGeometry,
    /// Main memory latency in cycles (beyond L2; not specified by the paper,
    /// SimpleScalar-era default).
    pub mem_latency: u32,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// Store buffer capacity.
    pub store_buffer_size: usize,
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig {
            fetch_width: 4,
            decode_width: 4,
            commit_width: 4,
            int_iq_size: 20,
            fp_iq_size: 16,
            mem_iq_size: 16,
            issue_width: 4,
            int_phys_regs: 72,
            fp_phys_regs: 72,
            rob_size: 40,
            max_branches: 14,
            int_alus: 4,
            fp_alus: 4,
            mem_ports: 2,
            l1d: CacheGeometry {
                size_bytes: 16 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 1,
            },
            l1i: CacheGeometry {
                size_bytes: 16 * 1024,
                ways: 1,
                line_bytes: 64,
                latency: 1,
            },
            l2: CacheGeometry {
                size_bytes: 256 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 6,
            },
            mem_latency: 36,
            bpred: BpredConfig::default(),
            store_buffer_size: 16,
        }
    }
}

impl UarchConfig {
    /// Validates internal consistency (cache geometries, non-zero widths).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.decode_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.issue_width == 0 {
            return Err("issue width must be non-zero".into());
        }
        if usize::from(self.int_phys_regs) < crate::rename::NUM_ARCH_PER_CLASS
            || usize::from(self.fp_phys_regs) < crate::rename::NUM_ARCH_PER_CLASS
        {
            return Err("physical register file smaller than architectural state".into());
        }
        for (name, geom) in [("l1d", self.l1d), ("l1i", self.l1i), ("l2", self.l2)] {
            let way_bytes = u64::from(geom.ways) * geom.line_bytes;
            if geom.size_bytes == 0 || geom.ways == 0 || geom.line_bytes == 0 {
                return Err(format!("{name}: zero-sized geometry"));
            }
            if geom.size_bytes % way_bytes != 0 {
                return Err(format!("{name}: size not a multiple of ways*line"));
            }
            if !(geom.size_bytes / way_bytes).is_power_of_two() {
                return Err(format!("{name}: set count must be a power of two"));
            }
            if !geom.line_bytes.is_power_of_two() {
                return Err(format!("{name}: line size must be a power of two"));
            }
        }
        if !self.bpred.pht_entries.is_power_of_two() || !self.bpred.btb_entries.is_power_of_two() {
            return Err("branch predictor tables must be powers of two".into());
        }
        if self.rob_size == 0 || self.max_branches == 0 {
            return Err("rob and branch checkpoints must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table3() {
        let c = UarchConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.int_iq_size, 20);
        assert_eq!(c.fp_iq_size, 16);
        assert_eq!(c.mem_iq_size, 16);
        assert_eq!(c.int_phys_regs, 72);
        assert_eq!(c.fp_phys_regs, 72);
        assert_eq!(c.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l1d.latency, 1);
        assert_eq!(c.l1i.ways, 1);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.latency, 6);
        assert_eq!(c.int_alus, 4);
        assert_eq!(c.fp_alus, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 1,
        };
        assert_eq!(g.sets(), 64);
        let dm = CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 1,
            line_bytes: 64,
            latency: 1,
        };
        assert_eq!(dm.sets(), 256);
    }

    #[test]
    fn validate_catches_bad_geometry() {
        let mut c = UarchConfig::default();
        c.l1d.size_bytes = 1000;
        assert!(c.validate().is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one knob at a time is the point
    fn validate_catches_tiny_regfile() {
        let mut c = UarchConfig::default();
        c.int_phys_regs = 16;
        assert!(c.validate().is_err());
    }
}
