//! Reorder buffer: in-order allocation and commit, out-of-order completion,
//! squash-after-branch.

use std::collections::VecDeque;

/// Status of a reorder buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobStatus {
    /// Dispatched, waiting to issue or execute.
    InFlight,
    /// Finished execution; may commit when it reaches the head.
    Complete,
}

#[derive(Debug, Clone)]
struct RobEntry<T> {
    seq: u64,
    status: RobStatus,
    payload: T,
}

/// A bounded reorder buffer over payload type `T`, keyed by the dynamic
/// sequence numbers the pipeline already carries.
///
/// # Examples
///
/// ```
/// use gals_uarch::Rob;
///
/// let mut rob: Rob<&'static str> = Rob::new(4);
/// rob.alloc(0, "a").unwrap();
/// rob.alloc(1, "b").unwrap();
/// rob.complete(1);
/// assert!(rob.try_commit().is_none()); // head ("a") not complete
/// rob.complete(0);
/// assert_eq!(rob.try_commit(), Some((0, "a")));
/// assert_eq!(rob.try_commit(), Some((1, "b")));
/// ```
#[derive(Debug, Clone)]
pub struct Rob<T> {
    entries: VecDeque<RobEntry<T>>,
    capacity: usize,
    /// Peak/mean occupancy statistics.
    occupancy_sum: u64,
    occupancy_samples: u64,
    occupancy_peak: usize,
}

impl<T> Rob<T> {
    /// Creates a reorder buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            occupancy_sum: 0,
            occupancy_samples: 0,
            occupancy_peak: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when an entry can be allocated.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry at the tail.
    ///
    /// # Errors
    ///
    /// Returns the payload back when full (dispatch must stall).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not strictly greater than the current tail's
    /// sequence (allocation must be in program order).
    pub fn alloc(&mut self, seq: u64, payload: T) -> Result<(), T> {
        if !self.has_space() {
            return Err(payload);
        }
        if let Some(tail) = self.entries.back() {
            assert!(seq > tail.seq, "ROB allocation out of program order");
        }
        self.entries.push_back(RobEntry {
            seq,
            status: RobStatus::InFlight,
            payload,
        });
        Ok(())
    }

    /// Marks the entry with sequence `seq` complete. Returns `true` if the
    /// entry exists (it may have been squashed).
    pub fn complete(&mut self, seq: u64) -> bool {
        match self.entries.binary_search_by_key(&seq, |e| e.seq) {
            Ok(i) => {
                self.entries[i].status = RobStatus::Complete;
                true
            }
            Err(_) => false,
        }
    }

    /// Commits the head entry if complete, returning `(seq, payload)`.
    pub fn try_commit(&mut self) -> Option<(u64, T)> {
        if self.entries.front()?.status == RobStatus::Complete {
            let e = self.entries.pop_front().expect("peeked front exists");
            Some((e.seq, e.payload))
        } else {
            None
        }
    }

    /// Commits the head entry unconditionally, returning `(seq, payload)`.
    ///
    /// For callers that track completion outside the ROB (the pipeline keeps
    /// a completed flag on its in-flight table, making the per-completion
    /// [`Rob::complete`] search unnecessary): the ROB then only enforces
    /// program order.
    ///
    /// # Examples
    ///
    /// ```
    /// use gals_uarch::Rob;
    ///
    /// let mut rob: Rob<&str> = Rob::new(4);
    /// rob.alloc(7, "head").unwrap();
    /// rob.alloc(8, "next").unwrap();
    /// assert_eq!(rob.pop_head(), Some((7, "head")));
    /// assert_eq!(rob.len(), 1);
    /// ```
    pub fn pop_head(&mut self) -> Option<(u64, T)> {
        self.entries.pop_front().map(|e| (e.seq, e.payload))
    }

    /// Peeks the head entry without committing.
    pub fn head(&self) -> Option<(u64, RobStatus, &T)> {
        self.entries.front().map(|e| (e.seq, e.status, &e.payload))
    }

    /// Squashes every entry with sequence strictly greater than `seq`,
    /// returning the squashed payloads youngest-last.
    ///
    /// Convenience wrapper over [`Rob::squash_younger_into`]; hot callers
    /// (misprediction recovery under branchy workloads) should pass a
    /// reusable scratch buffer to the `_into` form instead.
    pub fn squash_younger(&mut self, seq: u64) -> Vec<T> {
        let mut squashed = Vec::new();
        self.squash_younger_into(seq, &mut squashed);
        squashed
    }

    /// Allocation-free form of [`Rob::squash_younger`]: clears `out` and
    /// fills it with the squashed payloads, oldest first. With a reused
    /// `out` buffer, recovery performs no heap allocation here.
    ///
    /// # Examples
    ///
    /// ```
    /// use gals_uarch::Rob;
    ///
    /// let mut rob = Rob::new(8);
    /// let mut scratch = Vec::new();
    /// for s in 0u64..4 {
    ///     rob.alloc(s, s).unwrap();
    /// }
    /// rob.squash_younger_into(1, &mut scratch);
    /// assert_eq!(scratch, vec![2, 3]);
    /// assert_eq!(rob.len(), 2);
    /// ```
    pub fn squash_younger_into(&mut self, seq: u64, out: &mut Vec<T>) {
        out.clear();
        while let Some(back) = self.entries.back() {
            if back.seq > seq {
                out.push(self.entries.pop_back().expect("back exists").payload);
            } else {
                break;
            }
        }
        out.reverse();
    }

    /// Iterates over `(seq, status)` of live entries, oldest first.
    pub fn iter_status(&self) -> impl Iterator<Item = (u64, RobStatus)> + '_ {
        self.entries.iter().map(|e| (e.seq, e.status))
    }

    /// Records an occupancy sample (the paper reports higher in-flight
    /// counts for GALS).
    pub fn sample_occupancy(&mut self) {
        self.sample_occupancy_n(1);
    }

    /// Records `n` occupancy samples at the current occupancy — exactly
    /// equivalent to `n` calls to [`Rob::sample_occupancy`] while the
    /// buffer is untouched (the idle-tick back-fill of a parked clock
    /// domain).
    pub fn sample_occupancy_n(&mut self, n: u64) {
        self.sample_occupancy_n_at(self.entries.len(), n);
    }

    /// Records `n` occupancy samples at an explicit occupancy — the
    /// back-fill form for a caller that froze the occupancy when the
    /// domain parked (the buffer may have changed in the same instant the
    /// domain was woken, strictly after the elided ticks).
    pub fn sample_occupancy_n_at(&mut self, occupancy: usize, n: u64) {
        if n == 0 {
            return;
        }
        self.occupancy_samples += n;
        self.occupancy_sum += occupancy as u64 * n;
        self.occupancy_peak = self.occupancy_peak.max(occupancy);
    }

    /// Mean sampled occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Peak sampled occupancy.
    pub fn peak_occupancy(&self) -> usize {
        self.occupancy_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_commit_order() {
        let mut rob = Rob::new(8);
        for s in 0..4 {
            rob.alloc(s, s * 10).unwrap();
        }
        for s in (0..4).rev() {
            rob.complete(s);
        }
        for s in 0..4 {
            assert_eq!(rob.try_commit(), Some((s, s * 10)));
        }
        assert!(rob.is_empty());
    }

    #[test]
    fn head_blocks_commit() {
        let mut rob = Rob::new(4);
        rob.alloc(0, ()).unwrap();
        rob.alloc(1, ()).unwrap();
        rob.complete(1);
        assert_eq!(rob.try_commit(), None);
        assert_eq!(
            rob.head().map(|(s, st, _)| (s, st)),
            Some((0, RobStatus::InFlight))
        );
    }

    #[test]
    fn capacity_rejects() {
        let mut rob = Rob::new(2);
        rob.alloc(0, "x").unwrap();
        rob.alloc(1, "y").unwrap();
        assert_eq!(rob.alloc(2, "z"), Err("z"));
    }

    #[test]
    fn squash_younger_pops_tail() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.alloc(s, s).unwrap();
        }
        let squashed = rob.squash_younger(2);
        assert_eq!(squashed, vec![3, 4]);
        assert_eq!(rob.len(), 3);
        // Sequence numbers may repeat the squashed range afterwards.
        rob.alloc(3, 33).unwrap();
        assert_eq!(rob.len(), 4);
    }

    #[test]
    fn squash_younger_into_reuses_caller_buffer() {
        let mut rob = Rob::new(8);
        let mut scratch = vec![99, 98]; // stale contents must be cleared
        for s in 0..6 {
            rob.alloc(s, s).unwrap();
        }
        rob.squash_younger_into(3, &mut scratch);
        assert_eq!(scratch, vec![4, 5]);
        assert_eq!(rob.len(), 4);
        // Nothing younger: the buffer empties rather than keeping old hits.
        rob.squash_younger_into(3, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn complete_missing_entry_is_false() {
        let mut rob: Rob<()> = Rob::new(4);
        rob.alloc(5, ()).unwrap();
        assert!(!rob.complete(99));
        assert!(rob.complete(5));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_alloc_panics() {
        let mut rob = Rob::new(4);
        rob.alloc(5, ()).unwrap();
        let _ = rob.alloc(4, ());
    }

    #[test]
    fn occupancy_stats() {
        let mut rob = Rob::new(4);
        rob.alloc(0, ()).unwrap();
        rob.sample_occupancy();
        rob.alloc(1, ()).unwrap();
        rob.sample_occupancy();
        assert_eq!(rob.mean_occupancy(), 1.5);
        assert_eq!(rob.peak_occupancy(), 2);
    }
}
