//! Set-associative caches with true-LRU replacement.
//!
//! Timing-only: the cache tracks tags, not data. Accesses report hit/miss
//! and maintain the statistics the power model consumes (every access
//! toggles the array's bitlines regardless of hit/miss).

use crate::config::CacheGeometry;

/// Statistics of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines filled (equals misses for this no-prefetch design).
    pub fills: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 when no accesses happened.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative, true-LRU, tag-only cache model.
///
/// # Examples
///
/// ```
/// use gals_uarch::{Cache, CacheGeometry};
///
/// let mut l1 = Cache::new(CacheGeometry { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 });
/// assert!(!l1.access(0x40));  // cold miss
/// assert!(l1.access(0x40));   // now resident
/// assert!(l1.access(0x44));   // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// `log2(line_bytes)` — geometry is validated power-of-two, so the
    /// per-access index/tag split is two shifts and a mask, not three
    /// divisions (this runs for every fetch tick and every load).
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU ordering per set: lower = more recently used rank. `lru[set*ways + way]`.
    lru: Vec<u8>,
    stats: CacheStats,
}

const INVALID_TAG: u64 = u64::MAX;

impl Cache {
    /// Builds a cache from a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see
    /// [`CacheGeometry::sets`]) or associativity exceeds 255.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        assert!(geometry.ways <= 255, "associativity above 255 unsupported");
        let slots = (sets * u64::from(geometry.ways)) as usize;
        assert!(
            geometry.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            geometry,
            line_shift: geometry.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            tags: vec![INVALID_TAG; slots],
            lru: (0..slots)
                .map(|i| (i % geometry.ways as usize) as u8)
                .collect(),
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u32 {
        self.geometry.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (u64, u64) {
        let line = addr >> self.line_shift;
        (line & self.set_mask, line >> self.set_shift)
    }

    /// Looks up `addr`; on miss the line is filled (allocate-on-miss for
    /// both reads and writes). Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let (set, tag) = self.index_tag(addr);
        let ways = self.geometry.ways as usize;
        let base = (set as usize) * ways;
        let slice = &mut self.tags[base..base + ways];
        if let Some(way) = slice.iter().position(|&t| t == tag) {
            self.touch(base, ways, way);
            return true;
        }
        self.stats.misses += 1;
        self.stats.fills += 1;
        // Victim = way with the highest LRU rank.
        let victim = (0..ways)
            .max_by_key(|&w| self.lru[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = tag;
        self.touch(base, ways, victim);
        false
    }

    /// Records `n` repeated hit accesses to a resident line — the bulk
    /// form of [`Cache::access`] for a front end replaying elided
    /// stalled-fetch cycles. A repeated hit to the line an access just
    /// touched changes nothing but the access count (the line is already
    /// most-recently-used), so the bulk application is bit-identical to
    /// `n` individual accesses.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the line is not resident.
    pub fn record_repeat_hits(&mut self, addr: u64, n: u64) {
        debug_assert!(self.probe(addr), "repeat-hit replay on a missing line");
        self.stats.accesses += n;
    }

    /// Probes without modifying state or statistics. Returns `true` if the
    /// line is resident.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index_tag(addr);
        let ways = self.geometry.ways as usize;
        let base = (set as usize) * ways;
        self.tags[base..base + ways].contains(&tag)
    }

    fn touch(&mut self, base: usize, ways: usize, way: usize) {
        let old = self.lru[base + way];
        for w in 0..ways {
            if self.lru[base + w] < old {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + way] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: u32) -> Cache {
        Cache::new(CacheGeometry {
            size_bytes: 4 * 64 * u64::from(ways),
            ways,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(2); // 4 sets, 2 ways
                              // Three lines mapping to set 0: line numbers 0, 4, 8 (addr = line*64).
        assert!(!c.access(0));
        assert!(!c.access(4 * 64));
        assert!(c.access(0)); // touch line 0 so line 4*64 is LRU
        assert!(!c.access(8 * 64)); // evicts 4*64
        assert!(c.access(0));
        assert!(!c.access(4 * 64)); // was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = small(1); // 4 sets, 1 way
        assert!(!c.access(0));
        assert!(!c.access(4 * 64)); // same set, evicts
        assert!(!c.access(0));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = small(2);
        c.access(0);
        let stats = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = small(2);
        for i in 0..8 {
            c.access(i * 64);
        }
        assert_eq!(c.stats().miss_rate(), 1.0);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn paper_l1d_geometry_behaves() {
        let mut l1 = Cache::new(CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 1,
        });
        // A 8 KB strided walk fits entirely: second pass all hits.
        for pass in 0..2 {
            for a in (0..8192u64).step_by(64) {
                let hit = l1.access(a);
                if pass == 1 {
                    assert!(hit, "address {a} should hit on second pass");
                }
            }
        }
        // A 64 KB walk misses everywhere except the 128 lines the 8 KB
        // pass left resident (1024 lines - 128 hits = 896 misses).
        let mut big = 0;
        for a in (0..65536u64).step_by(64) {
            if !l1.access(a) {
                big += 1;
            }
        }
        assert_eq!(big, 896);
        // A second 64 KB sequential pass through a 16 KB LRU cache misses
        // on every line (classic streaming thrash).
        let mut second = 0;
        for a in (0..65536u64).step_by(64) {
            if !l1.access(a) {
                second += 1;
            }
        }
        assert_eq!(second, 1024);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(2);
        c.access(0);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0), "contents survive stats reset");
    }
}
