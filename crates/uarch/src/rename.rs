//! Register renaming: register alias table (RAT), physical register free
//! lists and branch checkpoints.
//!
//! The paper's processor has 72 integer and 72 floating-point physical
//! registers (Table 3). Renaming stalls when a class runs out of free
//! registers; the *occupancy* of the alias table (number of in-flight
//! renames) is one of the statistics the paper reports (section 5.1: "the
//! integer register allocation table occupancy went up from 15 in base to
//! 24 in GALS for the ijpeg benchmark").

use gals_isa::ArchReg;

/// Architectural registers per class (int or fp).
pub const NUM_ARCH_PER_CLASS: usize = 32;

/// A physical register: class is implicit in the owning table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg(pub u16);

/// A saved RAT + free-list snapshot taken at a branch. Plain value — the
/// RAT is a fixed 32-entry array, so taking or restoring a checkpoint
/// performs no heap allocation (the steady-state zero-allocation claim
/// covers branchy code too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    map: [u16; NUM_ARCH_PER_CLASS],
    free: u128,
    seq: u64,
}

/// Error returned when renaming cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameError {
    /// No free physical register in the required class.
    OutOfRegisters,
}

impl std::fmt::Display for RenameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenameError::OutOfRegisters => write!(f, "no free physical register"),
        }
    }
}

impl std::error::Error for RenameError {}

/// One register class's rename state (the processor holds one for int, one
/// for fp).
#[derive(Debug, Clone)]
struct ClassRename {
    /// arch index -> physical register.
    map: [u16; NUM_ARCH_PER_CLASS],
    /// Bitset of free physical registers (supports up to 128).
    free: u128,
    num_phys: u16,
}

impl ClassRename {
    fn new(num_phys: u16) -> Self {
        assert!(
            (NUM_ARCH_PER_CLASS..=128).contains(&usize::from(num_phys)),
            "physical register count {num_phys} out of supported range"
        );
        // p0..p31 initially hold architectural state; the rest are free.
        let map: [u16; NUM_ARCH_PER_CLASS] = std::array::from_fn(|i| i as u16);
        let mut free: u128 = 0;
        for p in NUM_ARCH_PER_CLASS as u16..num_phys {
            free |= 1 << p;
        }
        ClassRename {
            map,
            free,
            num_phys,
        }
    }

    fn alloc(&mut self) -> Option<PhysReg> {
        if self.free == 0 {
            return None;
        }
        let p = self.free.trailing_zeros() as u16;
        self.free &= !(1u128 << p);
        Some(PhysReg(p))
    }

    fn release(&mut self, p: PhysReg) {
        debug_assert!(p.0 < self.num_phys);
        debug_assert!(self.free & (1 << p.0) == 0, "double free of {p:?}");
        self.free |= 1 << p.0;
    }

    fn free_count(&self) -> u32 {
        self.free.count_ones()
    }

    fn in_flight(&self) -> u32 {
        u32::from(self.num_phys) - self.free_count() - NUM_ARCH_PER_CLASS as u32
    }
}

/// The rename stage state: two register classes plus a stack of branch
/// checkpoints.
///
/// # Recovery protocol
///
/// * `checkpoint(seq)` snapshots the RAT and free lists when a branch with
///   dynamic sequence number `seq` is renamed.
/// * On misprediction, `recover(seq)` restores the snapshot taken *at* that
///   branch and discards all younger checkpoints; registers allocated by
///   squashed instructions return to the free list automatically because
///   the snapshot predates them.
/// * `commit_release(old)` frees the *previous* mapping of a committed
///   instruction's destination. To keep live checkpoints consistent, the
///   freed register is also marked free in every outstanding snapshot (a
///   committed instruction is older than any live checkpoint, so its
///   `old` register can never be referenced again on any path).
#[derive(Debug, Clone)]
pub struct RenameUnit {
    int: ClassRename,
    fp: ClassRename,
    checkpoints: Vec<(u64, Checkpoint, Checkpoint)>,
    max_checkpoints: usize,
    /// Peak and accumulated occupancy statistics.
    occupancy_samples: u64,
    occupancy_sum: u64,
    occupancy_peak: u32,
}

/// Result of renaming one destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedDst {
    /// Newly allocated physical register now holding the architectural
    /// destination.
    pub new: PhysReg,
    /// The physical register previously mapped to that architectural
    /// register; freed when the instruction commits.
    pub old: PhysReg,
}

impl RenameUnit {
    /// Creates rename state for `int_phys`/`fp_phys` physical registers per
    /// class and at most `max_checkpoints` unresolved branches.
    pub fn new(int_phys: u16, fp_phys: u16, max_checkpoints: usize) -> Self {
        RenameUnit {
            int: ClassRename::new(int_phys),
            fp: ClassRename::new(fp_phys),
            checkpoints: Vec::with_capacity(max_checkpoints),
            max_checkpoints,
            occupancy_samples: 0,
            occupancy_sum: 0,
            occupancy_peak: 0,
        }
    }

    /// Current mapping of an architectural register.
    pub fn lookup(&self, reg: ArchReg) -> PhysReg {
        let class = if reg.is_fp() { &self.fp } else { &self.int };
        PhysReg(class.map[reg.index() as usize])
    }

    /// Renames a destination: allocates a fresh physical register and
    /// installs it in the RAT.
    ///
    /// # Errors
    ///
    /// [`RenameError::OutOfRegisters`] when the class's free list is empty;
    /// the rename stage must stall this cycle.
    pub fn rename_dst(&mut self, reg: ArchReg) -> Result<RenamedDst, RenameError> {
        let class = if reg.is_fp() {
            &mut self.fp
        } else {
            &mut self.int
        };
        let new = class.alloc().ok_or(RenameError::OutOfRegisters)?;
        let idx = reg.index() as usize;
        let old = PhysReg(class.map[idx]);
        class.map[idx] = new.0;
        Ok(RenamedDst { new, old })
    }

    /// Undoes a `rename_dst` performed earlier in the *same cycle* (used
    /// when a later operation of a multi-dest bundle stalls).
    pub fn undo_rename(&mut self, reg: ArchReg, renamed: RenamedDst) {
        let class = if reg.is_fp() {
            &mut self.fp
        } else {
            &mut self.int
        };
        let idx = reg.index() as usize;
        debug_assert_eq!(class.map[idx], renamed.new.0);
        class.map[idx] = renamed.old.0;
        class.release(renamed.new);
    }

    /// True if a checkpoint slot is available for another in-flight branch.
    pub fn can_checkpoint(&self) -> bool {
        self.checkpoints.len() < self.max_checkpoints
    }

    /// Snapshots the RAT at the branch with dynamic sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint slot is free (guard with
    /// [`RenameUnit::can_checkpoint`]).
    pub fn checkpoint(&mut self, seq: u64) {
        assert!(self.can_checkpoint(), "checkpoint stack full");
        let snap = |c: &ClassRename| Checkpoint {
            map: c.map,
            free: c.free,
            seq,
        };
        self.checkpoints
            .push((seq, snap(&self.int), snap(&self.fp)));
    }

    /// Restores the checkpoint taken at branch `seq`, discarding it and all
    /// younger checkpoints. Returns `true` if a checkpoint for `seq`
    /// existed.
    pub fn recover(&mut self, seq: u64) -> bool {
        let Some(pos) = self.checkpoints.iter().position(|(s, _, _)| *s == seq) else {
            return false;
        };
        let (_, int_cp, fp_cp) = self.checkpoints[pos];
        self.int.map = int_cp.map;
        self.int.free = int_cp.free;
        self.fp.map = fp_cp.map;
        self.fp.free = fp_cp.free;
        self.checkpoints.truncate(pos);
        true
    }

    /// Releases the checkpoint of a branch that resolved correctly (or
    /// committed); also discards checkpoints older than `seq` (they cannot
    /// be recovery targets any more).
    pub fn release_checkpoint(&mut self, seq: u64) {
        self.checkpoints.retain(|(s, _, _)| *s > seq);
    }

    /// Frees the previous mapping of a committed destination and patches
    /// all live checkpoints (see the recovery-protocol note on the type).
    pub fn commit_release(&mut self, reg: ArchReg, old: PhysReg) {
        let is_fp = reg.is_fp();
        {
            let class = if is_fp { &mut self.fp } else { &mut self.int };
            class.release(old);
        }
        for (_, int_cp, fp_cp) in &mut self.checkpoints {
            let cp = if is_fp { fp_cp } else { int_cp };
            cp.free |= 1 << old.0;
        }
    }

    /// Frees the destination register of a squashed instruction whose
    /// rename is *not* covered by any restored checkpoint (used only by
    /// non-checkpoint recovery paths; unnecessary when `recover` is used).
    pub fn squash_release(&mut self, reg: ArchReg, new: PhysReg) {
        let class = if reg.is_fp() {
            &mut self.fp
        } else {
            &mut self.int
        };
        class.release(new);
    }

    /// Number of in-flight renames (allocated beyond architectural state)
    /// for the integer class — the paper's "register allocation table
    /// occupancy".
    pub fn int_occupancy(&self) -> u32 {
        self.int.in_flight()
    }

    /// In-flight renames for the FP class.
    pub fn fp_occupancy(&self) -> u32 {
        self.fp.in_flight()
    }

    /// Free registers per class `(int, fp)`.
    pub fn free_counts(&self) -> (u32, u32) {
        (self.int.free_count(), self.fp.free_count())
    }

    /// Number of live checkpoints (unresolved branches).
    pub fn live_checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Records an occupancy sample for statistics.
    pub fn sample_occupancy(&mut self) {
        self.sample_occupancy_n(1);
    }

    /// Records `n` occupancy samples at the current occupancy — exactly
    /// equivalent to `n` calls to [`RenameUnit::sample_occupancy`] while
    /// the table is untouched (the idle-tick back-fill of a parked clock
    /// domain; all counters are exact integers).
    pub fn sample_occupancy_n(&mut self, n: u64) {
        self.sample_occupancy_n_at(self.int_occupancy() + self.fp_occupancy(), n);
    }

    /// Records `n` occupancy samples at an explicit occupancy — the
    /// back-fill form for a caller that froze the occupancy when the
    /// domain parked (the table may have changed in the same instant the
    /// domain was woken, strictly after the elided ticks).
    pub fn sample_occupancy_n_at(&mut self, occupancy: u32, n: u64) {
        if n == 0 {
            return;
        }
        self.occupancy_samples += n;
        self.occupancy_sum += u64::from(occupancy) * n;
        self.occupancy_peak = self.occupancy_peak.max(occupancy);
    }

    /// Mean sampled occupancy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// Peak sampled occupancy.
    pub fn peak_occupancy(&self) -> u32 {
        self.occupancy_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> RenameUnit {
        RenameUnit::new(72, 72, 8)
    }

    #[test]
    fn initial_map_is_identity() {
        let u = unit();
        for i in 0..32 {
            assert_eq!(u.lookup(ArchReg::int(i)), PhysReg(u16::from(i)));
            assert_eq!(u.lookup(ArchReg::fp(i)), PhysReg(u16::from(i)));
        }
        assert_eq!(u.free_counts(), (40, 40));
        assert_eq!(u.int_occupancy(), 0);
    }

    #[test]
    fn rename_allocates_and_remaps() {
        let mut u = unit();
        let r3 = ArchReg::int(3);
        let renamed = u.rename_dst(r3).unwrap();
        assert_eq!(renamed.old, PhysReg(3));
        assert!(renamed.new.0 >= 32);
        assert_eq!(u.lookup(r3), renamed.new);
        assert_eq!(u.int_occupancy(), 1);
        assert_eq!(u.fp_occupancy(), 0);
    }

    #[test]
    fn exhaustion_returns_error() {
        let mut u = unit();
        for _ in 0..40 {
            u.rename_dst(ArchReg::int(1)).unwrap();
        }
        assert_eq!(
            u.rename_dst(ArchReg::int(1)),
            Err(RenameError::OutOfRegisters)
        );
        // FP class unaffected.
        assert!(u.rename_dst(ArchReg::fp(1)).is_ok());
    }

    #[test]
    fn commit_release_refills_free_list() {
        let mut u = unit();
        let renamed = u.rename_dst(ArchReg::int(5)).unwrap();
        assert_eq!(u.free_counts().0, 39);
        u.commit_release(ArchReg::int(5), renamed.old);
        assert_eq!(u.free_counts().0, 40);
        assert_eq!(u.int_occupancy(), 0);
    }

    #[test]
    fn checkpoint_recovery_restores_map_and_free_list() {
        let mut u = unit();
        let before = u.lookup(ArchReg::int(7));
        u.checkpoint(100);
        let a = u.rename_dst(ArchReg::int(7)).unwrap();
        let _b = u.rename_dst(ArchReg::int(8)).unwrap();
        assert_ne!(u.lookup(ArchReg::int(7)), before);
        assert!(u.recover(100));
        assert_eq!(u.lookup(ArchReg::int(7)), before);
        assert_eq!(u.free_counts(), (40, 40));
        // The squashed allocation is free again.
        let c = u.rename_dst(ArchReg::int(9)).unwrap();
        assert_eq!(c.new, a.new, "lowest free register is reused");
    }

    #[test]
    fn nested_checkpoints_recover_to_the_right_branch() {
        let mut u = unit();
        u.checkpoint(1);
        let _x = u.rename_dst(ArchReg::int(1)).unwrap();
        u.checkpoint(2);
        let _y = u.rename_dst(ArchReg::int(2)).unwrap();
        u.checkpoint(3);
        let _z = u.rename_dst(ArchReg::int(3)).unwrap();
        assert_eq!(u.live_checkpoints(), 3);
        assert!(u.recover(2));
        // Checkpoints 2 and 3 discarded; 1 remains.
        assert_eq!(u.live_checkpoints(), 1);
        // int2/int3 renames rolled back, int1 survives.
        assert_ne!(u.lookup(ArchReg::int(1)), PhysReg(1));
        assert_eq!(u.lookup(ArchReg::int(2)), PhysReg(2));
        assert_eq!(u.lookup(ArchReg::int(3)), PhysReg(3));
    }

    #[test]
    fn commit_patches_live_checkpoints() {
        let mut u = unit();
        // Rename int1 (old p1 will be freed at commit).
        let first = u.rename_dst(ArchReg::int(1)).unwrap();
        u.checkpoint(10);
        let _spec = u.rename_dst(ArchReg::int(2)).unwrap();
        // The older instruction commits: p_old freed and patched into the
        // checkpoint.
        u.commit_release(ArchReg::int(1), first.old);
        assert!(u.recover(10));
        // After recovery, p1 (the committed-free register) must be free.
        let (free_int, _) = u.free_counts();
        assert_eq!(free_int, 40, "committed release survives recovery");
    }

    #[test]
    fn release_checkpoint_drops_older_ones() {
        let mut u = unit();
        u.checkpoint(1);
        u.checkpoint(2);
        u.checkpoint(3);
        u.release_checkpoint(2);
        assert_eq!(u.live_checkpoints(), 1);
        assert!(!u.recover(1));
        assert!(!u.recover(2));
        assert!(u.recover(3));
    }

    #[test]
    fn undo_rename_same_cycle() {
        let mut u = unit();
        let before = u.lookup(ArchReg::int(4));
        let renamed = u.rename_dst(ArchReg::int(4)).unwrap();
        u.undo_rename(ArchReg::int(4), renamed);
        assert_eq!(u.lookup(ArchReg::int(4)), before);
        assert_eq!(u.free_counts(), (40, 40));
    }

    #[test]
    fn occupancy_sampling() {
        let mut u = unit();
        u.sample_occupancy();
        let _ = u.rename_dst(ArchReg::int(1)).unwrap();
        let _ = u.rename_dst(ArchReg::fp(1)).unwrap();
        u.sample_occupancy();
        assert_eq!(u.mean_occupancy(), 1.0);
        assert_eq!(u.peak_occupancy(), 2);
    }

    #[test]
    fn can_checkpoint_respects_limit() {
        let mut u = RenameUnit::new(72, 72, 2);
        u.checkpoint(1);
        u.checkpoint(2);
        assert!(!u.can_checkpoint());
    }
}
