//! Functional unit pools: occupancy tracking for pipelined and unpipelined
//! units.
//!
//! The paper's configuration has 4 integer and 4 FP ALUs. Pipelined
//! operations occupy a unit for one cycle (initiation interval 1);
//! unpipelined operations (divides) hold the unit for their full latency.

/// A pool of identical functional units inside one clock domain; time is the
/// owning domain's local cycle count.
///
/// # Examples
///
/// ```
/// use gals_uarch::FuPool;
///
/// let mut alus = FuPool::new(2);
/// assert!(alus.try_issue(10, 1, true));  // pipelined op, cycle 10
/// assert!(alus.try_issue(10, 1, true));  // second unit
/// assert!(!alus.try_issue(10, 1, true)); // both busy this cycle
/// assert!(alus.try_issue(11, 1, true));  // next cycle they're free
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    /// Cycle at which each unit becomes free.
    free_at: Vec<u64>,
    /// Total operations accepted (for utilisation statistics).
    issued: u64,
    /// Operations rejected because every unit was busy.
    conflicts: u64,
}

impl FuPool {
    /// Creates a pool of `count` units, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: u32) -> Self {
        assert!(
            count > 0,
            "functional unit pool must have at least one unit"
        );
        FuPool {
            free_at: vec![0; count as usize],
            issued: 0,
            conflicts: 0,
        }
    }

    /// Number of units.
    pub fn count(&self) -> usize {
        self.free_at.len()
    }

    /// Attempts to issue an operation at local cycle `now` with the given
    /// execution `latency`; `pipelined` operations release the unit after
    /// one cycle, unpipelined after `latency` cycles.
    ///
    /// Returns `false` (and counts a structural conflict) when no unit is
    /// available.
    pub fn try_issue(&mut self, now: u64, latency: u32, pipelined: bool) -> bool {
        match self.free_at.iter_mut().find(|f| **f <= now) {
            Some(slot) => {
                *slot = now + if pipelined { 1 } else { u64::from(latency) };
                self.issued += 1;
                true
            }
            None => {
                self.conflicts += 1;
                false
            }
        }
    }

    /// Number of units free at local cycle `now`.
    pub fn free_units(&self, now: u64) -> usize {
        self.free_at.iter().filter(|&&f| f <= now).count()
    }

    /// Operations accepted so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Structural-hazard rejections so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Clears busy state (used when a domain's pipeline is squashed).
    pub fn flush(&mut self) {
        self.free_at.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_units_accept_back_to_back() {
        let mut pool = FuPool::new(1);
        assert!(pool.try_issue(0, 4, true));
        assert!(!pool.try_issue(0, 4, true));
        assert!(pool.try_issue(1, 4, true));
        assert_eq!(pool.issued(), 2);
        assert_eq!(pool.conflicts(), 1);
    }

    #[test]
    fn unpipelined_blocks_for_latency() {
        let mut pool = FuPool::new(1);
        assert!(pool.try_issue(0, 12, false));
        for c in 1..12 {
            assert!(!pool.try_issue(c, 12, false), "cycle {c} should conflict");
        }
        assert!(pool.try_issue(12, 12, false));
    }

    #[test]
    fn multiple_units_fill_independently() {
        let mut pool = FuPool::new(4);
        for _ in 0..4 {
            assert!(pool.try_issue(5, 1, true));
        }
        assert_eq!(pool.free_units(5), 0);
        assert!(!pool.try_issue(5, 1, true));
        assert_eq!(pool.free_units(6), 4);
    }

    #[test]
    fn flush_releases_everything() {
        let mut pool = FuPool::new(2);
        pool.try_issue(0, 20, false);
        pool.try_issue(0, 20, false);
        pool.flush();
        assert_eq!(pool.free_units(0), 2);
    }
}
