//! Branch prediction: gshare direction predictor, branch target buffer and
//! return-address stack.
//!
//! The paper's processors follow the SimpleScalar model: the front end
//! (clock domain 1 — I-cache plus branch predictor) predicts every cycle;
//! mispredictions are discovered at execute in the integer cluster and the
//! redirect travels back to fetch — in the GALS machine through an
//! asynchronous FIFO, which is exactly why "branch mispredictions will prove
//! more expensive in the GALS model due to its longer recovery pipeline".

use crate::config::BpredConfig;

/// The front end's prediction for one fetched branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (unconditional transfers are always `true`).
    pub taken: bool,
    /// Predicted target PC if the BTB/RAS supplied one; `None` forces the
    /// front end to treat the branch as not-taken (fall through) until
    /// resolution.
    pub target: Option<u64>,
}

/// Statistics for the branch predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Direction predictions made for conditional branches.
    pub cond_lookups: u64,
    /// Conditional direction mispredictions (as reported by `update`).
    pub cond_mispredicts: u64,
    /// BTB lookups.
    pub btb_lookups: u64,
    /// BTB lookups that found a target.
    pub btb_hits: u64,
    /// Return-address stack pushes/pops.
    pub ras_ops: u64,
}

impl BpredStats {
    /// Conditional-branch misprediction ratio.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_lookups == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_lookups as f64
        }
    }
}

/// Gshare predictor + direct-mapped BTB + return-address stack.
///
/// # Examples
///
/// ```
/// use gals_uarch::{BranchPredictor, BpredConfig};
///
/// let mut bp = BranchPredictor::new(BpredConfig::default());
/// // A branch at PC 0x40 that is always taken to 0x100 becomes perfectly
/// // predicted after warm-up.
/// for _ in 0..8 {
///     let p = bp.predict_cond(0x40);
///     bp.update_cond(0x40, true, 0x100, p.taken);
/// }
/// let p = bp.predict_cond(0x40);
/// assert!(p.taken);
/// assert_eq!(p.target, Some(0x100));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BpredConfig,
    /// 2-bit saturating counters, initialised weakly taken.
    pht: Vec<u8>,
    /// Global history register (speculatively updated).
    ghr: u64,
    /// BTB: (tag, target) pairs; tag = full PC for simplicity.
    btb: Vec<Option<(u64, u64)>>,
    /// Return-address stack.
    ras: Vec<u64>,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two.
    pub fn new(config: BpredConfig) -> Self {
        assert!(
            config.pht_entries.is_power_of_two(),
            "PHT size must be a power of two"
        );
        assert!(
            config.btb_entries.is_power_of_two(),
            "BTB size must be a power of two"
        );
        BranchPredictor {
            pht: vec![2; config.pht_entries],
            ghr: 0,
            btb: vec![None; config.btb_entries],
            ras: Vec::with_capacity(config.ras_depth),
            stats: BpredStats::default(),
            config,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BpredStats {
        self.stats
    }

    #[inline]
    fn pht_index(&self, pc: u64) -> usize {
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        (((pc >> 2) ^ (self.ghr & hist_mask)) as usize) & (self.pht.len() - 1)
    }

    #[inline]
    fn btb_index(pc: u64, len: usize) -> usize {
        ((pc >> 2) as usize) & (len - 1)
    }

    /// Predicts a conditional branch at `pc`: gshare direction + BTB target.
    /// Speculatively updates the global history with the prediction (the
    /// history is repaired on `update_cond` if it was wrong).
    pub fn predict_cond(&mut self, pc: u64) -> Prediction {
        self.stats.cond_lookups += 1;
        let taken = self.pht[self.pht_index(pc)] >= 2;
        // Speculative history update.
        self.ghr = (self.ghr << 1) | u64::from(taken);
        let target = if taken { self.lookup_btb(pc) } else { None };
        Prediction { taken, target }
    }

    /// Predicts a conditional branch *without* shifting the global history.
    ///
    /// Used for wrong-path fetch: the outcome will never be known, so the
    /// speculative history bit could never be repaired and would permanently
    /// pollute the gshare history. (Hardware checkpoints and restores the
    /// history register on recovery; skipping the shift models the same
    /// net effect.)
    pub fn predict_cond_nospec(&mut self, pc: u64) -> Prediction {
        let taken = self.pht[self.pht_index(pc)] >= 2;
        let target = if taken { self.lookup_btb(pc) } else { None };
        Prediction { taken, target }
    }

    /// Predicts an unconditional direct transfer (jump/call): taken, target
    /// from BTB.
    pub fn predict_uncond(&mut self, pc: u64) -> Prediction {
        Prediction {
            taken: true,
            target: self.lookup_btb(pc),
        }
    }

    /// Predicts a return using the RAS.
    pub fn predict_return(&mut self, _pc: u64) -> Prediction {
        self.stats.ras_ops += 1;
        Prediction {
            taken: true,
            target: self.ras.pop(),
        }
    }

    /// Pushes a return address (at a call).
    pub fn push_return(&mut self, return_pc: u64) {
        self.stats.ras_ops += 1;
        if self.ras.len() == self.config.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    fn lookup_btb(&mut self, pc: u64) -> Option<u64> {
        self.stats.btb_lookups += 1;
        let idx = Self::btb_index(pc, self.btb.len());
        match self.btb[idx] {
            Some((tag, target)) if tag == pc => {
                self.stats.btb_hits += 1;
                Some(target)
            }
            _ => None,
        }
    }

    /// Trains the predictor with the resolved outcome of a conditional
    /// branch. `predicted_taken` is what `predict_cond` returned for this
    /// dynamic instance; a mismatch counts as a misprediction and repairs
    /// the speculative history bit.
    pub fn update_cond(&mut self, pc: u64, taken: bool, target: u64, predicted_taken: bool) {
        let idx = self.pht_index_for_update(pc, predicted_taken);
        let counter = &mut self.pht[idx];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        if taken != predicted_taken {
            self.stats.cond_mispredicts += 1;
            // Repair the speculatively shifted history bit.
            self.ghr = (self.ghr & !1) | u64::from(taken);
        }
        if taken {
            self.install_btb(pc, target);
        }
    }

    /// Installs/updates the BTB entry for an unconditional transfer.
    pub fn update_uncond(&mut self, pc: u64, target: u64) {
        self.install_btb(pc, target);
    }

    fn install_btb(&mut self, pc: u64, target: u64) {
        let idx = Self::btb_index(pc, self.btb.len());
        self.btb[idx] = Some((pc, target));
    }

    /// Index the update should train. The history seen by the prediction had
    /// not yet been shifted; reconstruct it by undoing the speculative bit.
    fn pht_index_for_update(&self, pc: u64, _predicted_taken: bool) -> usize {
        let hist_mask = (1u64 << self.config.history_bits) - 1;
        let pre = self.ghr >> 1;
        (((pc >> 2) ^ (pre & hist_mask)) as usize) & (self.pht.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(BpredConfig::default())
    }

    #[test]
    fn learns_always_taken() {
        let mut bp = predictor();
        let mut wrong = 0;
        for _ in 0..100 {
            let p = bp.predict_cond(0x80);
            if !p.taken {
                wrong += 1;
            }
            bp.update_cond(0x80, true, 0x200, p.taken);
        }
        assert!(
            wrong <= 2,
            "{wrong} mispredictions for an always-taken branch"
        );
        assert!(bp.predict_cond(0x80).target == Some(0x200));
    }

    #[test]
    fn learns_never_taken() {
        let mut bp = predictor();
        for _ in 0..10 {
            let p = bp.predict_cond(0x40);
            bp.update_cond(0x40, false, 0x999, p.taken);
        }
        assert!(!bp.predict_cond(0x40).taken);
    }

    #[test]
    fn random_branch_mispredicts_half_the_time() {
        let mut bp = predictor();
        let mut mispredicts = 0u32;
        let n = 4_000u64;
        for i in 0..n {
            let outcome = gals_isa::rng::hash3(7, 1, i) & 1 == 1;
            let p = bp.predict_cond(0x1000);
            if p.taken != outcome {
                mispredicts += 1;
            }
            bp.update_cond(0x1000, outcome, 0x2000, p.taken);
        }
        let rate = f64::from(mispredicts) / n as f64;
        assert!((0.35..0.65).contains(&rate), "rate {rate}");
    }

    #[test]
    fn loop_branch_predicts_well() {
        // Taken 15 of 16 iterations: a 2-bit counter mispredicts ~1/16.
        let mut bp = predictor();
        let mut mispredicts = 0u32;
        let n = 1_600;
        for i in 0..n {
            let outcome = i % 16 != 15;
            let p = bp.predict_cond(0x44);
            if p.taken != outcome {
                mispredicts += 1;
            }
            bp.update_cond(0x44, outcome, 0x10, p.taken);
        }
        let rate = f64::from(mispredicts) / f64::from(n);
        assert!(rate < 0.15, "loop branch mispredict rate {rate}");
    }

    #[test]
    fn ras_pairs_calls_and_returns() {
        let mut bp = predictor();
        bp.push_return(0x100);
        bp.push_return(0x200);
        assert_eq!(bp.predict_return(0).target, Some(0x200));
        assert_eq!(bp.predict_return(0).target, Some(0x100));
        assert_eq!(bp.predict_return(0).target, None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut bp = BranchPredictor::new(BpredConfig {
            ras_depth: 2,
            ..BpredConfig::default()
        });
        bp.push_return(1);
        bp.push_return(2);
        bp.push_return(3);
        assert_eq!(bp.predict_return(0).target, Some(3));
        assert_eq!(bp.predict_return(0).target, Some(2));
        assert_eq!(bp.predict_return(0).target, None);
    }

    #[test]
    fn btb_conflicts_resolve_by_replacement() {
        let mut bp = BranchPredictor::new(BpredConfig {
            btb_entries: 16,
            ..BpredConfig::default()
        });
        bp.update_uncond(0x0, 0xAAA);
        // Same BTB set (16 entries, pc>>2 & 15): pc 0x100 -> index 0.
        bp.update_uncond(0x100, 0xBBB);
        assert_eq!(bp.predict_uncond(0x100).target, Some(0xBBB));
        assert_eq!(bp.predict_uncond(0x0).target, None);
    }

    #[test]
    fn stats_track_rates() {
        let mut bp = predictor();
        let p = bp.predict_cond(0x4);
        bp.update_cond(0x4, !p.taken, 0x8, p.taken);
        assert_eq!(bp.stats().cond_lookups, 1);
        assert_eq!(bp.stats().cond_mispredicts, 1);
        assert_eq!(bp.stats().mispredict_rate(), 1.0);
    }
}
