//! # gals-uarch
//!
//! Microarchitecture building blocks for the GALS reproduction's superscalar
//! processor models: set-associative caches, a gshare branch predictor with
//! BTB and return-address stack, register renaming with branch checkpoints,
//! out-of-order issue queues, a reorder buffer, a store buffer and
//! functional-unit pools.
//!
//! Every component is *clock-agnostic*: it works in calls-per-local-cycle
//! terms so the same component serves both the fully synchronous baseline
//! and the five-domain GALS processor of the paper (`gals-core` decides
//! which clock edge drives which component). Components count their own
//! activity; the power model (`gals-power`) turns those counts into energy.
//!
//! Defaults reproduce the paper's Table 3 configuration — see
//! [`UarchConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod cache;
mod config;
mod func_units;
mod issue;
mod lsq;
pub mod rename;
mod rob;
mod tournament;

pub use bpred::{BpredStats, BranchPredictor, Prediction};
pub use cache::{Cache, CacheStats};
pub use config::{BpredConfig, CacheGeometry, UarchConfig};
pub use func_units::FuPool;
pub use issue::{IqToken, IssueQueue, IssueQueueStats};
pub use lsq::{StoreBuffer, StoreBufferStats};
pub use rename::{PhysReg, RenameError, RenameUnit, RenamedDst};
pub use rob::{Rob, RobStatus};
pub use tournament::{TournamentConfig, TournamentPredictor, TournamentStats};
