//! Store buffer with store-to-load forwarding.
//!
//! Slots are **reserved in program order at dispatch** and the address is
//! filled in when the store issues; this prevents the classic deadlock
//! where out-of-order younger stores exhaust the buffer and starve an older
//! store at the ROB head. Stores drain at commit; loads that match a
//! pending *filled* store's word receive their data by forwarding and skip
//! the D-cache.

use std::collections::VecDeque;

/// Granularity of forwarding matches (a 64-bit word).
const WORD_BYTES: u64 = 8;

/// Statistics for the store buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreBufferStats {
    /// Stores reserved (dispatched).
    pub stores: u64,
    /// Loads that forwarded from a pending store.
    pub forwards: u64,
    /// Occupancy integral for mean occupancy.
    pub occupancy_sum: u64,
    /// Samples taken.
    pub occupancy_samples: u64,
}

/// A bounded buffer of pending stores, ordered by age (program order).
///
/// # Examples
///
/// ```
/// use gals_uarch::StoreBuffer;
///
/// let mut sb = StoreBuffer::new(4);
/// sb.reserve(7).unwrap();      // at dispatch
/// assert!(!sb.forwards_to(0x1000)); // address unknown yet
/// sb.fill(7, 0x1000);          // at issue
/// assert!(sb.forwards_to(0x1000));  // same word: forward
/// sb.retire_through(7);        // at commit
/// assert!(!sb.forwards_to(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    /// `(seq, word-aligned address once filled)`, oldest first.
    entries: VecDeque<(u64, Option<u64>)>,
    capacity: usize,
    stats: StoreBufferStats,
}

impl StoreBuffer {
    /// Creates a buffer holding up to `capacity` stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be non-zero");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: StoreBufferStats::default(),
        }
    }

    /// Number of pending stores (reserved or filled).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another store can be reserved.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Statistics.
    pub fn stats(&self) -> StoreBufferStats {
        self.stats
    }

    /// Reserves a slot for the store with sequence `seq` at dispatch time.
    /// Must be called in program order.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` when full — dispatch must stall (in program order,
    /// so no deadlock is possible).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not older-to-younger monotonic.
    #[allow(clippy::result_unit_err)] // full/not-full is the entire story
    pub fn reserve(&mut self, seq: u64) -> Result<(), ()> {
        if !self.has_space() {
            return Err(());
        }
        if let Some(&(tail, _)) = self.entries.back() {
            assert!(seq > tail, "store buffer reservation out of program order");
        }
        self.stats.stores += 1;
        self.entries.push_back((seq, None));
        Ok(())
    }

    /// Fills the reserved slot's address when the store issues. Returns
    /// `true` if the reservation existed (it may have been squashed).
    pub fn fill(&mut self, seq: u64, addr: u64) -> bool {
        for (s, slot) in &mut self.entries {
            if *s == seq {
                *slot = Some(addr / WORD_BYTES);
                return true;
            }
        }
        false
    }

    /// True if a load from `addr` can forward from a pending *filled* store
    /// to the same word. Records the forward in the statistics on a match.
    pub fn forwards_to(&mut self, addr: u64) -> bool {
        let word = addr / WORD_BYTES;
        let hit = self.entries.iter().any(|&(_, w)| w == Some(word));
        if hit {
            self.stats.forwards += 1;
        }
        hit
    }

    /// Drains stores with sequence `<= seq` (they committed and wrote the
    /// cache). Returns how many retired.
    pub fn retire_through(&mut self, seq: u64) -> usize {
        let before = self.entries.len();
        while matches!(self.entries.front(), Some(&(s, _)) if s <= seq) {
            self.entries.pop_front();
        }
        before - self.entries.len()
    }

    /// Removes stores younger than `seq` (squashed by a misprediction).
    pub fn squash_younger(&mut self, seq: u64) -> usize {
        let before = self.entries.len();
        while matches!(self.entries.back(), Some(&(s, _)) if s > seq) {
            self.entries.pop_back();
        }
        before - self.entries.len()
    }

    /// Records an occupancy sample.
    pub fn sample_occupancy(&mut self) {
        self.sample_occupancy_n(1);
    }

    /// Records `n` occupancy samples at the current occupancy — exactly
    /// equivalent to `n` calls to [`StoreBuffer::sample_occupancy`] while
    /// the buffer is untouched (the idle-tick back-fill of a parked clock
    /// domain).
    pub fn sample_occupancy_n(&mut self, n: u64) {
        self.stats.occupancy_samples += n;
        self.stats.occupancy_sum += self.entries.len() as u64 * n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_same_word_only_after_fill() {
        let mut sb = StoreBuffer::new(4);
        sb.reserve(1).unwrap();
        assert!(!sb.forwards_to(0x100), "unfilled store cannot forward");
        assert!(sb.fill(1, 0x100));
        assert!(sb.forwards_to(0x100));
        assert!(sb.forwards_to(0x107)); // same 8-byte word
        assert!(!sb.forwards_to(0x108)); // next word
        assert_eq!(sb.stats().forwards, 2);
    }

    #[test]
    fn capacity_limit() {
        let mut sb = StoreBuffer::new(2);
        sb.reserve(1).unwrap();
        sb.reserve(2).unwrap();
        assert!(sb.reserve(3).is_err());
        assert!(!sb.has_space());
    }

    #[test]
    fn retire_drains_oldest() {
        let mut sb = StoreBuffer::new(4);
        for s in [1, 2, 3] {
            sb.reserve(s).unwrap();
            sb.fill(s, (s - 1) * 8);
        }
        assert_eq!(sb.retire_through(2), 2);
        assert_eq!(sb.len(), 1);
        assert!(!sb.forwards_to(0));
        assert!(sb.forwards_to(16));
    }

    #[test]
    fn squash_drops_youngest() {
        let mut sb = StoreBuffer::new(4);
        for s in [1, 5, 9] {
            sb.reserve(s).unwrap();
            sb.fill(s, s * 8);
        }
        assert_eq!(sb.squash_younger(5), 1);
        assert_eq!(sb.len(), 2);
        assert!(sb.forwards_to(40));
        assert!(!sb.forwards_to(72));
    }

    #[test]
    fn fill_missing_reservation_is_false() {
        let mut sb = StoreBuffer::new(4);
        sb.reserve(1).unwrap();
        assert!(!sb.fill(99, 0));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_reserve_panics() {
        let mut sb = StoreBuffer::new(4);
        sb.reserve(5).unwrap();
        let _ = sb.reserve(4);
    }

    #[test]
    fn occupancy_sampling() {
        let mut sb = StoreBuffer::new(4);
        sb.reserve(1).unwrap();
        sb.sample_occupancy();
        sb.sample_occupancy();
        assert_eq!(sb.stats().occupancy_sum, 2);
        assert_eq!(sb.stats().occupancy_samples, 2);
    }
}
