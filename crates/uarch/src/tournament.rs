//! A 21264-style tournament (hybrid) branch direction predictor.
//!
//! The paper's processor "resembl[es] the 21264 Alpha in some ways"; the
//! real 21264 uses a *tournament* predictor — a local (per-branch history)
//! component, a global (path history) component, and a chooser that learns
//! per branch which component to trust. This module provides that
//! predictor as a drop-in alternative direction predictor for studies of
//! front-end sensitivity (the default machine uses gshare, which is what
//! SimpleScalar-era evaluations most commonly modelled).

/// Configuration of the tournament predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentConfig {
    /// Entries of the local-history table (power of two).
    pub local_histories: usize,
    /// Bits of local history per branch (indexes a `2^bits` counter table).
    pub local_bits: u32,
    /// Entries of the global pattern table (power of two).
    pub global_entries: usize,
    /// Bits of global history.
    pub global_bits: u32,
    /// Entries of the chooser table (power of two).
    pub chooser_entries: usize,
}

impl Default for TournamentConfig {
    /// Sizes loosely following the 21264: 1K local histories x 10 bits,
    /// 4K global counters, 4K chooser counters.
    fn default() -> Self {
        TournamentConfig {
            local_histories: 1024,
            local_bits: 10,
            global_entries: 4096,
            global_bits: 12,
            chooser_entries: 4096,
        }
    }
}

/// Statistics of the tournament predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TournamentStats {
    /// Direction lookups.
    pub lookups: u64,
    /// Mispredictions.
    pub mispredicts: u64,
    /// Lookups decided by the local component.
    pub chose_local: u64,
}

impl TournamentStats {
    /// Misprediction ratio.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

/// The tournament direction predictor (no BTB/RAS; pair it with the ones
/// in [`crate::BranchPredictor`] if targets are needed).
///
/// # Examples
///
/// ```
/// use gals_uarch::{TournamentPredictor, TournamentConfig};
///
/// let mut tp = TournamentPredictor::new(TournamentConfig::default());
/// // A short repeating pattern is learned by the local component even
/// // though it looks random to a global predictor.
/// let pattern = [true, true, false, true, false];
/// let mut wrong = 0;
/// for i in 0..1_000 {
///     let outcome = pattern[i % pattern.len()];
///     let p = tp.predict(0x40);
///     if p != outcome { wrong += 1; }
///     tp.update(0x40, outcome, p);
/// }
/// assert!(wrong < 100, "local history should learn the pattern ({wrong})");
/// ```
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    config: TournamentConfig,
    /// Per-branch local history registers.
    local_history: Vec<u16>,
    /// Local counter table indexed by local history (3-bit counters, like
    /// the 21264).
    local_counters: Vec<u8>,
    /// Global counter table indexed by global history (2-bit).
    global_counters: Vec<u8>,
    /// Chooser: 2-bit counters, >=2 = trust global.
    chooser: Vec<u8>,
    /// Global history register.
    ghr: u64,
    stats: TournamentStats,
}

impl TournamentPredictor {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two or `local_bits`
    /// exceeds 16.
    pub fn new(config: TournamentConfig) -> Self {
        assert!(
            config.local_histories.is_power_of_two(),
            "local table must be a power of two"
        );
        assert!(
            config.global_entries.is_power_of_two(),
            "global table must be a power of two"
        );
        assert!(
            config.chooser_entries.is_power_of_two(),
            "chooser table must be a power of two"
        );
        assert!(
            config.local_bits <= 16,
            "local history wider than the register"
        );
        TournamentPredictor {
            local_history: vec![0; config.local_histories],
            local_counters: vec![4; 1 << config.local_bits],
            global_counters: vec![2; config.global_entries],
            chooser: vec![2; config.chooser_entries],
            ghr: 0,
            stats: TournamentStats::default(),
            config,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TournamentStats {
        self.stats
    }

    #[inline]
    fn local_slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.local_history.len() - 1)
    }

    #[inline]
    fn local_index(&self, pc: u64) -> usize {
        let hist = self.local_history[self.local_slot(pc)];
        (hist as usize) & ((1 << self.config.local_bits) - 1)
    }

    #[inline]
    fn global_index(&self) -> usize {
        let mask = (1u64 << self.config.global_bits) - 1;
        ((self.ghr & mask) as usize) & (self.global_entries_mask())
    }

    #[inline]
    fn global_entries_mask(&self) -> usize {
        self.global_counters.len() - 1
    }

    #[inline]
    fn chooser_index(&self) -> usize {
        let mask = (1u64 << self.config.global_bits) - 1;
        ((self.ghr & mask) as usize) & (self.chooser.len() - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.lookups += 1;
        let local = self.local_counters[self.local_index(pc)] >= 4;
        let global = self.global_counters[self.global_index()] >= 2;
        let use_global = self.chooser[self.chooser_index()] >= 2;
        if !use_global {
            self.stats.chose_local += 1;
        }
        if use_global {
            global
        } else {
            local
        }
    }

    /// Trains all three components with the resolved outcome.
    pub fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        let li = self.local_index(pc);
        let gi = self.global_index();
        let ci = self.chooser_index();

        let local_said = self.local_counters[li] >= 4;
        let global_said = self.global_counters[gi] >= 2;

        // Chooser trains toward whichever component was right (only when
        // they disagree — the 21264 rule).
        if local_said != global_said {
            let c = &mut self.chooser[ci];
            if global_said == taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }

        // Component counters.
        let lc = &mut self.local_counters[li];
        if taken {
            *lc = (*lc + 1).min(7);
        } else {
            *lc = lc.saturating_sub(1);
        }
        let gc = &mut self.global_counters[gi];
        if taken {
            *gc = (*gc + 1).min(3);
        } else {
            *gc = gc.saturating_sub(1);
        }

        // Histories.
        let slot = self.local_slot(pc);
        self.local_history[slot] = (self.local_history[slot] << 1) | u16::from(taken);
        self.ghr = (self.ghr << 1) | u64::from(taken);

        if predicted != taken {
            self.stats.mispredicts += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gals_isa::rng::hash3;

    fn run(pattern: impl Fn(u64) -> bool, n: u64, pc: u64) -> f64 {
        let mut tp = TournamentPredictor::new(TournamentConfig::default());
        let mut wrong = 0u64;
        for i in 0..n {
            let outcome = pattern(i);
            let p = tp.predict(pc);
            if p != outcome {
                wrong += 1;
            }
            tp.update(pc, outcome, p);
        }
        wrong as f64 / n as f64
    }

    #[test]
    fn learns_biased_branches() {
        let rate = run(|i| !hash3(1, 2, i).is_multiple_of(10), 5_000, 0x10); // 90% taken
        assert!(rate < 0.15, "biased branch mispredict rate {rate}");
    }

    #[test]
    fn local_component_learns_short_patterns() {
        // Period-7 pattern defeats a 2-bit bimodal counter but is captured
        // by 10 bits of local history.
        let pattern = [true, true, true, false, false, true, false];
        let rate = run(|i| pattern[(i % 7) as usize], 8_000, 0x20);
        assert!(rate < 0.08, "periodic pattern mispredict rate {rate}");
    }

    #[test]
    fn global_component_learns_correlation() {
        // Branch outcome equals the outcome two executions ago: pure
        // history correlation.
        let mut tp = TournamentPredictor::new(TournamentConfig::default());
        let mut prev = [false, true];
        let mut wrong = 0u64;
        let n = 8_000;
        for _i in 0..n {
            let outcome = prev[0];
            let p = tp.predict(0x30);
            if p != outcome {
                wrong += 1;
            }
            tp.update(0x30, outcome, p);
            prev = [prev[1], outcome];
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate < 0.1, "correlated branch mispredict rate {rate}");
    }

    #[test]
    fn random_branches_stay_hard() {
        let rate = run(|i| hash3(9, 9, i) & 1 == 1, 5_000, 0x40);
        assert!((0.4..0.6).contains(&rate), "coin-flip rate {rate}");
    }

    #[test]
    fn chooser_statistics_track_usage() {
        let mut tp = TournamentPredictor::new(TournamentConfig::default());
        for i in 0..100 {
            let p = tp.predict(0x50);
            tp.update(0x50, i % 2 == 0, p);
        }
        let s = tp.stats();
        assert_eq!(s.lookups, 100);
        assert!(s.chose_local <= 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = TournamentPredictor::new(TournamentConfig {
            local_histories: 1000,
            ..TournamentConfig::default()
        });
    }
}
