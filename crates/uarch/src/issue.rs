//! Out-of-order issue queues with tag-based wakeup and oldest-first select.
//!
//! The paper's design has three queues — integer (20 entries), FP (16) and
//! memory (16) — each co-located with its functional units in one clock
//! domain so that "dependent instructions within the integer issue queue can
//! be issued back-to-back as soon as operands are available".

use crate::rename::PhysReg;

/// Token identifying an instruction waiting in a queue (opaque payload key).
pub type IqToken = u64;

/// Maximum outstanding source tags per queued instruction. Two register
/// sources is the ISA ceiling; the headroom is free (the array is inline).
const MAX_WAITING: usize = 4;

/// One waiting instruction. The outstanding-source set is an inline array —
/// inserting into the queue performs no heap allocation.
#[derive(Debug, Clone, Copy)]
struct IqEntry {
    token: IqToken,
    /// Age for oldest-first selection (dynamic sequence number works well).
    age: u64,
    /// Source operands still outstanding. Tags are destination physical
    /// registers of producer instructions.
    waiting: [PhysReg; MAX_WAITING],
    /// Live prefix length of `waiting`.
    nwait: u8,
}

impl IqEntry {
    #[inline]
    fn is_ready(&self) -> bool {
        self.nwait == 0
    }

    #[inline]
    fn drop_tag(&mut self, tag: PhysReg) {
        let mut i = 0;
        while i < self.nwait as usize {
            if self.waiting[i] == tag {
                self.nwait -= 1;
                self.waiting[i] = self.waiting[self.nwait as usize];
            } else {
                i += 1;
            }
        }
    }
}

/// Statistics of one issue queue.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IssueQueueStats {
    /// Instructions inserted.
    pub inserted: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Occupancy integral (entries x samples) for mean occupancy.
    pub occupancy_sum: u64,
    /// Number of occupancy samples.
    pub occupancy_samples: u64,
    /// Peak occupancy.
    pub occupancy_peak: usize,
    /// Cycles in which at least one instruction was ready but the issue
    /// width was exhausted.
    pub width_stalls: u64,
}

impl IssueQueueStats {
    /// Mean occupancy per sample.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }
}

/// A bounded issue queue: insert renamed instructions with outstanding
/// source tags, wake them as producers complete, select the oldest ready
/// ones each cycle.
///
/// Entries are kept in **age order** (dispatch inserts in program order and
/// removals preserve order), so oldest-first selection is a single forward
/// scan — no per-cycle sort.
///
/// # Examples
///
/// ```
/// use gals_uarch::{IssueQueue, PhysReg};
///
/// let mut iq = IssueQueue::new(4);
/// iq.insert(1, 10, vec![PhysReg(40)]).unwrap(); // waits on p40
/// iq.insert(2, 11, vec![]).unwrap();            // ready at once
/// assert_eq!(iq.select(4), vec![2]);
/// iq.wakeup(PhysReg(40));
/// assert_eq!(iq.select(4), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct IssueQueue {
    capacity: usize,
    entries: Vec<IqEntry>,
    stats: IssueQueueStats,
    /// Selection scratch (indices picked this cycle), reused across cycles
    /// so steady-state selection allocates nothing.
    chosen_scratch: Vec<usize>,
}

impl IssueQueue {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "issue queue capacity must be non-zero");
        IssueQueue {
            capacity,
            entries: Vec::with_capacity(capacity),
            stats: IssueQueueStats::default(),
            chosen_scratch: Vec::with_capacity(capacity),
        }
    }

    /// Current number of waiting instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no instructions wait.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another instruction can be inserted.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Statistics.
    pub fn stats(&self) -> IssueQueueStats {
        self.stats
    }

    /// Inserts an instruction.
    ///
    /// `waiting` lists the source tags not yet produced; an empty list means
    /// the instruction is immediately ready. Any iterator works — the tags
    /// are stored inline, so dispatch need not build a `Vec`.
    ///
    /// # Errors
    ///
    /// Returns `Err(token)` (the rejected token) when the queue is full —
    /// dispatch must stall.
    ///
    /// # Panics
    ///
    /// Panics if `waiting` yields more than four tags (the ISA has at most
    /// two register sources), or if `age` is not strictly greater than
    /// every age already queued — insertion must be in program order, the
    /// invariant that lets selection scan instead of sort (dispatch
    /// naturally satisfies it; see [`Rob::alloc`](crate::Rob::alloc) for
    /// the same contract).
    pub fn insert(
        &mut self,
        token: IqToken,
        age: u64,
        waiting: impl IntoIterator<Item = PhysReg>,
    ) -> Result<(), IqToken> {
        if !self.has_space() {
            return Err(token);
        }
        if let Some(tail) = self.entries.last() {
            assert!(age > tail.age, "issue queue insertion out of program order");
        }
        self.stats.inserted += 1;
        let mut entry = IqEntry {
            token,
            age,
            waiting: [PhysReg(0); MAX_WAITING],
            nwait: 0,
        };
        for tag in waiting {
            assert!(
                (entry.nwait as usize) < MAX_WAITING,
                "instruction waits on more than {MAX_WAITING} source tags"
            );
            entry.waiting[entry.nwait as usize] = tag;
            entry.nwait += 1;
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Broadcasts a completed producer tag, marking dependents ready.
    pub fn wakeup(&mut self, tag: PhysReg) {
        for e in &mut self.entries {
            e.drop_tag(tag);
        }
    }

    /// Selects up to `width` ready instructions, oldest first, removing them
    /// from the queue. Returns their tokens in selection order.
    pub fn select(&mut self, width: u32) -> Vec<IqToken> {
        self.select_with(width, |_| true)
    }

    /// Selects ready instructions for which `admit` also returns true
    /// (e.g. a functional unit is free), oldest first, up to `width`.
    pub fn select_with(&mut self, width: u32, admit: impl FnMut(IqToken) -> bool) -> Vec<IqToken> {
        let mut out = Vec::new();
        self.select_into(width, admit, &mut out);
        out
    }

    /// Allocation-free form of [`IssueQueue::select_with`]: clears `out`
    /// and fills it with the selected tokens, oldest first. With a reused
    /// `out` buffer the steady-state selection path performs no heap
    /// allocation (internal scratch is owned by the queue).
    pub fn select_into(
        &mut self,
        width: u32,
        mut admit: impl FnMut(IqToken) -> bool,
        out: &mut Vec<IqToken>,
    ) {
        out.clear();
        // The entries are age-ordered (see the type docs), so one forward
        // scan visits ready instructions oldest-first. The chosen scratch
        // is moved out so the borrow checker allows `admit` to run while
        // indices are collected.
        let mut chosen = std::mem::take(&mut self.chosen_scratch);
        chosen.clear();
        for (i, e) in self.entries.iter().enumerate() {
            if !e.is_ready() {
                continue;
            }
            if chosen.len() == width as usize {
                self.stats.width_stalls += 1;
                break;
            }
            if admit(e.token) {
                chosen.push(i);
            }
        }
        // `chosen` is in ascending age order; emit tokens before removal
        // invalidates indices.
        for &i in &chosen {
            out.push(self.entries[i].token);
        }
        // Remove back-to-front, preserving the age order of the rest.
        for &i in chosen.iter().rev() {
            self.entries.remove(i);
        }
        self.stats.issued += out.len() as u64;
        self.chosen_scratch = chosen;
    }

    /// Removes every instruction younger than `age` (squash after a
    /// mispredicted branch). Returns the removed tokens.
    ///
    /// Convenience wrapper over [`IssueQueue::squash_younger_into`]; hot
    /// callers should pass a reusable scratch buffer to the `_into` form so
    /// recovery allocates nothing even when mispredicts are frequent.
    pub fn squash_younger(&mut self, age: u64) -> Vec<IqToken> {
        let mut squashed = Vec::new();
        self.squash_younger_into(age, &mut squashed);
        squashed
    }

    /// Allocation-free form of [`IssueQueue::squash_younger`]: clears `out`
    /// and fills it with the removed tokens.
    ///
    /// # Examples
    ///
    /// ```
    /// use gals_uarch::{IssueQueue, PhysReg};
    ///
    /// let mut iq = IssueQueue::new(8);
    /// let mut scratch = Vec::new();
    /// iq.insert(1, 10, vec![PhysReg(40)]).unwrap();
    /// iq.insert(2, 20, vec![PhysReg(40)]).unwrap();
    /// iq.squash_younger_into(15, &mut scratch);
    /// assert_eq!(scratch, vec![2]);
    /// assert_eq!(iq.len(), 1);
    /// ```
    pub fn squash_younger_into(&mut self, age: u64, out: &mut Vec<IqToken>) {
        out.clear();
        self.entries.retain(|e| {
            if e.age > age {
                out.push(e.token);
                false
            } else {
                true
            }
        });
    }

    /// Records an occupancy sample.
    pub fn sample_occupancy(&mut self) {
        self.sample_occupancy_n(1);
    }

    /// Records `n` occupancy samples at the current occupancy — exactly
    /// equivalent to `n` calls to [`IssueQueue::sample_occupancy`] while
    /// the queue is untouched (the idle-tick back-fill of a parked clock
    /// domain).
    pub fn sample_occupancy_n(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.occupancy_samples += n;
        self.stats.occupancy_sum += self.entries.len() as u64 * n;
        self.stats.occupancy_peak = self.stats.occupancy_peak.max(self.entries.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_instructions_issue_oldest_first() {
        let mut iq = IssueQueue::new(8);
        iq.insert(11, 3, vec![]).unwrap();
        iq.insert(12, 4, vec![]).unwrap();
        iq.insert(10, 5, vec![PhysReg(40)]).unwrap();
        assert_eq!(iq.select(2), vec![11, 12]);
        iq.wakeup(PhysReg(40));
        assert_eq!(iq.select(2), vec![10]);
        assert!(iq.is_empty());
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_insert_panics() {
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 5, vec![]).unwrap();
        let _ = iq.insert(2, 3, vec![]);
    }

    #[test]
    fn wakeup_enables_dependents() {
        let mut iq = IssueQueue::new(4);
        iq.insert(1, 0, vec![PhysReg(33), PhysReg(34)]).unwrap();
        assert!(iq.select(4).is_empty());
        iq.wakeup(PhysReg(33));
        assert!(iq.select(4).is_empty());
        iq.wakeup(PhysReg(34));
        assert_eq!(iq.select(4), vec![1]);
    }

    #[test]
    fn full_queue_rejects() {
        let mut iq = IssueQueue::new(2);
        iq.insert(1, 0, vec![]).unwrap();
        iq.insert(2, 1, vec![]).unwrap();
        assert_eq!(iq.insert(3, 2, vec![]), Err(3));
        assert!(!iq.has_space());
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 10, vec![PhysReg(40)]).unwrap();
        iq.insert(2, 20, vec![PhysReg(40)]).unwrap();
        iq.insert(3, 30, vec![PhysReg(40)]).unwrap();
        let squashed = iq.squash_younger(15);
        assert_eq!(squashed, vec![2, 3]);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn squash_younger_into_reuses_caller_buffer() {
        let mut iq = IssueQueue::new(8);
        let mut scratch = vec![77]; // stale contents must be cleared
        iq.insert(1, 10, vec![PhysReg(40)]).unwrap();
        iq.insert(2, 20, vec![PhysReg(40)]).unwrap();
        iq.insert(3, 30, vec![PhysReg(40)]).unwrap();
        iq.squash_younger_into(15, &mut scratch);
        assert_eq!(scratch, vec![2, 3]);
        assert_eq!(iq.len(), 1);
        iq.squash_younger_into(15, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn select_with_admission_control() {
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 0, vec![]).unwrap();
        iq.insert(2, 1, vec![]).unwrap();
        iq.insert(3, 2, vec![]).unwrap();
        // Admit only even tokens.
        let picked = iq.select_with(4, |t| t % 2 == 0);
        assert_eq!(picked, vec![2]);
        assert_eq!(iq.len(), 2);
    }

    #[test]
    fn width_limits_issue() {
        let mut iq = IssueQueue::new(8);
        for i in 0..6 {
            iq.insert(i, i, vec![]).unwrap();
        }
        assert_eq!(iq.select(4).len(), 4);
        assert!(iq.stats().width_stalls > 0);
    }

    #[test]
    fn occupancy_sampling() {
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 0, vec![PhysReg(40)]).unwrap();
        iq.sample_occupancy();
        iq.insert(2, 1, vec![PhysReg(40)]).unwrap();
        iq.sample_occupancy();
        assert_eq!(iq.stats().mean_occupancy(), 1.5);
        assert_eq!(iq.stats().occupancy_peak, 2);
    }

    #[test]
    fn select_into_reuses_caller_buffer() {
        let mut iq = IssueQueue::new(8);
        let mut out = Vec::new();
        iq.insert(1, 0, std::iter::empty()).unwrap();
        iq.insert(2, 1, [PhysReg(9)]).unwrap();
        iq.select_into(4, |_| true, &mut out);
        assert_eq!(out, vec![1]);
        iq.wakeup(PhysReg(9));
        iq.select_into(4, |_| true, &mut out);
        assert_eq!(out, vec![2]);
        iq.select_into(4, |_| true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_tags_both_cleared() {
        let mut iq = IssueQueue::new(4);
        iq.insert(1, 0, vec![PhysReg(40), PhysReg(40)]).unwrap();
        iq.wakeup(PhysReg(40));
        assert_eq!(iq.select(4), vec![1]);
    }
}
