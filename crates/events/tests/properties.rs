//! Property-based tests for the event engine's ordering invariants and the
//! ClockSet/Engine differential equivalence.

use gals_events::{ClockSet, Control, Engine, Time};
use proptest::prelude::*;

proptest! {
    /// Whatever order one-shot events are inserted in, they execute in
    /// non-decreasing (time, priority) order and the engine clock never
    /// moves backwards.
    #[test]
    fn events_fire_in_order(events in prop::collection::vec((0u64..10_000, -5i32..5), 1..200)) {
        let mut engine: Engine<Vec<(u64, i32)>> = Engine::new();
        for &(t, p) in &events {
            engine.schedule_once(Time::from_fs(t), p, move |log, e| {
                log.push((e.now().as_fs(), p));
            });
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        prop_assert_eq!(log.len(), events.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0] <= pair[1], "events out of order: {:?}", pair);
        }
    }

    /// A periodic clock fires exactly floor((deadline - 1 - phase)/period) + 1
    /// times before `deadline` (when phase < deadline).
    #[test]
    fn periodic_tick_count(phase in 0u64..1_000, period in 1u64..5_000, horizon in 1_000u64..100_000) {
        prop_assume!(phase < horizon);
        let mut engine: Engine<u64> = Engine::new();
        engine.schedule_periodic(Time::from_fs(phase), Time::from_fs(period), 0, |c, _| {
            *c += 1;
            Control::Keep
        });
        let mut count = 0;
        engine.run_until(&mut count, Time::from_fs(horizon));
        let expected = (horizon - 1 - phase) / period + 1;
        prop_assert_eq!(count, expected);
    }

    /// Cancelling an arbitrary subset of one-shot events runs exactly the
    /// complement.
    #[test]
    fn cancellation_is_exact(times in prop::collection::vec(0u64..10_000, 1..100), mask in prop::collection::vec(any::<bool>(), 100)) {
        let mut engine: Engine<u64> = Engine::new();
        let ids: Vec<_> = times
            .iter()
            .map(|&t| engine.schedule_once(Time::from_fs(t), 0, |c: &mut u64, _| *c += 1))
            .collect();
        let mut kept = 0u64;
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] {
                engine.cancel(*id);
            } else {
                kept += 1;
            }
        }
        let mut count = 0;
        engine.run(&mut count);
        prop_assert_eq!(count, kept);
    }

    /// The static ClockSet scheduler and the general engine produce the
    /// identical `(time, clock)` edge sequence for any set of periodic
    /// clocks with distinct priorities — the ordering contract `simulate()`
    /// relies on when it drives the pipeline through the fast path.
    #[test]
    fn clockset_matches_engine_edge_for_edge(
        specs in prop::collection::vec((0u64..4_000, 1u64..4_000), 1..6),
        horizon in 4_000u64..40_000,
    ) {
        // Engine path: one periodic event per clock, priority = index.
        let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
        for (i, &(phase, period)) in specs.iter().enumerate() {
            engine.schedule_periodic(
                Time::from_fs(phase),
                Time::from_fs(period),
                i as i32,
                move |log: &mut Vec<(u64, usize)>, e| {
                    log.push((e.now().as_fs(), i));
                    Control::Keep
                },
            );
        }
        let mut engine_log = Vec::new();
        engine.run_until(&mut engine_log, Time::from_fs(horizon));

        // ClockSet path, single-edge ticking.
        let mut cs = ClockSet::new();
        for (i, &(phase, period)) in specs.iter().enumerate() {
            cs.add_clock(Time::from_fs(phase), Time::from_fs(period), i as i32);
        }
        let mut cs_log = Vec::new();
        while let Some((t, _)) = cs.peek() {
            if t.as_fs() >= horizon {
                break;
            }
            let (t, slot) = cs.tick().expect("peeked edge exists");
            cs_log.push((t.as_fs(), slot));
        }
        prop_assert_eq!(&engine_log, &cs_log);

        // Batched dispatch must flatten to the same sequence.
        let mut batched = ClockSet::new();
        for (i, &(phase, period)) in specs.iter().enumerate() {
            batched.add_clock(Time::from_fs(phase), Time::from_fs(period), i as i32);
        }
        let mut batch_log = Vec::new();
        batched.run_until(Time::from_fs(horizon), |slot, t| batch_log.push((t.as_fs(), slot)));
        prop_assert_eq!(&engine_log, &batch_log);
    }

    /// The differential contract extends to stretched (pausible) clocks:
    /// with an arbitrary stream of one-shot stretch requests injected after
    /// each dispatched edge, the ClockSet and the Engine still produce the
    /// identical `(time, clock)` edge sequence. This exercises both the
    /// direct-application path and the deferred path (a request targeting a
    /// clock whose same-instant edge is still pending).
    #[test]
    fn clockset_matches_engine_under_random_stretches(
        specs in prop::collection::vec((0u64..4_000, 1u64..4_000), 1..6),
        stretches in prop::collection::vec((0usize..8, 0u64..6_000), 0..60),
        horizon in 4_000u64..40_000,
    ) {
        let n = specs.len();

        // Engine path, stepped one event at a time so the k-th stretch
        // request lands right after the k-th dispatched edge.
        let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
        let mut ids = Vec::new();
        for (i, &(phase, period)) in specs.iter().enumerate() {
            ids.push(engine.schedule_periodic(
                Time::from_fs(phase),
                Time::from_fs(period),
                i as i32,
                move |log: &mut Vec<(u64, usize)>, e| {
                    log.push((e.now().as_fs(), i));
                    Control::Keep
                },
            ));
        }
        let mut engine_log = Vec::new();
        let mut k = 0usize;
        while let Some(t) = engine.peek_time() {
            if t.as_fs() >= horizon {
                break;
            }
            engine.step(&mut engine_log);
            if let Some(&(slot, extra)) = stretches.get(k) {
                engine.stretch(ids[slot % n], Time::from_fs(extra));
            }
            k += 1;
        }

        // ClockSet path, identical drive.
        let mut cs = ClockSet::new();
        for (i, &(phase, period)) in specs.iter().enumerate() {
            cs.add_clock(Time::from_fs(phase), Time::from_fs(period), i as i32);
        }
        let mut cs_log = Vec::new();
        let mut k = 0usize;
        while let Some((t, _)) = cs.peek() {
            if t.as_fs() >= horizon {
                break;
            }
            let (t, slot) = cs.tick().expect("peeked edge exists");
            cs_log.push((t.as_fs(), slot));
            if let Some(&(s, extra)) = stretches.get(k) {
                cs.stretch(s % n, Time::from_fs(extra));
            }
            k += 1;
        }
        prop_assert_eq!(&engine_log, &cs_log);
    }

    /// Two interleaved clocks process a number of events equal to the sum of
    /// their individual tick counts (no event lost or duplicated).
    #[test]
    fn two_clock_interleaving(p1 in 1u64..400, p2 in 1u64..400) {
        let horizon = 20_000u64;
        let mut engine: Engine<(u64, u64)> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::from_fs(p1), 0, |w, _| { w.0 += 1; Control::Keep });
        engine.schedule_periodic(Time::ZERO, Time::from_fs(p2), 1, |w, _| { w.1 += 1; Control::Keep });
        let mut w = (0, 0);
        engine.run_until(&mut w, Time::from_fs(horizon));
        prop_assert_eq!(w.0, (horizon - 1) / p1 + 1);
        prop_assert_eq!(w.1, (horizon - 1) / p2 + 1);
        prop_assert_eq!(engine.events_processed(), w.0 + w.1);
    }
}
