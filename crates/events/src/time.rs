//! Simulated time.
//!
//! Time is measured in integer **femtoseconds** so that every clock-period
//! manipulation used in the paper's experiments (10%, 20%, 50% slowdowns and
//! a 3x slowdown of a 1 ns base period) is exactly representable with no
//! rounding drift. A `u64` femtosecond counter wraps after ~5 hours of
//! simulated time, far beyond any experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of femtoseconds in one picosecond.
pub const FS_PER_PS: u64 = 1_000;
/// Number of femtoseconds in one nanosecond.
pub const FS_PER_NS: u64 = 1_000_000;

/// An instant (or duration) of simulated time, in femtoseconds.
///
/// `Time` is used both as an absolute timestamp from simulation start and as
/// a duration; the arithmetic provided (saturating on underflow is *not*
/// silent — subtraction panics in debug builds like ordinary integer math)
/// keeps the two uses interchangeable the same way the paper's C engine used
/// a raw `double`.
///
/// # Examples
///
/// ```
/// use gals_events::Time;
/// let period = Time::from_ns(2);
/// assert_eq!(period * 3, Time::from_ns(6));
/// assert_eq!(Time::from_ps(2_000), period);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant (simulation start).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from whole femtoseconds.
    #[inline]
    pub const fn from_fs(fs: u64) -> Self {
        Time(fs)
    }

    /// Creates a time from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps * FS_PER_PS)
    }

    /// Creates a time from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * FS_PER_NS)
    }

    /// Returns the raw femtosecond count.
    #[inline]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// Returns the time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Saturating subtraction: returns `ZERO` instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Scales the time by a floating-point factor, rounding to the nearest
    /// femtosecond. Used for slowdown factors such as 1.1x or 3x.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn scale(self, factor: f64) -> Time {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = u64;
    /// Number of whole `rhs` periods that fit in `self`.
    #[inline]
    fn div(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= FS_PER_NS {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else if self.0 >= FS_PER_PS {
            write!(f, "{:.3} ps", self.0 as f64 / FS_PER_PS as f64)
        } else {
            write!(f, "{} fs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_ps(1), Time::from_fs(1_000));
        assert_eq!(Time::from_ns(2).as_fs(), 2_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(3);
        let b = Time::from_ns(1);
        assert_eq!(a + b, Time::from_ns(4));
        assert_eq!(a - b, Time::from_ns(2));
        assert_eq!(a * 2, Time::from_ns(6));
        assert_eq!(a / 2, Time::from_fs(1_500_000));
        assert_eq!(a / b, 3);
    }

    #[test]
    fn scale_is_exact_for_paper_factors() {
        let ns = Time::from_ns(1);
        assert_eq!(ns.scale(1.1), Time::from_fs(1_100_000));
        assert_eq!(ns.scale(1.2), Time::from_fs(1_200_000));
        assert_eq!(ns.scale(1.5), Time::from_fs(1_500_000));
        assert_eq!(ns.scale(3.0), Time::from_ns(3));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Time::from_ns(1).saturating_sub(Time::from_ns(2)),
            Time::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_ns(2)), "2.000 ns");
        assert_eq!(format!("{}", Time::from_ps(3)), "3.000 ps");
        assert_eq!(format!("{}", Time::from_fs(5)), "5 fs");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2)].into_iter().sum();
        assert_eq!(total, Time::from_ns(3));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scale_rejects_nan() {
        let _ = Time::from_ns(1).scale(f64::NAN);
    }
}
