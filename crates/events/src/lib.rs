//! # gals-events
//!
//! A general-purpose, deterministic, discrete-event simulation engine — the
//! Rust port of the engine described in section 4.2 of *"Power and
//! Performance Evaluation of Globally Asynchronous Locally Synchronous
//! Processors"* (Iyer & Marculescu, ISCA 2002).
//!
//! The engine "can be used to simulate any asynchronous system, synchronous
//! (clocked) system, or a system which contains both asynchronous and
//! synchronous components". Clock domains are periodic events with
//! independent period and phase; asynchronous completions (cache misses,
//! FIFO synchronisations) are one-shot events.
//!
//! ## Two schedulers, one ordering contract
//!
//! The crate deliberately ships **two** schedulers:
//!
//! * [`Engine`] — the faithful general-purpose port of the paper's engine.
//!   It supports arbitrary one-shot events, self-rescheduling periodic
//!   events, cancellation, and dynamic handlers. Every edge costs a binary
//!   heap pop, a re-push of a boxed handler, and cancellation bookkeeping.
//! * [`ClockSet`] — the static fast path for *purely periodic* clock sets
//!   (the pipeline's actual workload: five free-running domain clocks).
//!   One inline `(next_edge, period, priority)` record per clock, a
//!   branchless min-scan instead of a heap, zero allocation and zero
//!   dynamic dispatch per edge, and batched dispatch of simultaneous edges.
//!
//! Both order edges by `(time, priority)`; for clocks with distinct
//! priorities the two produce identical edge sequences, which is pinned by
//! a differential property test (`tests/properties.rs`) and an end-to-end
//! report-identity test in the simulator. Distinct priorities are the
//! contract, not a convention: duplicate clock priorities would fall
//! through to scheduler-private tie-breaks (insertion sequence in the
//! engine, slot order in the clock set) and silently diverge the oracle, so
//! both registration paths reject them with an always-on assertion that
//! fires at registration time, before any simulation runs.
//!
//! ## Idle-tick elision (parked clocks)
//!
//! [`ClockSet`] extends the contract with **idle-tick elision**: a clock
//! whose domain is provably quiescent may be *parked*
//! ([`ClockSet::park`]), removing its edges from dispatch entirely. The
//! division of obligations:
//!
//! * **The caller may park a clock only when every elided edge would have
//!   been a no-op** — the domain's tick would change nothing but its own
//!   cycle counters, idle-energy charges and occupancy samples (for the
//!   pipeline: empty structures, no inbound channel traffic it would
//!   consume, no pending stretch — or a provably frozen wait whose every
//!   release path raises a wake). The pipeline is the authority on this:
//!   each of its ticks reports its own quiescence on the way out.
//! * **Whoever hands a parked domain work must wake it in the same
//!   instant.** Wake edges are raised by channel pushes into the domain
//!   and by same-cycle shared-state writes it consumes (the fetch-side L2
//!   touch); [`ClockSet::unpark`] re-arms the clock and returns how many
//!   edges were elided, which the caller must back-fill (bulk idle
//!   accounting — exact, because the counters are integers).
//! * **Same-instant ordering is preserved.** An elided edge at exactly the
//!   wake instant counts as elided when the parked clock's priority
//!   ordered it *before* the waker (it had already fired as a no-op), and
//!   is re-armed to dispatch live when ordered *after* — so the
//!   `(time, priority)` sequence of *effective* edges matches the
//!   unparked schedule exactly. The same rule, against the run's stopping
//!   edge, governs the end-of-run drain ([`ClockSet::drain_parked`]).
//! * **Stretches and parking never overlap**: a stretch request targets an
//!   awake clock (any transfer that stretches a domain also wakes it);
//!   [`ClockSet::stretch`] asserts this.
//!
//! The general [`Engine`] never elides — it remains the oracle that
//! dispatches every edge, which is precisely what makes the differential
//! report-identity tests meaningful: every elision decision the fast path
//! makes is checked against a scheduler that did the work.
//!
//! Two further fast-forward devices follow the same "caller accounts for
//! skipped edges" rule: [`ClockSet::skip`] elides a known-length run of
//! no-op edges of a *running* clock (the pipeline's I-cache-fill
//! countdown), and [`ClockSet::enable_uniform`] switches equal-period
//! clock sets (the synchronous and equal-frequency GALS machines) to a
//! fixed dispatch rotation with no per-edge min-scan.
//!
//! ## Stretchable (pausible) clocks
//!
//! Both schedulers support one-shot **clock stretching** — the timing
//! primitive behind pausible clocking, where an arbiter holds a ring
//! oscillator while an inter-domain handshake completes. A dispatched
//! handler (or the driver between events) may request that a clock's next
//! edge be delayed by some amount: [`Engine::stretch`] takes the periodic
//! event's id, [`ClockSet::stretch`] the clock's slot. Both implement the
//! same semantics — the stretch lands on the target's first edge *strictly
//! after* the request time, requests accumulate, and subsequent edges
//! follow the period from the stretched edge — so the differential
//! ClockSet-vs-Engine contract extends to stretched clocks (also pinned in
//! `tests/properties.rs`).
//!
//! ## Example: the paper's Figure 4
//!
//! Three free-running clocks with periods 2 ns, 3 ns and 2.5 ns:
//!
//! ```
//! use gals_events::{Engine, Control, Time};
//!
//! let mut engine = Engine::new();
//! for (i, (start, period)) in [(500, 2_000), (1_000, 3_000), (0, 2_500)]
//!     .into_iter()
//!     .enumerate()
//! {
//!     engine.schedule_periodic(
//!         Time::from_ps(start),
//!         Time::from_ps(period),
//!         i as i32, // distinct per-clock priorities (the contract)
//!         |edges: &mut u32, _| {
//!             *edges += 1;
//!             Control::Keep
//!         },
//!     );
//! }
//! let mut edges = 0;
//! engine.run_until(&mut edges, Time::from_ns(8));
//! assert_eq!(edges, 11);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod clockset;
mod engine;
mod time;

pub use clockset::{ClockSet, MAX_CLOCKS};
pub use engine::{Control, Engine, EventId, Priority};
pub use time::{Time, FS_PER_NS, FS_PER_PS};
