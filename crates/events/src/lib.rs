//! # gals-events
//!
//! A general-purpose, deterministic, discrete-event simulation engine — the
//! Rust port of the engine described in section 4.2 of *"Power and
//! Performance Evaluation of Globally Asynchronous Locally Synchronous
//! Processors"* (Iyer & Marculescu, ISCA 2002).
//!
//! The engine "can be used to simulate any asynchronous system, synchronous
//! (clocked) system, or a system which contains both asynchronous and
//! synchronous components". Clock domains are periodic events with
//! independent period and phase; asynchronous completions (cache misses,
//! FIFO synchronisations) are one-shot events.
//!
//! ## Example: the paper's Figure 4
//!
//! Three free-running clocks with periods 2 ns, 3 ns and 2.5 ns:
//!
//! ```
//! use gals_events::{Engine, Control, Time};
//!
//! let mut engine = Engine::new();
//! for (start, period) in [(500, 2_000), (1_000, 3_000), (0, 2_500)] {
//!     engine.schedule_periodic(
//!         Time::from_ps(start),
//!         Time::from_ps(period),
//!         0,
//!         |edges: &mut u32, _| {
//!             *edges += 1;
//!             Control::Keep
//!         },
//!     );
//! }
//! let mut edges = 0;
//! engine.run_until(&mut edges, Time::from_ns(8));
//! assert_eq!(edges, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod time;

pub use engine::{Control, Engine, EventId, Priority};
pub use time::{Time, FS_PER_NS, FS_PER_PS};
