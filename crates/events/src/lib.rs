//! # gals-events
//!
//! A general-purpose, deterministic, discrete-event simulation engine — the
//! Rust port of the engine described in section 4.2 of *"Power and
//! Performance Evaluation of Globally Asynchronous Locally Synchronous
//! Processors"* (Iyer & Marculescu, ISCA 2002).
//!
//! The engine "can be used to simulate any asynchronous system, synchronous
//! (clocked) system, or a system which contains both asynchronous and
//! synchronous components". Clock domains are periodic events with
//! independent period and phase; asynchronous completions (cache misses,
//! FIFO synchronisations) are one-shot events.
//!
//! ## Two schedulers, one ordering contract
//!
//! The crate deliberately ships **two** schedulers:
//!
//! * [`Engine`] — the faithful general-purpose port of the paper's engine.
//!   It supports arbitrary one-shot events, self-rescheduling periodic
//!   events, cancellation, and dynamic handlers. Every edge costs a binary
//!   heap pop, a re-push of a boxed handler, and cancellation bookkeeping.
//! * [`ClockSet`] — the static fast path for *purely periodic* clock sets
//!   (the pipeline's actual workload: five free-running domain clocks).
//!   One inline `(next_edge, period, priority)` record per clock, a
//!   branchless min-scan instead of a heap, zero allocation and zero
//!   dynamic dispatch per edge, and batched dispatch of simultaneous edges.
//!
//! Both order edges by `(time, priority)`; for clocks with distinct
//! priorities the two produce identical edge sequences, which is pinned by
//! a differential property test (`tests/properties.rs`) and an end-to-end
//! report-identity test in the simulator. Distinct priorities are the
//! contract, not a convention: duplicate clock priorities would fall
//! through to scheduler-private tie-breaks (insertion sequence in the
//! engine, slot order in the clock set) and silently diverge the oracle, so
//! both registration paths reject them with a debug assertion.
//!
//! ## Stretchable (pausible) clocks
//!
//! Both schedulers support one-shot **clock stretching** — the timing
//! primitive behind pausible clocking, where an arbiter holds a ring
//! oscillator while an inter-domain handshake completes. A dispatched
//! handler (or the driver between events) may request that a clock's next
//! edge be delayed by some amount: [`Engine::stretch`] takes the periodic
//! event's id, [`ClockSet::stretch`] the clock's slot. Both implement the
//! same semantics — the stretch lands on the target's first edge *strictly
//! after* the request time, requests accumulate, and subsequent edges
//! follow the period from the stretched edge — so the differential
//! ClockSet-vs-Engine contract extends to stretched clocks (also pinned in
//! `tests/properties.rs`).
//!
//! ## Example: the paper's Figure 4
//!
//! Three free-running clocks with periods 2 ns, 3 ns and 2.5 ns:
//!
//! ```
//! use gals_events::{Engine, Control, Time};
//!
//! let mut engine = Engine::new();
//! for (i, (start, period)) in [(500, 2_000), (1_000, 3_000), (0, 2_500)]
//!     .into_iter()
//!     .enumerate()
//! {
//!     engine.schedule_periodic(
//!         Time::from_ps(start),
//!         Time::from_ps(period),
//!         i as i32, // distinct per-clock priorities (the contract)
//!         |edges: &mut u32, _| {
//!             *edges += 1;
//!             Control::Keep
//!         },
//!     );
//! }
//! let mut edges = 0;
//! engine.run_until(&mut edges, Time::from_ns(8));
//! assert_eq!(edges, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clockset;
mod engine;
mod time;

pub use clockset::{ClockSet, MAX_CLOCKS};
pub use engine::{Control, Engine, EventId, Priority};
pub use time::{Time, FS_PER_NS, FS_PER_PS};
