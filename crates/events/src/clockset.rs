//! The static clock-tick scheduler: the O(1), allocation-free fast path for
//! purely periodic event sets.
//!
//! The general [`Engine`](crate::Engine) pays a heap pop, a re-push of a
//! boxed handler and a cancellation probe on **every simulated clock edge**.
//! For the workload that dominates this repository — five free-running
//! domain clocks and nothing else — none of that machinery is needed: the
//! classic calendar-queue/timing-wheel observation is that a fixed set of
//! periodic clocks admits a constant-time scheduler with no queue at all.
//!
//! [`ClockSet`] keeps one `(next_edge, period, priority)` record per clock
//! in a fixed inline array and advances by a branchless min-scan over at
//! most [`MAX_CLOCKS`] entries. There is no allocation after construction,
//! no dynamic dispatch, and no cancellation bookkeeping; the caller decides
//! when to stop ticking.
//!
//! Edge ordering matches the engine's `(time, priority)` order. The
//! two-scheduler contract requires every clock to carry a **distinct
//! priority** (how the pipeline registers its five domains) — then the edge
//! sequence is identical to `Engine::schedule_periodic`, a property pinned
//! by a differential test in `tests/properties.rs`. Duplicate priorities
//! would silently diverge the two schedulers (slot order here, insertion
//! sequence there), so [`ClockSet::add_clock`] rejects them with a debug
//! assertion.
//!
//! ## Stretchable (pausible) clocks
//!
//! [`ClockSet::stretch`] delays a clock's next edge by a one-shot amount —
//! the simulator's model of a pausible clock whose ring oscillator is held
//! by an arbiter while an inter-domain handshake completes. The stretch
//! targets the first edge *strictly after* the current time; an edge at
//! exactly `now` that is still pending (mid-batch) fires unstretched and the
//! request is deferred to the edge after it, which is exactly the lazy
//! semantics of [`Engine::stretch`](crate::Engine::stretch) — so the
//! differential contract extends to stretched clocks.
//!
//! # Examples
//!
//! ```
//! use gals_events::{ClockSet, Time};
//!
//! // The paper's Figure 4 clocks: periods 2 ns, 3 ns, 2.5 ns.
//! let mut clocks = ClockSet::new();
//! clocks.add_clock(Time::from_ps(500), Time::from_ns(2), 0);
//! clocks.add_clock(Time::from_ns(1), Time::from_ns(3), 1);
//! clocks.add_clock(Time::ZERO, Time::from_ps(2500), 2);
//! let mut edges = 0;
//! while let Some((t, _slot)) = clocks.peek() {
//!     if t >= Time::from_ns(8) {
//!         break;
//!     }
//!     clocks.tick();
//!     edges += 1;
//! }
//! assert_eq!(edges, 11);
//! ```

use crate::engine::Priority;
use crate::time::Time;

/// Maximum number of clocks in one [`ClockSet`]. The pipeline needs five;
/// the headroom is for experiments with extra observer clocks.
pub const MAX_CLOCKS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct ClockEntry {
    /// Absolute time of the next edge.
    next: Time,
    period: Time,
    priority: Priority,
}

const IDLE: ClockEntry = ClockEntry {
    // An empty slot never wins the min-scan.
    next: Time::MAX,
    period: Time::MAX,
    priority: Priority::MAX,
};

/// A fixed set of free-running periodic clocks dispatched in
/// `(time, priority)` order with no per-edge allocation.
///
/// See the [crate docs](crate) for the design rationale and the ordering
/// contract relative to [`Engine`](crate::Engine).
#[derive(Debug, Clone)]
pub struct ClockSet {
    entries: [ClockEntry; MAX_CLOCKS],
    /// Stretch requested while the target's edge at `now` was still
    /// pending; applied when that edge dispatches (see [`ClockSet::stretch`]).
    deferred: [Time; MAX_CLOCKS],
    /// The real next-edge time of a parked clock (its entry holds
    /// [`Time::MAX`] so the min-scan skips it); see [`ClockSet::park`].
    shadow_next: [Time; MAX_CLOCKS],
    /// Park flags per slot.
    parked: [bool; MAX_CLOCKS],
    /// Uniform-period rotation fast path (see [`ClockSet::enable_uniform`]):
    /// unparked slots in dispatch order. With every clock sharing one
    /// period, the `(time, priority)` dispatch order within a cycle is a
    /// fixed rotation — no min-scan needed per edge.
    rot: [u8; MAX_CLOCKS],
    rot_len: u8,
    rot_pos: u8,
    uniform: bool,
    /// Edges of a slot to silently elide in rotation mode (the caller's
    /// [`ClockSet::skip`] fast-forward); the general path advances `next`
    /// directly instead.
    skip_credit: [u64; MAX_CLOCKS],
    len: usize,
    now: Time,
    edges: u64,
}

impl Default for ClockSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockSet {
    /// An empty clock set with the timer at [`Time::ZERO`].
    pub fn new() -> Self {
        ClockSet {
            entries: [IDLE; MAX_CLOCKS],
            deferred: [Time::ZERO; MAX_CLOCKS],
            shadow_next: [Time::MAX; MAX_CLOCKS],
            parked: [false; MAX_CLOCKS],
            rot: [0; MAX_CLOCKS],
            rot_len: 0,
            rot_pos: 0,
            uniform: false,
            skip_credit: [0; MAX_CLOCKS],
            len: 0,
            now: Time::ZERO,
            edges: 0,
        }
    }

    /// Registers a clock whose first edge is at `phase` and which then fires
    /// every `period`. Returns the clock's slot index (reported back by
    /// [`ClockSet::tick`] and the batch dispatchers).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, the set already holds [`MAX_CLOCKS`]
    /// clocks, or `priority` is already held by another clock: duplicate
    /// priorities silently diverge the ClockSet-vs-Engine ordering contract
    /// (see the module docs), so the violation is made loud — in every build
    /// profile — where it is introduced, before any simulation runs on the
    /// mis-configured set.
    pub fn add_clock(&mut self, phase: Time, period: Time, priority: Priority) -> usize {
        assert!(period > Time::ZERO, "clock period must be non-zero");
        assert!(
            self.len < MAX_CLOCKS,
            "ClockSet holds at most {MAX_CLOCKS} clocks"
        );
        assert!(
            self.entries[..self.len]
                .iter()
                .all(|e| e.priority != priority),
            "duplicate clock priority {priority}: the two-scheduler ordering \
             contract requires a distinct priority per clock"
        );
        let slot = self.len;
        self.entries[slot] = ClockEntry {
            next: phase,
            period,
            priority,
        };
        self.len += 1;
        slot
    }

    /// Number of registered clocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no clocks are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The timestamp of the most recently dispatched edge.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total edges dispatched so far.
    #[inline]
    pub fn edges_dispatched(&self) -> u64 {
        self.edges
    }

    /// The slot winning the `(next, priority, slot)` min-scan. The loop is a
    /// fixed-trip conditional-move scan over at most [`MAX_CLOCKS`] records —
    /// no heap, no branch misprediction cliff.
    #[inline]
    fn min_slot(&self) -> usize {
        let mut best = 0usize;
        for i in 1..self.len {
            let e = &self.entries[i];
            let b = &self.entries[best];
            let better = (e.next, e.priority) < (b.next, b.priority);
            best = if better { i } else { best };
        }
        best
    }

    /// The `(time, slot)` of the next edge without dispatching it.
    #[inline]
    pub fn peek(&self) -> Option<(Time, usize)> {
        if self.len == 0 {
            return None;
        }
        let s = self.min_slot();
        Some((self.entries[s].next, s))
    }

    /// Dispatches the single earliest edge, returning its `(time, slot)`.
    /// Returns `None` only for an empty set.
    #[inline]
    pub fn tick(&mut self) -> Option<(Time, usize)> {
        if self.uniform {
            return Some(self.tick_rotation());
        }
        if self.len == 0 {
            return None;
        }
        let s = self.min_slot();
        let t = self.entries[s].next;
        assert!(
            t != Time::MAX,
            "every clock is parked: the simulated system deadlocked while \
             still running (a quiescent domain was never woken)"
        );
        self.entries[s].next = t + self.entries[s].period + std::mem::take(&mut self.deferred[s]);
        self.now = t;
        self.edges += 1;
        Some((t, s))
    }

    /// Requests a one-shot stretch of a clock: its first edge strictly after
    /// the current time is delayed by `extra`, and later edges follow
    /// `period` from the stretched edge. Requests accumulate. If the clock
    /// still has a pending edge at exactly the current time (mid-batch), that
    /// edge fires unstretched and the request applies to the edge after it —
    /// matching [`Engine::stretch`](crate::Engine::stretch), so the
    /// differential ordering contract holds for stretched clocks too.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a registered clock.
    pub fn stretch(&mut self, slot: usize, extra: Time) {
        assert!(slot < self.len, "stretch of unregistered clock slot {slot}");
        debug_assert!(
            !self.parked[slot],
            "stretch of a parked clock: every transfer that stretches a \
             domain must first wake it (see the idle-tick elision contract)"
        );
        if extra == Time::ZERO {
            return;
        }
        self.disable_uniform();
        if self.entries[slot].next > self.now {
            self.entries[slot].next += extra;
        } else {
            self.deferred[slot] += extra;
        }
    }

    /// Advances a clock by `n` whole periods without dispatching the
    /// intervening edges. The caller guarantees the skipped edges would
    /// have been no-ops and accounts for them itself (the fetch-stall
    /// fast-forward of the pipeline driver); the clock stays on its grid.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a registered clock or is parked.
    pub fn skip(&mut self, slot: usize, n: u64) {
        assert!(slot < self.len, "skip of unregistered clock slot {slot}");
        assert!(!self.parked[slot], "skip of a parked clock");
        if self.uniform {
            // Rotation mode: elide the slot's next `n` rotation turns
            // lazily, keeping every slot's stored edge within one period
            // window so the rotation order stays valid.
            self.skip_credit[slot] += n;
        } else {
            self.entries[slot].next += self.entries[slot].period * n;
        }
    }

    /// Enables the uniform-period rotation fast path if every registered
    /// clock shares one period (the synchronous and equal-frequency GALS
    /// machines): dispatch order within a cycle is then a fixed rotation
    /// sorted by `(next, priority)`, and [`ClockSet::tick`] needs no
    /// min-scan. Returns whether the fast path engaged. The set falls back
    /// to the general min-scan permanently at the first
    /// [`ClockSet::stretch`] (stretches desynchronise the rotation).
    /// Rotation mode serves the [`ClockSet::tick`] driver; the batch
    /// dispatchers and [`ClockSet::peek`] must not be mixed with it.
    pub fn enable_uniform(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        let period = self.entries[0].period;
        if self.entries[1..self.len].iter().any(|e| e.period != period) {
            return false;
        }
        self.uniform = true;
        self.rebuild_rotation();
        true
    }

    /// Leaves rotation mode, materialising pending skip credits so the
    /// general min-scan sees true next-edge times.
    fn disable_uniform(&mut self) {
        if !self.uniform {
            return;
        }
        self.uniform = false;
        for s in 0..self.len {
            let credit = std::mem::take(&mut self.skip_credit[s]);
            if credit > 0 {
                self.entries[s].next += self.entries[s].period * credit;
            }
        }
    }

    /// Rebuilds the rotation order over unparked slots, earliest `(next,
    /// priority)` first. Relative order is invariant under whole-period
    /// advances, so this only runs at park/unpark transitions.
    fn rebuild_rotation(&mut self) {
        let mut order: [u8; MAX_CLOCKS] = [0; MAX_CLOCKS];
        let mut n = 0usize;
        for s in 0..self.len {
            if !self.parked[s] {
                order[n] = s as u8;
                n += 1;
            }
        }
        order[..n].sort_unstable_by_key(|&s| {
            let e = &self.entries[s as usize];
            (e.next, e.priority)
        });
        self.rot = order;
        self.rot_len = n as u8;
        self.rot_pos = 0;
    }

    /// Rotation-mode dispatch: the next unparked slot in rotation order,
    /// consuming skip credits along the way.
    #[inline]
    fn tick_rotation(&mut self) -> (Time, usize) {
        loop {
            assert!(
                self.rot_len > 0,
                "every clock is parked: the simulated system deadlocked while \
                 still running (a quiescent domain was never woken)"
            );
            let s = self.rot[self.rot_pos as usize] as usize;
            self.rot_pos += 1;
            if self.rot_pos == self.rot_len {
                self.rot_pos = 0;
            }
            let e = &mut self.entries[s];
            let t = e.next;
            e.next = t + e.period;
            if self.skip_credit[s] > 0 {
                self.skip_credit[s] -= 1;
                continue;
            }
            self.now = t;
            self.edges += 1;
            return (t, s);
        }
    }

    /// Parks a clock: its pending edges are *elided* — removed from the
    /// min-scan — until [`ClockSet::unpark`] restores them. The caller
    /// guarantees that every elided edge would have been a no-op (the
    /// domain is quiescent) and accounts for the elided edges on unpark
    /// (see the idle-tick elision contract in the [crate docs](crate)).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a registered clock, or (debug builds) if it
    /// is already parked or has a pending deferred stretch.
    pub fn park(&mut self, slot: usize) {
        assert!(slot < self.len, "park of unregistered clock slot {slot}");
        debug_assert!(!self.parked[slot], "clock slot {slot} is already parked");
        debug_assert_eq!(
            self.deferred[slot],
            Time::ZERO,
            "parking a clock with a deferred stretch would drop the stretch"
        );
        debug_assert_eq!(
            self.skip_credit[slot], 0,
            "parking a clock with pending skipped edges"
        );
        self.shadow_next[slot] = self.entries[slot].next;
        self.entries[slot].next = Time::MAX;
        self.parked[slot] = true;
        if self.uniform {
            self.rebuild_rotation();
        }
    }

    /// True while the slot is parked.
    #[inline]
    pub fn is_parked(&self, slot: usize) -> bool {
        self.parked[slot]
    }

    /// Number of grid edges of a parked slot in `[shadow_next, now)` — the
    /// edges elided so far.
    fn elided_before_now(&self, slot: usize) -> (u64, Time) {
        let start = self.shadow_next[slot];
        let period = self.entries[slot].period;
        if start > self.now {
            return (0, start);
        }
        let delta = self.now.as_fs() - start.as_fs();
        let k = delta.div_ceil(period.as_fs());
        (k, start + period * k)
    }

    /// Unparks a clock that slot `waker` just woke (by pushing it work at
    /// the current instant). Returns `(elided, next)`: the number of
    /// elided edges — all strictly before `now`, plus an edge at exactly
    /// `now` when the woken clock's batch position precedes the waker's
    /// (that edge had already been skipped as a no-op before the waker
    /// ran; an edge at `now` *due after* the waker is re-armed instead and
    /// dispatches normally) — and the time of the first edge that will
    /// dispatch live. The caller must replay the returned count as idle
    /// ticks before the domain's next dispatched edge.
    ///
    /// # Panics
    ///
    /// Panics if either slot is unregistered or `slot` is not parked.
    pub fn unpark(&mut self, slot: usize, waker: usize) -> (u64, Time) {
        assert!(slot < self.len && waker < self.len, "unregistered slot");
        assert!(self.parked[slot], "unpark of a clock that is not parked");
        let (mut elided, mut next) = self.elided_before_now(slot);
        if next == self.now && self.entries[slot].priority < self.entries[waker].priority {
            // The woken clock's edge at `now` was ordered before the
            // waker's: it has conceptually already fired as a no-op.
            elided += 1;
            next += self.entries[slot].period;
        }
        self.entries[slot].next = next;
        self.shadow_next[slot] = Time::MAX;
        self.parked[slot] = false;
        if self.uniform {
            self.rebuild_rotation();
        }
        (elided, next)
    }

    /// Unparks a clock at the *end of a run*, returning the edges the
    /// unelided schedule would still have dispatched: every elided edge
    /// strictly before `now`, plus an edge at exactly `now` when this
    /// clock's priority ordered it before `stop` (the slot whose dispatch
    /// ended the run — simultaneous edges after it never fire). Returns
    /// `(elided, next)` as [`ClockSet::unpark`] does; the caller replays
    /// the count as idle ticks before reading its final state.
    ///
    /// # Panics
    ///
    /// Panics if either slot is unregistered or `slot` is not parked.
    pub fn drain_parked(&mut self, slot: usize, stop: usize) -> (u64, Time) {
        assert!(slot < self.len && stop < self.len, "unregistered slot");
        assert!(self.parked[slot], "drain of a clock that is not parked");
        let (mut elided, mut next) = self.elided_before_now(slot);
        if next == self.now && self.entries[slot].priority < self.entries[stop].priority {
            elided += 1;
            next += self.entries[slot].period;
        }
        self.entries[slot].next = next;
        self.shadow_next[slot] = Time::MAX;
        self.parked[slot] = false;
        if self.uniform {
            self.rebuild_rotation();
        }
        (elided, next)
    }

    /// Dispatches **all** edges sharing the earliest timestamp in ascending
    /// `(priority, slot)` order with one callback per edge, amortising the
    /// min-scan across the batch. For the fully synchronous machine (five
    /// domains, one period and phase) this coalesces every time step into a
    /// single scan + five dispatches.
    ///
    /// `dispatch(slot, time)` returns `false` to stop mid-batch; remaining
    /// same-time edges stay pending (exactly like the general engine halting
    /// between two simultaneous events). Returns the batch timestamp, or
    /// `None` for an empty set.
    pub fn tick_batch_while(
        &mut self,
        mut dispatch: impl FnMut(usize, Time) -> bool,
    ) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let first = self.min_slot();
        let t = self.entries[first].next;
        assert!(
            t != Time::MAX,
            "every clock is parked: the simulated system deadlocked while \
             still running (a quiescent domain was never woken)"
        );
        self.now = t;
        loop {
            let s = self.min_slot();
            if self.entries[s].next != t {
                return Some(t);
            }
            self.entries[s].next =
                t + self.entries[s].period + std::mem::take(&mut self.deferred[s]);
            self.edges += 1;
            if !dispatch(s, t) {
                return Some(t);
            }
        }
    }

    /// [`ClockSet::tick_batch_while`] without early exit.
    pub fn tick_batch(&mut self, mut dispatch: impl FnMut(usize, Time)) -> Option<Time> {
        self.tick_batch_while(|slot, time| {
            dispatch(slot, time);
            true
        })
    }

    /// Dispatches every edge with a timestamp strictly below `deadline`,
    /// batching simultaneous edges. Returns the number of edges dispatched.
    pub fn run_until(&mut self, deadline: Time, mut dispatch: impl FnMut(usize, Time)) -> u64 {
        let before = self.edges;
        while let Some((t, _)) = self.peek() {
            if t >= deadline {
                break;
            }
            self.tick_batch(&mut dispatch);
        }
        self.edges - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_edge_sequence_matches_engine_semantics() {
        // Same scenario as the engine's figure4 test, but with distinct
        // priorities (the ClockSet ordering contract).
        let mut cs = ClockSet::new();
        let c1 = cs.add_clock(Time::from_ps(500), Time::from_ns(2), 1);
        let c2 = cs.add_clock(Time::from_ns(1), Time::from_ns(3), 2);
        let c3 = cs.add_clock(Time::ZERO, Time::from_ps(2500), 3);
        let mut log = Vec::new();
        cs.run_until(Time::from_ns(8), |slot, t| log.push((slot, t.as_fs())));
        let expect = [
            (c3, 0u64),
            (c1, 500_000),
            (c2, 1_000_000),
            // Simultaneous at 2.5 ns: priority 1 (c1) precedes priority 3.
            (c1, 2_500_000),
            (c3, 2_500_000),
            (c2, 4_000_000),
            (c1, 4_500_000),
            (c3, 5_000_000),
            (c1, 6_500_000),
            (c2, 7_000_000),
            (c3, 7_500_000),
        ];
        assert_eq!(log, expect);
        assert_eq!(cs.edges_dispatched(), 11);
        assert_eq!(cs.now(), Time::from_ps(7_500));
    }

    #[test]
    fn synchronous_clocks_coalesce_into_one_batch() {
        let mut cs = ClockSet::new();
        for p in 0..5 {
            cs.add_clock(Time::ZERO, Time::from_ns(1), p);
        }
        let mut batch = Vec::new();
        let t = cs
            .tick_batch(|slot, time| batch.push((slot, time)))
            .unwrap();
        assert_eq!(t, Time::ZERO);
        // All five domains dispatched at t=0, in priority order.
        assert_eq!(batch, (0..5).map(|s| (s, Time::ZERO)).collect::<Vec<_>>());
        // Next batch is a full nanosecond later.
        assert_eq!(cs.peek(), Some((Time::from_ns(1), 0)));
    }

    #[test]
    fn batch_early_exit_leaves_remaining_edges_pending() {
        let mut cs = ClockSet::new();
        for p in 0..3 {
            cs.add_clock(Time::ZERO, Time::from_ns(1), p);
        }
        let mut seen = Vec::new();
        cs.tick_batch_while(|slot, _| {
            seen.push(slot);
            slot < 1 // stop after the second dispatch
        });
        assert_eq!(seen, vec![0, 1]);
        // Slot 2's t=0 edge is still pending.
        assert_eq!(cs.peek(), Some((Time::ZERO, 2)));
    }

    #[test]
    fn single_tick_order_breaks_ties_by_priority() {
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 5);
        cs.add_clock(Time::ZERO, Time::from_ns(1), -1);
        cs.add_clock(Time::ZERO, Time::from_ns(1), 3);
        let order: Vec<usize> = (0..3).map(|_| cs.tick().unwrap().1).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate clock priority")]
    fn duplicate_priorities_are_loud() {
        // Regression for the two-scheduler contract: duplicate priorities
        // used to be accepted silently, diverging ClockSet (slot order) from
        // Engine (insertion-sequence order).
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 7);
        cs.add_clock(Time::from_ps(500), Time::from_ns(2), 7);
    }

    #[test]
    fn stretch_delays_one_edge_then_returns_to_period() {
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        assert_eq!(cs.tick(), Some((Time::ZERO, 0)));
        // Next edge would be 1 ns; stretch it by 300 ps.
        cs.stretch(0, Time::from_ps(300));
        assert_eq!(cs.tick(), Some((Time::from_ps(1_300), 0)));
        // The period resumes from the stretched edge.
        assert_eq!(cs.tick(), Some((Time::from_ps(2_300), 0)));
    }

    #[test]
    fn stretch_requests_accumulate() {
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        cs.tick();
        cs.stretch(0, Time::from_ps(100));
        cs.stretch(0, Time::from_ps(200));
        assert_eq!(cs.tick(), Some((Time::from_ps(1_300), 0)));
    }

    #[test]
    fn stretch_of_pending_same_time_edge_defers_to_the_next() {
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        cs.add_clock(Time::ZERO, Time::from_ns(1), 1);
        // Dispatch only clock 0's t=0 edge; clock 1's t=0 edge is pending.
        assert_eq!(cs.tick(), Some((Time::ZERO, 0)));
        cs.stretch(1, Time::from_ps(400));
        // The pending edge fires unstretched...
        assert_eq!(cs.tick(), Some((Time::ZERO, 1)));
        // ...and the stretch lands on the edge after it.
        assert_eq!(cs.tick(), Some((Time::from_ns(1), 0)));
        assert_eq!(cs.tick(), Some((Time::from_ps(1_400), 1)));
    }

    #[test]
    fn parked_clock_is_elided_then_resumes_on_grid() {
        let mut cs = ClockSet::new();
        let a = cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        let b = cs.add_clock(Time::from_ps(500), Time::from_ns(1), 1);
        assert_eq!(cs.tick(), Some((Time::ZERO, a)));
        assert_eq!(cs.tick(), Some((Time::from_ps(500), b)));
        cs.park(b);
        assert!(cs.is_parked(b));
        // With b parked, only a's edges dispatch.
        assert_eq!(cs.tick(), Some((Time::from_ns(1), a)));
        assert_eq!(cs.tick(), Some((Time::from_ns(2), a)));
        assert_eq!(cs.tick(), Some((Time::from_ns(3), a)));
        // b's elided edges were 1.5 and 2.5 ns; its next live edge is 3.5.
        assert_eq!(cs.unpark(b, a), (2, Time::from_ps(3_500)));
        assert!(!cs.is_parked(b));
        assert_eq!(cs.tick(), Some((Time::from_ps(3_500), b)));
    }

    #[test]
    fn unpark_rearms_a_same_instant_edge_ordered_after_the_waker() {
        // Aligned clocks: the woken clock has an edge at exactly `now`.
        let mut cs = ClockSet::new();
        let a = cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        let b = cs.add_clock(Time::ZERO, Time::from_ns(1), 1);
        cs.tick(); // a @ 0
        cs.tick(); // b @ 0
        cs.park(b);
        cs.tick(); // a @ 1
        cs.tick(); // a @ 2
                   // b's priority (1) orders its 2 ns edge *after* a's: the edge has
                   // not conceptually fired yet, so it re-arms and dispatches live.
        assert_eq!(cs.unpark(b, a), (1, Time::from_ns(2))); // only the 1 ns edge was elided
        assert_eq!(cs.tick(), Some((Time::from_ns(2), b)));
    }

    #[test]
    fn unpark_elides_a_same_instant_edge_ordered_before_the_waker() {
        let mut cs = ClockSet::new();
        let hi = cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        let lo = cs.add_clock(Time::ZERO, Time::from_ns(1), 1);
        cs.tick(); // hi @ 0
        cs.tick(); // lo @ 0
        cs.park(hi);
        cs.tick(); // lo @ 1
                   // hi's 1 ns edge was ordered *before* lo's 1 ns dispatch, so it was
                   // already skipped as a no-op: it counts as elided and the clock
                   // resumes at 2 ns.
        assert_eq!(cs.unpark(hi, lo), (1, Time::from_ns(2)));
        assert_eq!(cs.tick(), Some((Time::from_ns(2), hi)));
    }

    #[test]
    fn drain_parked_counts_final_batch_edges_by_stop_priority() {
        let mut cs = ClockSet::new();
        let a = cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        let b = cs.add_clock(Time::ZERO, Time::from_ns(1), 1);
        let c = cs.add_clock(Time::ZERO, Time::from_ns(1), 2);
        for _ in 0..3 {
            cs.tick(); // a, b, c @ 0
        }
        cs.park(a);
        cs.park(c);
        cs.tick(); // b @ 1 — the run stops here
                   // a (priority 0) would have dispatched at 1 ns before b: elided.
        assert_eq!(cs.drain_parked(a, b), (1, Time::from_ns(2)));
        // c (priority 2) comes after the stopping edge: not dispatched.
        assert_eq!(cs.drain_parked(c, b), (0, Time::from_ns(1)));
    }

    #[test]
    #[should_panic(expected = "every clock is parked")]
    fn all_parked_is_a_loud_deadlock() {
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        cs.tick();
        cs.park(0);
        cs.tick();
    }

    #[test]
    fn zero_stretch_is_a_no_op() {
        let mut cs = ClockSet::new();
        cs.add_clock(Time::ZERO, Time::from_ns(1), 0);
        cs.tick();
        cs.stretch(0, Time::ZERO);
        assert_eq!(cs.peek(), Some((Time::from_ns(1), 0)));
    }

    #[test]
    #[should_panic(expected = "unregistered clock")]
    fn stretch_of_unknown_slot_panics() {
        ClockSet::new().stretch(0, Time::from_ns(1));
    }

    #[test]
    fn empty_set_is_inert() {
        let mut cs = ClockSet::new();
        assert!(cs.is_empty());
        assert_eq!(cs.peek(), None);
        assert_eq!(cs.tick(), None);
        assert_eq!(cs.tick_batch(|_, _| ()), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        ClockSet::new().add_clock(Time::ZERO, Time::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn overfull_set_rejected() {
        let mut cs = ClockSet::new();
        for p in 0..=MAX_CLOCKS {
            cs.add_clock(Time::ZERO, Time::from_ns(1), p as Priority);
        }
    }
}
