//! The event-driven simulation engine of the paper's section 4.2.
//!
//! The paper describes a general-purpose engine built around an event queue
//! and a global timer, where each queue node carries: a function to call, a
//! parameter, the scheduled time, a priority number breaking ties between
//! simultaneous events, and (for clocked systems) a repetition period. This
//! module is a faithful, type-safe port: the linked list becomes a binary
//! heap, the `void*` parameter becomes the world type `W`, and periodic
//! events reschedule themselves exactly as described ("when the execution
//! engine processes such a periodic event, it schedules another instance of
//! the same event into the queue").

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use crate::time::Time;

/// Priority of an event; events scheduled for the same instant execute in
/// ascending priority order (then in scheduling order).
///
/// The paper's engine uses "a priority number to determine the order of
/// execution of events which are scheduled to occur at the same time
/// instant"; pipeline simulators use this to evaluate later pipe stages
/// before earlier ones within one clock edge.
pub type Priority = i32;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// What a periodic handler asks the engine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep firing every period.
    Keep,
    /// Stop; the event is removed from the queue.
    Cancel,
}

type OnceHandler<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;
type PeriodicHandler<W> = Box<dyn FnMut(&mut W, &mut Engine<W>) -> Control>;

enum Payload<W> {
    Once(OnceHandler<W>),
    Periodic {
        period: Time,
        handler: PeriodicHandler<W>,
    },
}

struct Entry<W> {
    at: Time,
    priority: Priority,
    seq: u64,
    id: EventId,
    payload: Payload<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    /// Reversed so that the `BinaryHeap` max-heap pops the *earliest*
    /// `(time, priority, seq)` triple first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.priority, other.seq).cmp(&(self.at, self.priority, self.seq))
    }
}

/// A deterministic discrete-event simulation engine over a world `W`.
///
/// Events are ordered by `(time, priority, insertion sequence)`, making every
/// run fully reproducible. Periodic events model free-running clocks: the
/// paper's Figure 4 example of three clock domains with periods 2 ns, 3 ns
/// and 2.5 ns is reproduced in `examples/event_engine.rs`.
///
/// # Examples
///
/// ```
/// use gals_events::{Engine, Control, Time};
///
/// let mut engine = Engine::new();
/// // A free-running clock with period 2 ns starting at phase 0.5 ns.
/// engine.schedule_periodic(Time::from_ps(500), Time::from_ns(2), 0, |ticks: &mut u32, _| {
///     *ticks += 1;
///     Control::Keep
/// });
/// let mut ticks = 0u32;
/// engine.run_until(&mut ticks, Time::from_ns(9));
/// // Edges at 0.5, 2.5, 4.5, 6.5, 8.5 ns.
/// assert_eq!(ticks, 5);
/// ```
pub struct Engine<W> {
    heap: BinaryHeap<Entry<W>>,
    cancelled: HashSet<EventId>,
    /// Ids of events that are scheduled and neither executed (one-shots),
    /// self-terminated (periodics) nor cancelled. This is the source of
    /// truth for [`Engine::is_idle`] and makes [`Engine::cancel`] exact:
    /// cancelling an already-dead id is a no-op instead of planting a
    /// permanent resident in `cancelled`.
    live: HashSet<EventId>,
    /// Outstanding one-shot stretch requests per event: `(requested_at,
    /// extra)` pairs applied lazily when the stretched occurrence is popped
    /// (see [`Engine::stretch`]).
    stretches: HashMap<EventId, Vec<(Time, Time)>>,
    /// Priorities of live periodic events, kept to make duplicate-priority
    /// registrations (which silently break the ClockSet-vs-Engine ordering
    /// contract) loud in every build profile. At most one entry per clock,
    /// so the linear scan on registration is negligible.
    periodic_priorities: Vec<(EventId, Priority)>,
    now: Time,
    seq: u64,
    next_id: u64,
    processed: u64,
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine with the timer at `Time::ZERO`.
    pub fn new() -> Self {
        Engine {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            stretches: HashMap::new(),
            periodic_priorities: Vec::new(),
            now: Time::ZERO,
            seq: 0,
            next_id: 0,
            processed: 0,
        }
    }

    /// The current value of the global timer: the timestamp of the event
    /// being processed, or of the last processed event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including lazily cancelled ones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no live events remain.
    pub fn is_idle(&self) -> bool {
        self.live.is_empty()
    }

    fn push(&mut self, at: Time, priority: Priority, id: EventId, payload: Payload<W>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            priority,
            seq,
            id,
            payload,
        });
    }

    fn fresh_id(&mut self) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.live.insert(id);
        id
    }

    /// Schedules a one-shot event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — the engine never
    /// travels backwards.
    pub fn schedule_once(
        &mut self,
        at: Time,
        priority: Priority,
        handler: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past (at {at}, now {now})",
            now = self.now
        );
        let id = self.fresh_id();
        self.push(at, priority, id, Payload::Once(Box::new(handler)));
        id
    }

    /// Schedules a one-shot event `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: Time,
        priority: Priority,
        handler: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_once(self.now + delay, priority, handler)
    }

    /// Schedules a periodic event (a clock): first firing at `start`, then
    /// every `period` until the handler returns [`Control::Cancel`] or the
    /// event is cancelled externally.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the simulation would never advance), if
    /// `start` is in the past, or if another live periodic event already
    /// carries `priority`: periodic events model the two-scheduler
    /// contract's clocks, and duplicate priorities silently diverge the
    /// [`ClockSet`](crate::ClockSet) oracle (ties fall through to insertion
    /// sequence here but to slot order there). The check runs in every
    /// build profile so a mis-configured clock tree fails before the
    /// simulation starts rather than diverging quietly.
    pub fn schedule_periodic(
        &mut self,
        start: Time,
        period: Time,
        priority: Priority,
        handler: impl FnMut(&mut W, &mut Engine<W>) -> Control + 'static,
    ) -> EventId {
        assert!(
            period > Time::ZERO,
            "periodic event must have a non-zero period"
        );
        assert!(
            start >= self.now,
            "cannot schedule an event in the past (at {start}, now {now})",
            now = self.now
        );
        assert!(
            self.periodic_priorities.iter().all(|&(_, p)| p != priority),
            "duplicate periodic priority {priority}: the two-scheduler ordering \
             contract requires a distinct priority per clock"
        );
        let id = self.fresh_id();
        self.periodic_priorities.push((id, priority));
        self.push(
            start,
            priority,
            id,
            Payload::Periodic {
                period,
                handler: Box::new(handler),
            },
        );
        id
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (live); cancelling an id that already executed, terminated
    /// or was cancelled is a no-op returning `false`. Heap removal is lazy
    /// — the entry is skipped when popped — but liveness accounting is
    /// exact, so [`Engine::is_idle`] never lies and the cancellation set
    /// cannot grow unboundedly.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id) {
            return false;
        }
        self.retire(id);
        self.cancelled.insert(id)
    }

    /// Drops per-event bookkeeping of a dead (executed, terminated or
    /// cancelled) event. Both containers are empty in the common case
    /// (no stretches requested; priority tracking is debug-only), so the
    /// per-event release-build cost is two length checks.
    fn retire(&mut self, id: EventId) {
        if !self.stretches.is_empty() {
            self.stretches.remove(&id);
        }
        if let Some(pos) = self.periodic_priorities.iter().position(|&(i, _)| i == id) {
            self.periodic_priorities.swap_remove(pos);
        }
    }

    /// Requests a one-shot stretch of a pending event: its next occurrence
    /// *strictly after* the current time is delayed by `extra` (a periodic
    /// event's subsequent occurrences then follow `period` from the
    /// stretched one). Requests accumulate. An occurrence scheduled at
    /// exactly the current instant is not stretched — for a periodic event
    /// the request carries over to the occurrence after it.
    ///
    /// This models pausible/stretchable clocking: an inter-domain handshake
    /// holds the participating clocks' ring oscillators for the handshake
    /// duration, delaying their next edges.
    /// [`ClockSet::stretch`](crate::ClockSet::stretch) implements the
    /// identical semantics on the static scheduler, extending the
    /// differential ordering contract to stretched clocks.
    ///
    /// Returns `false` (and discards the request) if `id` is not live.
    pub fn stretch(&mut self, id: EventId, extra: Time) -> bool {
        if !self.live.contains(&id) {
            return false;
        }
        if extra > Time::ZERO {
            self.stretches
                .entry(id)
                .or_default()
                .push((self.now, extra));
        }
        true
    }

    /// Removes and sums the stretch requests applicable to an occurrence of
    /// `id` at time `at` (those requested strictly before `at`); requests
    /// made at exactly `at` stay pending for the following occurrence.
    #[inline]
    fn take_applicable_stretch(&mut self, id: EventId, at: Time) -> Option<Time> {
        // Fast path: no stretch has ever been requested (every non-pausible
        // run). One length check instead of a hash per pop/peek.
        if self.stretches.is_empty() {
            return None;
        }
        let reqs = self.stretches.get_mut(&id)?;
        let mut total = Time::ZERO;
        reqs.retain(|&(requested_at, extra)| {
            if requested_at < at {
                total += extra;
                false
            } else {
                true
            }
        });
        if reqs.is_empty() {
            self.stretches.remove(&id);
        }
        (total > Time::ZERO).then_some(total)
    }

    /// Executes the single earliest pending event. Returns the time at which
    /// it fired, or `None` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> Option<Time> {
        loop {
            let entry = self.heap.pop()?;
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            if let Some(extra) = self.take_applicable_stretch(entry.id, entry.at) {
                // A stretched occurrence: move it later without executing.
                self.push(entry.at + extra, entry.priority, entry.id, entry.payload);
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.processed += 1;
            match entry.payload {
                Payload::Once(f) => {
                    self.live.remove(&entry.id);
                    self.retire(entry.id);
                    f(world, self);
                }
                Payload::Periodic {
                    period,
                    mut handler,
                } => {
                    let control = handler(world, self);
                    // The handler may have cancelled itself via `cancel`
                    // (which already removed it from the live set).
                    let self_cancelled = self.cancelled.remove(&entry.id);
                    if control == Control::Keep && !self_cancelled {
                        self.push(
                            entry.at + period,
                            entry.priority,
                            entry.id,
                            Payload::Periodic { period, handler },
                        );
                    } else if !self_cancelled {
                        self.live.remove(&entry.id);
                        self.retire(entry.id);
                    }
                }
            }
            return Some(self.now);
        }
    }

    /// Runs until the queue is exhausted. Equivalent to the paper's
    /// `process_event_queue()`.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world).is_some() {}
    }

    /// Runs events with timestamps strictly less than `deadline`, leaving
    /// later events pending. The timer ends at the last executed event.
    pub fn run_until(&mut self, world: &mut W, deadline: Time) {
        loop {
            let Some(next) = self.peek_time() else { return };
            if next >= deadline {
                return;
            }
            self.step(world);
        }
    }

    /// Runs until `predicate(world)` becomes true (checked after every
    /// event) or the queue empties. Returns `true` if the predicate fired.
    pub fn run_while(&mut self, world: &mut W, mut keep_going: impl FnMut(&W) -> bool) -> bool {
        while keep_going(world) {
            if self.step(world).is_none() {
                return false;
            }
        }
        true
    }

    /// Timestamp of the next live pending event, if any.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Drop cancelled entries and apply due stretches so the peek is
        // accurate.
        loop {
            let top = self.heap.peek()?;
            let (id, at) = (top.id, top.at);
            if self.cancelled.contains(&id) {
                self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&id);
                continue;
            }
            if let Some(extra) = self.take_applicable_stretch(id, at) {
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.push(entry.at + extra, entry.priority, entry.id, entry.payload);
                continue;
            }
            return Some(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_events_run_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule_once(Time::from_ns(3), 0, |log, _| log.push(3));
        engine.schedule_once(Time::from_ns(1), 0, |log, _| log.push(1));
        engine.schedule_once(Time::from_ns(2), 0, |log, _| log.push(2));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(engine.now(), Time::from_ns(3));
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn priority_breaks_ties_then_insertion_order() {
        let mut engine: Engine<Vec<&'static str>> = Engine::new();
        let t = Time::from_ns(1);
        engine.schedule_once(t, 5, |log, _| log.push("low"));
        engine.schedule_once(t, -1, |log, _| log.push("high"));
        engine.schedule_once(t, 5, |log, _| log.push("low2"));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec!["high", "low", "low2"]);
    }

    #[test]
    fn periodic_event_reschedules_itself() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::from_ns(2), 0, |count, engine| {
            *count += 1;
            if engine.now() >= Time::from_ns(8) {
                Control::Cancel
            } else {
                Control::Keep
            }
        });
        let mut count = 0;
        engine.run(&mut count);
        // Fires at 0, 2, 4, 6, 8 then cancels itself.
        assert_eq!(count, 5);
    }

    #[test]
    fn figure4_three_clock_example() {
        // Paper Figure 4: clocks with periods 2, 3 and 2.5 ns starting at
        // phases 0.5, 1.0 and 0.0 ns.
        #[derive(Default)]
        struct Log(Vec<(u8, u64)>);
        let mut engine: Engine<Log> = Engine::new();
        engine.schedule_periodic(Time::from_ps(500), Time::from_ns(2), 1, |w: &mut Log, e| {
            w.0.push((1, e.now().as_fs()));
            Control::Keep
        });
        engine.schedule_periodic(Time::from_ns(1), Time::from_ns(3), 2, |w: &mut Log, e| {
            w.0.push((2, e.now().as_fs()));
            Control::Keep
        });
        engine.schedule_periodic(Time::ZERO, Time::from_ps(2500), 3, |w: &mut Log, e| {
            w.0.push((3, e.now().as_fs()));
            Control::Keep
        });
        let mut log = Log::default();
        engine.run_until(&mut log, Time::from_ns(8));
        let expect = [
            (3, 0u64),
            (1, 500_000),
            (2, 1_000_000),
            // Clocks 1 and 3 both tick at 2.5 ns; clock 1's lower priority
            // number wins the deterministic (time, priority) tie-break —
            // clocks carry distinct priorities per the two-scheduler
            // contract, so the sequence tie-break never decides.
            (1, 2_500_000),
            (3, 2_500_000),
            (2, 4_000_000),
            (1, 4_500_000),
            (3, 5_000_000),
            (1, 6_500_000),
            (2, 7_000_000),
            (3, 7_500_000),
        ];
        assert_eq!(log.0, expect);
    }

    #[test]
    fn cancel_pending_event() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule_once(Time::from_ns(1), 0, |count, _| *count += 1);
        assert!(engine.cancel(id));
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 0);
    }

    #[test]
    fn cancel_periodic_externally() {
        let mut engine: Engine<u32> = Engine::new();
        let clock = engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |count, _| {
            *count += 1;
            Control::Keep
        });
        engine.schedule_once(Time::from_ps(3_500), -1, move |_, engine| {
            engine.cancel(clock);
        });
        let mut count = 0;
        engine.run(&mut count);
        // Ticks at 0, 1, 2, 3 ns; the 4 ns tick is cancelled at 3.5 ns.
        assert_eq!(count, 4);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule_once(Time::from_ns(1), 0, |_, engine| {
            engine.schedule_in(Time::from_ns(5), 0, |log: &mut Vec<u64>, e| {
                log.push(e.now().as_fs());
            });
        });
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![6_000_000]);
    }

    #[test]
    fn run_until_leaves_later_events() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |c, _| {
            *c += 1;
            Control::Keep
        });
        let mut count = 0;
        engine.run_until(&mut count, Time::from_ns(3));
        assert_eq!(count, 3); // 0, 1, 2 ns
        assert!(engine.peek_time() == Some(Time::from_ns(3)));
    }

    #[test]
    fn run_while_predicate() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |c, _| {
            *c += 1;
            Control::Keep
        });
        let mut count = 0;
        let fired = engine.run_while(&mut count, |c| *c < 10);
        assert!(fired);
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_once(Time::from_ns(5), 0, |_, engine| {
            engine.schedule_once(Time::from_ns(1), 0, |_, _| {});
        });
        let mut w = 0;
        engine.run(&mut w);
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn zero_period_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::ZERO, 0, |_, _| Control::Keep);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut engine: Engine<u32> = Engine::new();
        assert!(!engine.cancel(EventId(42)));
    }

    #[test]
    fn cancelling_executed_one_shot_is_a_no_op() {
        // Regression: cancelling an id whose one-shot already executed used
        // to plant a permanent resident in the cancelled set, making
        // `is_idle` report idle while a periodic clock was still live.
        let mut engine: Engine<u32> = Engine::new();
        let once = engine.schedule_once(Time::from_ns(1), 0, |c, _| *c += 1);
        let clock = engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |_, _| Control::Keep);
        let mut w = 0;
        engine.run_until(&mut w, Time::from_ns(3));
        assert!(!engine.cancel(once), "executed events cannot be cancelled");
        assert!(!engine.is_idle(), "the clock is still live");
        assert!(engine.cancel(clock));
        assert!(engine.is_idle());
        engine.run(&mut w);
        assert_eq!(engine.pending(), 0, "lazy-cancelled entries drain fully");
        assert_eq!(w, 1);
    }

    #[test]
    fn double_cancel_reports_false_once() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule_once(Time::from_ns(1), 0, |_, _| {});
        assert!(engine.cancel(id));
        assert!(!engine.cancel(id));
        assert!(engine.is_idle());
    }

    #[test]
    fn periodic_self_termination_goes_idle() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |c, _| {
            *c += 1;
            if *c == 3 {
                Control::Cancel
            } else {
                Control::Keep
            }
        });
        let mut w = 0;
        engine.run(&mut w);
        assert_eq!(w, 3);
        assert!(engine.is_idle());
    }

    #[test]
    #[should_panic(expected = "duplicate periodic priority")]
    fn duplicate_periodic_priorities_are_loud() {
        // Regression for the two-scheduler contract: two clocks at one
        // priority used to be accepted silently, diverging the edge order
        // from the ClockSet oracle (sequence tie-break vs slot tie-break).
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 4, |_, _| Control::Keep);
        engine.schedule_periodic(Time::from_ps(500), Time::from_ns(2), 4, |_, _| {
            Control::Keep
        });
    }

    #[test]
    fn duplicate_priority_is_reusable_after_the_holder_dies() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 4, |_, _| Control::Keep);
        engine.cancel(id);
        // The priority is free again once its holder is dead.
        engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 4, |c, _| {
            *c += 1;
            Control::Cancel
        });
        let mut w = 0;
        engine.run(&mut w);
        assert_eq!(w, 1);
    }

    #[test]
    fn stretch_delays_one_occurrence_then_period_resumes() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let id =
            engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |log: &mut Vec<u64>, e| {
                log.push(e.now().as_fs());
                Control::Keep
            });
        let mut log = Vec::new();
        engine.step(&mut log); // edge at 0
        assert!(engine.stretch(id, Time::from_ps(300)));
        engine.step(&mut log); // stretched edge at 1.3 ns
        engine.step(&mut log); // back on period: 2.3 ns
        assert_eq!(log, vec![0, 1_300_000, 2_300_000]);
    }

    #[test]
    fn stretch_requests_accumulate_until_applied() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let id =
            engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |log: &mut Vec<u64>, e| {
                log.push(e.now().as_fs());
                Control::Keep
            });
        let mut log = Vec::new();
        engine.step(&mut log);
        engine.stretch(id, Time::from_ps(100));
        engine.stretch(id, Time::from_ps(200));
        engine.step(&mut log);
        assert_eq!(log, vec![0, 1_300_000]);
    }

    #[test]
    fn stretch_at_the_occurrence_instant_defers_to_the_next() {
        let mut engine: Engine<Vec<(u64, u8)>> = Engine::new();
        engine.schedule_periodic(
            Time::ZERO,
            Time::from_ns(2),
            0,
            |log: &mut Vec<(u64, u8)>, e| {
                log.push((e.now().as_fs(), 0));
                Control::Keep
            },
        );
        let b = engine.schedule_periodic(
            Time::ZERO,
            Time::from_ns(3),
            1,
            |log: &mut Vec<(u64, u8)>, e| {
                log.push((e.now().as_fs(), 1));
                Control::Keep
            },
        );
        let mut log = Vec::new();
        engine.step(&mut log); // clock 0 fires at t=0; clock 1's 0-edge pending
        assert_eq!(engine.now(), Time::ZERO);
        engine.stretch(b, Time::from_ps(500));
        engine.step(&mut log); // clock 1 still fires at 0 (request deferred)
        engine.step(&mut log); // clock 0 at 2 ns
        engine.step(&mut log); // clock 1 at 3 + 0.5 = 3.5 ns
        assert_eq!(log, vec![(0, 0), (0, 1), (2_000_000, 0), (3_500_000, 1)]);
    }

    #[test]
    fn peek_time_reports_stretched_occurrences() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule_periodic(Time::ZERO, Time::from_ns(1), 0, |c, _| {
            *c += 1;
            Control::Keep
        });
        let mut w = 0;
        engine.step(&mut w);
        engine.stretch(id, Time::from_ps(700));
        assert_eq!(engine.peek_time(), Some(Time::from_ps(1_700)));
    }

    #[test]
    fn stretch_of_dead_event_is_rejected() {
        let mut engine: Engine<u32> = Engine::new();
        let id = engine.schedule_once(Time::from_ns(1), 0, |_, _| {});
        engine.cancel(id);
        assert!(!engine.stretch(id, Time::from_ns(1)));
    }

    #[test]
    fn is_idle_reflects_live_events() {
        let mut engine: Engine<u32> = Engine::new();
        assert!(engine.is_idle());
        let id = engine.schedule_once(Time::from_ns(1), 0, |_, _| {});
        assert!(!engine.is_idle());
        engine.cancel(id);
        assert!(engine.is_idle());
    }
}
