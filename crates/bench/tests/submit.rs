//! The `sweep --submit` client against a real in-process server: clean
//! round trips reuse the server's cache, exhausted retries fail with
//! the last transient error, and (chaos builds) an injected mid-stream
//! disconnect is retried to a byte-identical merged payload.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};

use gals_bench::submit::{submit, SubmitRequest};
use gals_sweep::{SweepOptions, SweepServer};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gals-bench-submittest-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start(
    tag: &str,
    build: impl FnOnce(SweepServer) -> SweepServer,
) -> (String, std::thread::JoinHandle<()>, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let options = SweepOptions::new().threads(2).cache(dir.clone());
    let server = build(SweepServer::bind("127.0.0.1:0", 400, options).expect("bind"));
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, dir)
}

fn shutdown(addr: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    stream
        .write_all(b"{\"request\": \"shutdown\"}\n")
        .expect("send shutdown");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read shutdown ack");
    assert_eq!(line.trim_end(), "{\"ok\": \"shutdown\"}");
}

const MATRIX: &str = "{\"benchmarks\": [\"adpcm\"], \
     \"modes\": [\"sync\", \"gals\"], \
     \"dvfs\": [\"nominal\"], \
     \"phase_seeds\": [1]}";

#[test]
fn submit_round_trips_and_the_second_submission_is_all_cache_hits() {
    let (addr, handle, dir) = start("roundtrip", |s| s);

    let request = SubmitRequest::new(&addr, MATRIX);
    let first = submit(&request).expect("first submission");
    assert_eq!(first.attempts_used, 1);
    assert_eq!(first.failed_count, 0);
    assert_eq!(first.cache_misses, 2);

    let lines: Vec<&str> = first.payload.lines().collect();
    assert_eq!(lines.len(), 1 + 2 + 1, "header, 2 runs, tables");
    assert!(
        lines[0].starts_with("{\"response\": \"sweep\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].starts_with("{\"run\": {\"index\": 0, ") && lines[2].contains("\"index\": 1, "),
        "runs out of order: {lines:?}"
    );
    assert!(lines[3].starts_with("{\"tables\": "), "{}", lines[3]);

    // Resubmitting the same matrix: pure cache traffic, identical bytes.
    let second = submit(&request).expect("second submission");
    assert_eq!(second.cache_hits, 2);
    assert_eq!(second.cache_misses, 0);
    assert_eq!(second.simulated, 0);
    assert_eq!(second.payload, first.payload);

    shutdown(&addr);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_surface_the_last_transient_error() {
    // Nothing listens here; both attempts fail at connect.
    let mut request = SubmitRequest::new("127.0.0.1:1", MATRIX);
    request.attempts = 2;
    let err = submit(&request).expect_err("no server");
    assert!(err.contains("gave up after 2 attempts"), "{err}");
    assert!(err.contains("connect"), "{err}");
}

/// The tentpole's end-to-end retry story: the server hard-closes the
/// first response after one `run` line; the client reconnects, the
/// re-streamed records are merged, and the payload is byte-identical
/// to one from an unsabotaged server.
#[cfg(feature = "chaos")]
#[test]
fn a_mid_stream_drop_is_retried_to_a_byte_identical_payload() {
    let (addr, handle, dir) = start("baseline", |s| s);
    let baseline = submit(&SubmitRequest::new(&addr, MATRIX)).expect("baseline submission");
    shutdown(&addr);
    handle.join().expect("baseline server");
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, handle, dir) = start("dropper", |s| {
        s.chaos(gals_sweep::ServerChaos {
            drop_after_runs: Some(1),
            drop_times: 1,
        })
    });
    let outcome = submit(&SubmitRequest::new(&addr, MATRIX)).expect("retried submission");
    assert!(
        outcome.attempts_used >= 2,
        "the injected drop should have forced a retry, used {} attempt(s)",
        outcome.attempts_used
    );
    assert_eq!(outcome.failed_count, 0);
    assert_eq!(
        outcome.payload, baseline.payload,
        "merged retried payload differs from an uninterrupted session"
    );

    shutdown(&addr);
    handle.join().expect("dropper server");
    let _ = std::fs::remove_dir_all(&dir);
}
