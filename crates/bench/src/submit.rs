//! The thin `sweep --submit` client: frame one sweep request to a
//! running `sweep --serve` server, collect the streamed response, and
//! retry around transient failures.
//!
//! ## Retry contract
//!
//! A submission makes up to [`SubmitRequest::attempts`] connection
//! attempts. An attempt is **retried** (after a capped exponential
//! backoff with deterministic jitter) when:
//!
//! * the TCP connect fails (server not up yet, listen backlog full);
//! * the server sheds the connection with a `"retryable": true` error
//!   line (`--max-clients` / `--max-pending-runs` admission control);
//! * the stream ends (EOF or read error) before the `done` trailer —
//!   a crashed or restarted server, or an injected mid-stream drop.
//!
//! An attempt is **fatal** (no retry) when the server answers a
//! non-retryable `error` line (malformed matrix), cancels the request
//! (`{"done": false, ...}` — the submitted deadline expired), or the
//! response contradicts an earlier attempt (different `run_count`, or a
//! re-streamed record whose bytes differ from the one already held —
//! a determinism violation worth failing loudly on).
//!
//! Records already received survive a retry: each attempt re-requests
//! the full matrix (completed runs come back as cache hits), and
//! re-received records are byte-compared against the held copy rather
//! than overwriting it. The merged [`SubmitOutcome::payload`] — header,
//! every `run` line in matrix order, `tables` line — is therefore
//! byte-identical to an uninterrupted single-attempt session. The
//! `done` trailer is *not* part of the payload (its cache counters
//! legitimately differ across attempts); its fields are surfaced as
//! [`SubmitOutcome`] members instead.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// First backoff step after a failed attempt.
const BACKOFF_BASE_MS: u64 = 100;
/// Backoff ceiling — attempts never wait longer than this.
const BACKOFF_CAP_MS: u64 = 2_000;

/// One sweep submission: where to send it, what to send, how hard to
/// try.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Server address (`HOST:PORT`, as given to `--submit`).
    pub addr: String,
    /// The matrix in matrix-file JSON, flattened to a single line (the
    /// request framing is one object per line).
    pub matrix_json: String,
    /// Optional per-request wall-clock deadline forwarded to the server
    /// (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Total connection attempts before giving up (`--submit-retries`,
    /// minimum 1).
    pub attempts: u32,
}

impl SubmitRequest {
    /// A submission with the default retry budget (5 attempts).
    pub fn new(addr: impl Into<String>, matrix_json: impl Into<String>) -> Self {
        SubmitRequest {
            addr: addr.into(),
            matrix_json: matrix_json.into(),
            deadline_ms: None,
            attempts: 5,
        }
    }
}

/// A completed submission: the byte-stable payload plus the trailer's
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Header line, every `run` line in matrix order, `tables` line —
    /// each `\n`-terminated. Byte-identical to an uninterrupted session
    /// regardless of how many attempts it took.
    pub payload: String,
    /// `failed_count` from the `done` trailer.
    pub failed_count: u64,
    /// `simulated` from the `done` trailer (final successful attempt).
    pub simulated: u64,
    /// `cache_hits` from the `done` trailer (final successful attempt).
    pub cache_hits: u64,
    /// `cache_misses` from the `done` trailer (final successful attempt).
    pub cache_misses: u64,
    /// How many connection attempts were used (1 = no retries needed).
    pub attempts_used: u32,
}

/// Why an attempt stopped: worth retrying, or not.
#[derive(Debug)]
enum TryError {
    /// Transient — back off and reconnect if attempts remain.
    Retry(String),
    /// Permanent — surface immediately.
    Fatal(String),
}

/// Partial response state carried across attempts, so records received
/// before a mid-stream disconnect are kept, not re-earned.
#[derive(Default)]
struct Collected {
    header: Option<String>,
    runs: Vec<Option<String>>,
    tables: Option<String>,
}

/// The `done` trailer's counters.
struct Trailer {
    failed_count: u64,
    simulated: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Submits the request, retrying per the module-level contract.
///
/// # Errors
///
/// A human-readable message when the retry budget is exhausted or the
/// server answers with a fatal (non-retryable) condition.
pub fn submit(req: &SubmitRequest) -> Result<SubmitOutcome, String> {
    let attempts = req.attempts.max(1);
    let mut collected = Collected::default();
    let mut last_transient = String::new();
    for attempt in 1..=attempts {
        if attempt > 1 {
            std::thread::sleep(backoff(attempt));
        }
        match try_once(req, &mut collected) {
            Ok(trailer) => {
                let mut payload = String::new();
                let header = collected
                    .header
                    .take()
                    .ok_or("submit: response ended without a header")?;
                payload.push_str(&header);
                payload.push('\n');
                for (index, run) in collected.runs.iter().enumerate() {
                    match run {
                        Some(line) => {
                            payload.push_str(line);
                            payload.push('\n');
                        }
                        None => {
                            return Err(format!(
                                "submit: server sent its done trailer but run {index} \
                                 never arrived"
                            ))
                        }
                    }
                }
                let tables = collected
                    .tables
                    .take()
                    .ok_or("submit: response ended without a tables line")?;
                payload.push_str(&tables);
                payload.push('\n');
                return Ok(SubmitOutcome {
                    payload,
                    failed_count: trailer.failed_count,
                    simulated: trailer.simulated,
                    cache_hits: trailer.cache_hits,
                    cache_misses: trailer.cache_misses,
                    attempts_used: attempt,
                });
            }
            Err(TryError::Fatal(msg)) => return Err(msg),
            Err(TryError::Retry(msg)) => {
                eprintln!("submit: attempt {attempt}/{attempts} failed: {msg}");
                last_transient = msg;
            }
        }
    }
    Err(format!(
        "submit: gave up after {attempts} attempts; last error: {last_transient}"
    ))
}

/// One connection attempt: send the request, fold the streamed lines
/// into `collected`, return the trailer on a clean finish.
fn try_once(req: &SubmitRequest, collected: &mut Collected) -> Result<Trailer, TryError> {
    let stream = TcpStream::connect(&req.addr)
        .map_err(|e| TryError::Retry(format!("connect {}: {e}", req.addr)))?;
    let mut out = stream
        .try_clone()
        .map_err(|e| TryError::Retry(format!("clone stream: {e}")))?;
    let mut request = format!(
        "{{\"request\": \"sweep\", \"matrix\": {}",
        req.matrix_json.trim()
    );
    if let Some(ms) = req.deadline_ms {
        use std::fmt::Write as _;
        let _ = write!(request, ", \"deadline_ms\": {ms}");
    }
    request.push_str("}\n");
    out.write_all(request.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| TryError::Retry(format!("send request: {e}")))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| TryError::Retry(format!("read response: {e}")))?;
        if n == 0 {
            return Err(TryError::Retry(
                "stream ended before the done trailer".into(),
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("{\"error\": ") {
            if line.contains("\"retryable\": true") {
                return Err(TryError::Retry(format!("server shed the request: {rest}")));
            }
            return Err(TryError::Fatal(format!(
                "server rejected the request: {rest}"
            )));
        }
        if line.starts_with("{\"response\": \"sweep\"") {
            let count = scan_u64(line, "run_count")
                .ok_or_else(|| TryError::Fatal(format!("header without run_count: {line}")))?;
            accept_header(collected, line, count as usize)?;
        } else if line.starts_with("{\"run\": ") {
            let index = scan_u64(line, "index")
                .ok_or_else(|| TryError::Fatal(format!("run line without index: {line}")))?;
            accept_run(collected, line, index as usize)?;
        } else if line.starts_with("{\"tables\": ") {
            accept_exact(&mut collected.tables, line, "tables")?;
        } else if line.starts_with("{\"done\": true") {
            return Ok(Trailer {
                failed_count: scan_u64(line, "failed_count").unwrap_or(0),
                simulated: scan_u64(line, "simulated").unwrap_or(0),
                cache_hits: scan_u64(line, "cache_hits").unwrap_or(0),
                cache_misses: scan_u64(line, "cache_misses").unwrap_or(0),
            });
        } else if line.starts_with("{\"done\": false") {
            return Err(TryError::Fatal(format!(
                "server cancelled the request (deadline expired?): {line}"
            )));
        } else {
            return Err(TryError::Fatal(format!(
                "unrecognized response line: {line}"
            )));
        }
    }
}

/// Records the header, cross-checking `run_count` against any earlier
/// attempt.
fn accept_header(collected: &mut Collected, line: &str, count: usize) -> Result<(), TryError> {
    if collected.runs.is_empty() {
        collected.runs.resize(count, None);
    } else if collected.runs.len() != count {
        return Err(TryError::Fatal(format!(
            "server changed its mind: run_count {} then {count}",
            collected.runs.len()
        )));
    }
    accept_exact(&mut collected.header, line, "header")
}

/// Stores a run line by its record index; a re-streamed record must be
/// byte-identical to the held copy.
fn accept_run(collected: &mut Collected, line: &str, index: usize) -> Result<(), TryError> {
    let slot = collected.runs.get_mut(index).ok_or_else(|| {
        TryError::Fatal(format!("run index {index} outside the announced run_count"))
    })?;
    accept_exact(slot, line, "run")
}

/// First sighting stores the line; later sightings (a retried attempt
/// re-streaming) must match byte-for-byte — the server's determinism
/// guarantee, enforced client-side.
fn accept_exact(slot: &mut Option<String>, line: &str, what: &str) -> Result<(), TryError> {
    match slot {
        None => {
            *slot = Some(line.to_string());
            Ok(())
        }
        Some(held) if held == line => Ok(()),
        Some(held) => Err(TryError::Fatal(format!(
            "retried attempt re-streamed a different {what} line:\n  held: {held}\n  got:  {line}"
        ))),
    }
}

/// The integer following `"key": ` in a single-line JSON object, if any.
fn scan_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Capped exponential backoff before attempt `attempt` (≥ 2), jittered
/// into the upper half of the step so synchronized clients spread out.
/// The jitter is a pure function of the process id and the attempt
/// number — deterministic per process, different across processes.
fn backoff(attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(2).min(16);
    let full = BACKOFF_CAP_MS.min(BACKOFF_BASE_MS << exp);
    let half = full / 2;
    let roll = splitmix64(u64::from(std::process::id()) ^ (u64::from(attempt) << 32));
    Duration::from_millis(half + roll % (half + 1))
}

/// SplitMix64 — the workspace's standard seed scrambler, here for
/// backoff jitter only (never anything simulation-visible).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_u64_reads_single_line_objects() {
        let line = "{\"response\": \"sweep\", \"schema_version\": 5, \"run_count\": 12}";
        assert_eq!(scan_u64(line, "run_count"), Some(12));
        assert_eq!(scan_u64(line, "schema_version"), Some(5));
        assert_eq!(scan_u64(line, "absent"), None);
        let run = "{\"run\": {\"index\": 3, \"benchmark\": \"adpcm\"}}";
        assert_eq!(scan_u64(run, "index"), Some(3));
    }

    #[test]
    fn backoff_is_capped_and_jitter_stays_in_the_upper_half() {
        for attempt in 2..12 {
            let d = backoff(attempt).as_millis() as u64;
            assert!(d <= BACKOFF_CAP_MS, "attempt {attempt}: {d} over cap");
            let exp = attempt.saturating_sub(2).min(16);
            let full = BACKOFF_CAP_MS.min(BACKOFF_BASE_MS << exp);
            assert!(d >= full / 2, "attempt {attempt}: {d} below half of {full}");
        }
        // Deterministic per (pid, attempt).
        assert_eq!(backoff(3), backoff(3));
    }

    #[test]
    fn re_streamed_lines_must_match_exactly() {
        let mut slot = None;
        accept_exact(&mut slot, "{\"run\": 1}", "run").unwrap();
        assert!(accept_exact(&mut slot, "{\"run\": 1}", "run").is_ok());
        assert!(matches!(
            accept_exact(&mut slot, "{\"run\": 2}", "run"),
            Err(TryError::Fatal(_))
        ));
    }

    #[test]
    fn header_pins_run_count_across_attempts() {
        let mut c = Collected::default();
        let h = "{\"response\": \"sweep\", \"schema_version\": 5, \"run_count\": 2}";
        accept_header(&mut c, h, 2).unwrap();
        assert_eq!(c.runs.len(), 2);
        // Same header on a retried attempt: fine.
        accept_header(&mut c, h, 2).unwrap();
        // A different run_count is a protocol violation.
        assert!(accept_header(&mut c, h, 3).is_err());
        // Out-of-range run index is fatal, in-range lands in its slot.
        assert!(accept_run(&mut c, "{\"run\": {\"index\": 9}}", 9).is_err());
        accept_run(&mut c, "{\"run\": {\"index\": 1}}", 1).unwrap();
        assert!(c.runs[1].is_some() && c.runs[0].is_none());
    }

    #[test]
    fn connect_refusal_is_a_transient_error() {
        // Port 1 on localhost is essentially never listening; the
        // attempt must classify the refusal as retryable.
        let req = SubmitRequest::new("127.0.0.1:1", "{}");
        let mut c = Collected::default();
        match try_once(&req, &mut c) {
            Err(TryError::Retry(msg)) => assert!(msg.contains("connect")),
            Err(TryError::Fatal(msg)) => panic!("refusal classified fatal: {msg}"),
            Ok(_) => panic!("connect to a dead port succeeded"),
        }
    }
}
