//! **Ablation (section 3.2)**: why the paper chose mixed-clock FIFOs over
//! pausible/stretchable clocking.
//!
//! "Stretching the clock every cycle would lead to a situation where the
//! effective clock frequency is determined not by the clock generator but
//! by the rate of communication with other synchronous modules." We take
//! the measured inter-domain transfer rates from the FIFO-based GALS run
//! and ask what a pausible-clock implementation of the *same* machine
//! would do to each domain's effective frequency.

use gals_bench::{pct, run_gals, RUN_INSTS};
use gals_clocks::{ClockSpec, PausibleClockModel};
use gals_events::Time;
use gals_workload::Benchmark;

fn main() {
    println!("Ablation: pausible clocking vs mixed-clock FIFOs");
    println!();
    // A conservative handshake: arbitration + data transfer ~ 300 ps
    // against a 1 ns cycle.
    let model = PausibleClockModel::new(Time::from_ps(300));
    let clock = ClockSpec::from_ghz(1.0);
    println!(
        "{:<10} {:>14} {:>16} {:>16}",
        "bench", "xfers/cycle", "pausible slowdn", "fifo slowdn"
    );
    for bench in [Benchmark::Gcc, Benchmark::Fpppp, Benchmark::Ijpeg, Benchmark::Compress] {
        let gals = run_gals(bench, RUN_INSTS);
        // Transfers per average domain cycle (pushes+pops over 2, per the
        // five domains' mean cycle count).
        let cycles: u64 = gals.domain_cycles.iter().sum::<u64>() / 5;
        let per_cycle = gals.channel_ops as f64 / 2.0 / cycles as f64;
        let pausible = model.slowdown(clock, per_cycle);
        let base = gals_bench::run_base(bench, RUN_INSTS);
        let fifo = 1.0 / gals.relative_performance(&base);
        println!(
            "{:<10} {:>14.2} {:>15} {:>15}",
            bench.name(),
            per_cycle,
            pct(pausible - 1.0),
            pct(fifo - 1.0),
        );
    }
    println!();
    println!("with transactions nearly every cycle, pausible clocks stretch every");
    println!("cycle and the oscillator no longer sets the frequency — the FIFO");
    println!("design's slowdown is far smaller. (Paper section 3.2's argument.)");
}
