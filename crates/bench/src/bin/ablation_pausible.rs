//! **Ablation (section 3.2)**: why the paper chose mixed-clock FIFOs over
//! pausible/stretchable clocking — *measured*, not modelled.
//!
//! "Stretching the clock every cycle would lead to a situation where the
//! effective clock frequency is determined not by the clock generator but
//! by the rate of communication with other synchronous modules." Earlier
//! revisions of this binary only estimated that effect analytically from
//! FIFO transfer counts; now `Clocking::Pausible` is a simulated mode, so
//! the pausible machine runs head-to-head against the FIFO-GALS and
//! synchronous baselines on the same workloads, and the per-domain
//! effective frequencies below are measured from stretched clock edges.
//!
//! The analytic `PausibleClockModel` column is kept for comparison, fed
//! with *per-domain* transaction rates (stretch events over that domain's
//! own cycle count — not the old mean-of-all-domains estimate, which
//! skewed whenever cycle counts diverged).
//!
//! Pass an instruction budget as the first argument for a smoke run:
//! `cargo run --release --bin ablation_pausible -- 2000`.

use gals_bench::{pct, run_base, run_gals, run_pausible, run_rendezvous, BenchCli, RUN_INSTS};
use gals_clocks::{ClockSpec, Domain, PausibleClockModel};
use gals_events::Time;
use gals_workload::Benchmark;

fn main() {
    let cli = BenchCli::parse_or_exit("ablation_pausible [--budget N | N]");
    let insts = cli.budget_or(RUN_INSTS);
    println!("Ablation: pausible clocking vs mixed-clock FIFOs (measured, {insts} insts)");
    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>13} {:>14}",
        "bench", "fifo slowdn", "pausible slowdn", "rdv slowdn", "min eff freq", "stretches/inst"
    );
    for bench in [
        Benchmark::Gcc,
        Benchmark::Fpppp,
        Benchmark::Ijpeg,
        Benchmark::Compress,
    ] {
        let base = run_base(bench, insts);
        let gals = run_gals(bench, insts);
        let paus = run_pausible(bench, insts);
        // The rendezvous (unbuffered) pausible machine: latch capacity is
        // gone too, so producers block until the consumer pops — the
        // capacity cost of handshakes on top of their timing cost.
        let rdv = run_rendezvous(bench, insts);
        let fifo_slowdown = 1.0 / gals.relative_performance(&base);
        let paus_slowdown = 1.0 / paus.relative_performance(&base);
        let rdv_slowdown = 1.0 / rdv.relative_performance(&base);
        let min_ghz = Domain::ALL
            .iter()
            .map(|&d| paus.effective_ghz(d))
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:<10} {:>12} {:>15} {:>12} {:>10.3} GHz {:>14.2}",
            bench.name(),
            pct(fifo_slowdown - 1.0),
            pct(paus_slowdown - 1.0),
            pct(rdv_slowdown - 1.0),
            min_ghz,
            paus.total_stretches() as f64 / paus.committed as f64,
        );
        // Per-domain detail: the communication rate, not the oscillator,
        // sets each pausible clock's frequency. The analytic model is fed
        // the measured per-domain rate to show it tracks the simulation.
        let model = PausibleClockModel::new(Time::from_ps(300));
        let clock = ClockSpec::from_ghz(1.0); // run_pausible's nominal clock
        for d in Domain::ALL {
            let i = d.index();
            let rate = paus.stretches[i] as f64 / paus.domain_cycles[i] as f64;
            let measured_ghz = paus.effective_ghz(d);
            let modelled_ghz = 1e6 / model.effective_period(clock, rate).as_fs() as f64;
            println!(
                "    {:<8} {:>8.2} xfers/cycle   measured {:>6.3} GHz   modelled {:>6.3} GHz",
                format!("{d}"),
                rate,
                measured_ghz,
                modelled_ghz,
            );
        }
    }
    println!();
    println!("with transactions nearly every cycle, pausible clocks stretch nearly");
    println!("every cycle and the oscillator no longer sets the frequency — the");
    println!("FIFO design's measured slowdown is far smaller. The rdv column");
    println!("drops the latch capacity too (rendezvous ports: producers block");
    println!("until the consumer pops), charging the full cost of unbuffered");
    println!("handshakes. (Section 3.2, now a simulated result; see also the");
    println!("pausible and rendezvous tests in tests/end_to_end.rs.)");
}
