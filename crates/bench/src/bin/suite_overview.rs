//! Suite overview: every quantity Figures 5-10 are computed from, for all
//! twelve benchmarks in one table — the calibration/sanity view of the
//! whole reproduction (DESIGN.md §5).

use gals_bench::{mean, pct, run_base, run_gals, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!(
        "{:<10} {:>8} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6}",
        "bench",
        "baseIPC",
        "galsIPC",
        "perf",
        "slipB(ns)",
        "slipG(ns)",
        "fifo%",
        "misB",
        "misG",
        "E",
        "P",
        "bpred",
        "l1d",
        "l2"
    );
    let mut perfs = Vec::new();
    let mut energies = Vec::new();
    let mut powers = Vec::new();
    let mut slips = Vec::new();
    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let perf = gals.relative_performance(&base);
        let e = gals.relative_energy(&base);
        let p = gals.relative_power(&base);
        let slip_ratio = gals.mean_slip().as_fs() as f64 / base.mean_slip().as_fs() as f64;
        perfs.push(perf);
        energies.push(e);
        powers.push(p);
        slips.push(slip_ratio);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>7} {:>9.2} {:>9.2} {:>7} {:>7} {:>7} {:>7.3} {:>7.3} {:>6} {:>6} {:>6}",
            bench.name(),
            base.insts_per_ns(),
            gals.insts_per_ns(),
            pct(perf),
            base.mean_slip().as_ns_f64(),
            gals.mean_slip().as_ns_f64(),
            pct(gals.fifo_slip_fraction()),
            pct(base.misspeculation_rate()),
            pct(gals.misspeculation_rate()),
            e,
            p,
            pct(base.bpred.mispredict_rate()),
            pct(base.dcache.miss_rate()),
            pct(base.l2.miss_rate()),
        );
    }
    println!();
    println!("mean perf (gals/base):   {}", pct(mean(&perfs)));
    println!("mean slip ratio:         {:.2}x", mean(&slips));
    println!("mean energy (gals/base): {:.3}", mean(&energies));
    println!("mean power  (gals/base): {:.3}", mean(&powers));
}
