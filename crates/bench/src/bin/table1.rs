//! **Table 1**: trends in global clock skew for microprocessor designs
//! across process generations, plus the derived skew-budget fractions the
//! paper's clock-distribution argument (section 2.2) rests on.

use gals_power::skew::TABLE1;

fn main() {
    println!("Table 1: Trends in global clock skew across process generations");
    println!();
    println!(
        "{:<36} {:>10} {:>8} {:>10} {:>9} {:>8} {:>9}  Remarks",
        "Design", "Tech (um)", "Year", "Devices(M)", "Cycle(ps)", "Skew(ps)", "Skew/Cyc"
    );
    for row in TABLE1 {
        println!(
            "{:<36} {:>10.2} {:>8} {:>10.1} {:>9.0} {:>8.0} {:>8.1}%  {}",
            row.design,
            row.technology_um,
            row.year,
            row.devices_m,
            row.cycle_ps,
            row.skew_ps,
            row.skew_fraction() * 100.0,
            row.remarks,
        );
    }
    println!();
    let no_deskew = &TABLE1[4];
    println!(
        "The paper's observation: without active deskewing the Itanium's projected \
         skew is {:.1}% of the cycle time (\"almost 10%\"), and active deskewing \
         ({} -> {} ps) buys that margin back at a cost in die area and power.",
        no_deskew.skew_fraction() * 100.0,
        no_deskew.skew_ps,
        TABLE1[3].skew_ps,
    );
}
