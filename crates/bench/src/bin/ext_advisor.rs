//! **Extension experiment** (the paper's future-work direction):
//! profile-guided, per-application DVFS plans across the whole suite.
//!
//! For each benchmark: profile on the plain GALS machine, let the advisor
//! pick per-domain slowdowns, and compare the planned machine against both
//! the synchronous base and the unplanned GALS machine. The paper's
//! hand-picked plans (Figs 11-13) generalise: the advisor finds the idle
//! domains automatically and converts them into energy/power savings at
//! small incremental performance cost.

use gals_bench::{mean, pct, run_base, run_gals, RUN_INSTS, WORKLOAD_SEED};
use gals_clocks::Domain;
use gals_core::{simulate, DvfsAdvisor, ProcessorConfig, SimLimits};
use gals_workload::{generate, Benchmark};

fn main() {
    println!("Extension: advisor-planned per-application DVFS (vs synchronous base)");
    println!();
    println!(
        "{:<10} {:>22} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "bench", "plan (fe,de,int,fp,me)", "perf", "energy", "power", "dE(gals)", "dPerf"
    );
    let mut energies = Vec::new();
    let mut perfs = Vec::new();
    for bench in Benchmark::ALL {
        let program = generate(bench, WORKLOAD_SEED);
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let plan = DvfsAdvisor::new().recommend(&gals);
        let plan_str = Domain::ALL
            .iter()
            .map(|d| format!("{:.1}", plan.slowdown[d.index()]))
            .collect::<Vec<_>>()
            .join(",");
        let cfg = ProcessorConfig::gals_equal_1ghz(gals_bench::PHASE_SEED).with_dvfs(plan);
        let planned =
            simulate(&program, cfg, SimLimits::insts(RUN_INSTS)).expect("simulation failed");
        let perf = planned.relative_performance(&base);
        let energy = planned.relative_energy(&base);
        perfs.push(perf);
        energies.push(energy);
        println!(
            "{:<10} {:>22} {:>8} {:>8.3} {:>8.3} {:>9.3} {:>9}",
            bench.name(),
            plan_str,
            pct(perf),
            energy,
            planned.relative_power(&base),
            energy - gals.relative_energy(&base),
            pct(perf - gals.relative_performance(&base)),
        );
    }
    println!();
    println!(
        "suite averages: performance {}, energy {:.3} of base",
        pct(mean(&perfs)),
        mean(&energies)
    );
    println!("dE(gals)/dPerf columns show the *incremental* cost/benefit against the");
    println!("unplanned GALS machine: energy falls on every benchmark with an idle");
    println!("domain, at small additional performance cost — the paper's Figures");
    println!("11-13 hand-tuned plans, automated.");
}
