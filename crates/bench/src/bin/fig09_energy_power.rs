//! **Figure 9**: total energy and average power of the GALS processor,
//! normalised to the base processor.
//!
//! Paper shape: eliminating the global clock grid lowers *per-cycle power*
//! (~10% average), but the longer execution, the higher queue occupancies,
//! the extra (wrong-path) switching activity and the FIFOs mean *total
//! energy* is not necessarily lower — it is higher for some benchmarks
//! (+1% on the paper's average). "GALS designs are inherently less
//! efficient when compared to synchronous architectures."

use gals_bench::{mean, pct, run_base, run_gals, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 9: GALS energy and power normalised to base");
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "bench", "energy", "avg power", "perf"
    );
    let mut es = Vec::new();
    let mut ps = Vec::new();
    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let e = gals.relative_energy(&base);
        let p = gals.relative_power(&base);
        es.push(e);
        ps.push(p);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12}",
            bench.name(),
            e,
            p,
            pct(gals.relative_performance(&base))
        );
    }
    println!();
    println!(
        "averages: energy {:.3} (paper ~1.01), power {:.3} (paper ~0.90)",
        mean(&es),
        mean(&ps)
    );
    let higher = es.iter().filter(|&&e| e > 1.0).count();
    println!(
        "{higher} of {} benchmarks need MORE total energy on GALS — the paper's",
        es.len()
    );
    println!("headline negative result, reproduced.");
}
