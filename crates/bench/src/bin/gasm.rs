//! `gasm` — parse, verify and functionally execute `.gasm` programs.
//!
//! ```text
//! gasm [--seed N] [--fuel N] FILE...
//! ```
//!
//! For each file: parses the module, runs the functional executor, and
//! prints a one-line summary of the executed-trace statistics (dynamic
//! instruction count, op-class mix, branch bias, mean loop trip). Exits
//! non-zero on the first parse/verify/execution error, printing the typed
//! diagnostic with its line:column — this is the CI smoke gate over
//! `examples/programs/`.

use std::process::ExitCode;

use gals_isa::OpClass;

fn usage() -> ExitCode {
    eprintln!("usage: gasm [--seed N] [--fuel N] FILE...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seed: u64 = 0;
    let mut fuel: u64 = 8_000_000;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--fuel" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => fuel = v,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage();
    }

    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let module = match gals_isa::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{path}:{e}");
                return ExitCode::from(2);
            }
        };
        let execution = match module.execute(seed, fuel) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let s = &execution.stats;
        println!(
            "{path}: blocks={} static={} dyn={} br={:.4} taken={:.4} ld={:.4} st={:.4} \
             fp={:.4} mul={:.4} div={:.4} trip={:.2} depth={}",
            module.block_count(),
            module.static_inst_count(),
            s.executed,
            s.branch_frac(),
            s.taken_rate(),
            s.load_frac(),
            s.store_frac(),
            s.fp_frac(),
            s.int_mul_frac(),
            s.frac(OpClass::IntDiv),
            s.mean_trip(),
            s.max_call_depth,
        );
    }
    ExitCode::SUCCESS
}
