//! **Figure 6**: average slip — the time each committed instruction spends
//! between fetch and commit — in the base and GALS designs.
//!
//! Paper shape: slip increases for every benchmark in the GALS machine
//! (+65% on their average) because "the addition of asynchronous
//! communication channels leads to an increase in the effective length of
//! the pipeline".

use gals_bench::{mean, run_base, run_gals, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 6: average slip (fetch -> commit) per committed instruction");
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "bench", "base (ns)", "gals (ns)", "gals/base"
    );
    let mut ratios = Vec::new();
    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let ratio = gals.mean_slip().as_fs() as f64 / base.mean_slip().as_fs() as f64;
        ratios.push(ratio);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>9.2}x",
            bench.name(),
            base.mean_slip().as_ns_f64(),
            gals.mean_slip().as_ns_f64(),
            ratio
        );
    }
    println!();
    println!("average slip ratio: {:.2}x", mean(&ratios));
    println!();
    println!("paper: +65% average. Direction reproduced on every benchmark; the");
    println!("magnitude is smaller here because this model's slip is dominated by");
    println!("issue-queue/memory waiting, which the FIFO crossings do not lengthen");
    println!("(see EXPERIMENTS.md, deviation D2).");
}
