//! **Figure 10**: breakdown of energy into macro blocks, base vs GALS
//! (suite average, normalised to the base total).
//!
//! Paper shape: "power gains arising from elimination of the global clock
//! are offset by the increased power consumption of other blocks" — the
//! global-clock slice disappears but every other slice grows slightly
//! (longer runtime, more activity) and the FIFO slice is new.

use gals_bench::{run_base, run_gals, RUN_INSTS};
use gals_clocks::Domain;
use gals_power::MacroBlock;
use gals_workload::Benchmark;

fn main() {
    println!("Figure 10: energy breakdown by macro block (suite average, base total = 1)");
    println!();

    let mut base_blocks = [0.0f64; MacroBlock::ALL.len()];
    let mut gals_blocks = [0.0f64; MacroBlock::ALL.len()];
    let mut base_clk = [0.0f64; 6]; // [global, five locals]
    let mut gals_clk = [0.0f64; 6];
    let n = Benchmark::ALL.len() as f64;

    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let total_b = base.total_energy();
        for blk in MacroBlock::ALL {
            base_blocks[blk.index()] += base.energy.block(blk) / total_b / n;
            gals_blocks[blk.index()] += gals.energy.block(blk) / total_b / n;
        }
        base_clk[0] += base.energy.global_clock / total_b / n;
        gals_clk[0] += gals.energy.global_clock / total_b / n;
        for d in Domain::ALL {
            base_clk[1 + d.index()] += base.energy.local_clocks[d.index()] / total_b / n;
            gals_clk[1 + d.index()] += gals.energy.local_clocks[d.index()] / total_b / n;
        }
    }

    println!("{:<24} {:>10} {:>10}", "block", "base", "gals");
    println!(
        "{:<24} {:>10.4} {:>10.4}",
        "Global clock", base_clk[0], gals_clk[0]
    );
    for d in Domain::ALL {
        println!(
            "{:<24} {:>10.4} {:>10.4}",
            format!("{} clock", d),
            base_clk[1 + d.index()],
            gals_clk[1 + d.index()]
        );
    }
    for blk in MacroBlock::ALL {
        println!(
            "{:<24} {:>10.4} {:>10.4}",
            blk.to_string(),
            base_blocks[blk.index()],
            gals_blocks[blk.index()]
        );
    }
    let tb: f64 = base_blocks.iter().sum::<f64>() + base_clk.iter().sum::<f64>();
    let tg: f64 = gals_blocks.iter().sum::<f64>() + gals_clk.iter().sum::<f64>();
    println!("{:<24} {:>10.4} {:>10.4}", "TOTAL", tb, tg);
    println!();
    println!("the global-clock slice vanishes in GALS; runtime stretch, extra");
    println!("activity and the new FIFO slice claw most of it back.");
}
