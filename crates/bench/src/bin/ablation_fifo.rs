//! **Ablation (design choices)**: sensitivity of the GALS result to the
//! two FIFO design parameters DESIGN.md calls out — the synchronisation
//! depth of the empty/full flags and the FIFO capacity.
//!
//! The Chelcea-Nowick FIFO is "low latency when compared to other methods
//! we tested"; this sweep quantifies how much that latency matters, and
//! shows capacity only matters once it is small enough to throttle the
//! front end.

use gals_bench::{pct, run_base, RUN_INSTS, WORKLOAD_SEED};
use gals_core::{simulate, ProcessorConfig, SimLimits};
use gals_workload::{generate, Benchmark};

fn main() {
    let bench = Benchmark::Gcc;
    let program = generate(bench, WORKLOAD_SEED);
    let limits = SimLimits::insts(RUN_INSTS);
    let base = run_base(bench, RUN_INSTS);

    println!("Ablation: FIFO synchronisation depth (gcc, equal 1 GHz clocks)");
    println!();
    println!("{:>12} {:>12} {:>10}", "sync depth", "perf", "energy");
    for sync in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let mut cfg = ProcessorConfig::gals_equal_1ghz(gals_bench::PHASE_SEED);
        cfg.fifo_sync_periods = sync;
        let r = simulate(&program, cfg, limits).expect("simulation failed");
        println!(
            "{:>11}T {:>12} {:>10.3}",
            sync,
            pct(r.relative_performance(&base)),
            r.relative_energy(&base)
        );
    }
    println!();
    println!("Ablation: FIFO capacity");
    println!();
    println!("{:>12} {:>12} {:>10}", "capacity", "perf", "energy");
    for cap in [2usize, 4, 8, 12, 24] {
        let mut cfg = ProcessorConfig::gals_equal_1ghz(gals_bench::PHASE_SEED);
        cfg.channel_capacity = cap;
        let r = simulate(&program, cfg, limits).expect("simulation failed");
        println!(
            "{:>12} {:>12} {:>10.3}",
            cap,
            pct(r.relative_performance(&base)),
            r.relative_energy(&base)
        );
    }
    println!();
    println!("deeper synchronisers cost performance almost linearly; capacity");
    println!("stops mattering once the FIFO covers the crossing's bandwidth-delay");
    println!("product — supporting the paper's choice of a low-latency FIFO.");
}
