//! **Figure 5**: performance of the GALS model relative to the base model,
//! with all five local clocks at the base frequency (random phases).
//!
//! Paper shape: every benchmark slows down, the drop ranges 5-15% with a
//! ~10% average, and *fpppp* — one branch per 67 instructions — takes the
//! smallest hit among the compute-bound benchmarks.

use gals_bench::{mean, pct, run_base, run_gals, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 5: GALS performance relative to base (equal 1 GHz clocks)");
    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "bench", "base i/ns", "gals i/ns", "gals/base"
    );
    let mut ratios = Vec::new();
    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let r = gals.relative_performance(&base);
        ratios.push(r);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>12}",
            bench.name(),
            base.insts_per_ns(),
            gals.insts_per_ns(),
            pct(r)
        );
    }
    println!();
    println!("average relative performance: {}", pct(mean(&ratios)));
    println!(
        "slowdown range: {} .. {}",
        pct(1.0 - ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
        pct(1.0 - ratios.iter().cloned().fold(f64::INFINITY, f64::min))
    );
    println!();
    println!("paper: slowdown 5-15%, average ~10%; fpppp smallest hit among");
    println!("compute-bound benchmarks (memory-bound codes hide the FIFO latency).");
}
