//! **Figure 7**: relative slip — how much of each instruction's
//! fetch-to-commit latency is spent *inside the mixed-clock FIFOs* versus
//! in the pipeline proper (issue queues, execution, caches).
//!
//! Paper shape: part of the GALS slip increase is direct FIFO residency,
//! but "there is still an increase in the slip which cannot be accounted
//! for by the time spent in FIFOs alone; this is caused by the latency in
//! forwarding results from one queue to another through FIFOs".

use gals_bench::{pct, run_base, run_gals, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 7: slip decomposition, channel (FIFO) share vs pipeline share");
    println!();
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>14}",
        "bench", "base FIFO%", "gals FIFO%", "d_slip(ns)", "d_fifo(ns)", "unaccounted"
    );
    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        let slip_b = base.mean_slip().as_ns_f64();
        let slip_g = gals.mean_slip().as_ns_f64();
        let fifo_b = slip_b * base.fifo_slip_fraction();
        let fifo_g = slip_g * gals.fifo_slip_fraction();
        let d_slip = slip_g - slip_b;
        let d_fifo = fifo_g - fifo_b;
        println!(
            "{:<10} {:>11} {:>11} {:>11.2} {:>11.2} {:>13.2}",
            bench.name(),
            pct(base.fifo_slip_fraction()),
            pct(gals.fifo_slip_fraction()),
            d_slip,
            d_fifo,
            d_slip - d_fifo,
        );
    }
    println!();
    println!("'unaccounted' is the slip growth NOT explained by direct FIFO");
    println!("residency. The paper finds it positive (forwarding latency); here it");
    println!("is near zero or negative for most benchmarks because slower supply");
    println!("shortens queue waits (EXPERIMENTS.md, deviation D2).");
}
