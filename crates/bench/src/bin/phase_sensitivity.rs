//! **Section 5.1 (text)**: sensitivity of GALS performance to the relative
//! phases of the five local clocks.
//!
//! Paper: "the performance of the GALS processor varies with the relative
//! phase of the various clocks, especially in the case where all the
//! clocks are of the same frequency. This variation is of the order of
//! 0.5%."

use gals_core::{simulate, ProcessorConfig, SimLimits};
use gals_workload::{generate, Benchmark};

fn main() {
    println!("Phase sensitivity: GALS (equal clocks) across random phase seeds");
    println!();
    let program = generate(Benchmark::Gcc, gals_bench::WORKLOAD_SEED);
    let limits = SimLimits::insts(gals_bench::RUN_INSTS);
    let mut rates = Vec::new();
    println!("{:>6} {:>12}", "seed", "insts/ns");
    for seed in 1..=10u64 {
        let cfg = ProcessorConfig::gals_equal_1ghz(seed);
        let r = simulate(&program, cfg, limits).expect("simulation failed");
        println!("{:>6} {:>12.4}", seed, r.insts_per_ns());
        rates.push(r.insts_per_ns());
    }
    let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let mid = 0.5 * (max + min);
    println!();
    println!(
        "spread: {:.4} .. {:.4} insts/ns  => +/-{:.2}% about the midpoint",
        min,
        max,
        100.0 * (max - min) / (2.0 * mid)
    );
    println!("paper: variation on the order of 0.5%.");
}
