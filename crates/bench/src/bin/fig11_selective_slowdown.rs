//! **Figure 11**: generic (application-blind) selective clock slowdown on
//! three benchmarks — fetch and memory clocks 10% slower, FP clock 50%
//! slower, supplies scaled to match — plus the *perl* case from the text
//! (FP clock slowed 3x).
//!
//! Paper shape: "the energy and power benefits are decent but performance
//! losses are substantial (about 18%)... we can apply clock slowdown only
//! on a selective basis, after studying the application's characteristics."
//! For perl (virtually no FP work): FP/3 costs ~9% performance and buys
//! ~10.8% energy / ~18% power.

use gals_bench::{mean, pct, plan, run_base, run_gals_dvfs, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 11: generic slowdown (fetch 1.1x, mem 1.1x, FP 1.5x) vs base");
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "bench", "performance", "energy", "power"
    );
    let generic = [1.1, 1.0, 1.0, 1.5, 1.1];
    let mut perfs = Vec::new();
    for bench in [Benchmark::Perl, Benchmark::Ijpeg, Benchmark::Gcc] {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals_dvfs(bench, RUN_INSTS, plan(generic));
        perfs.push(gals.relative_performance(&base));
        println!(
            "{:<10} {:>12} {:>12.3} {:>12.3}",
            bench.name(),
            pct(gals.relative_performance(&base)),
            gals.relative_energy(&base),
            gals.relative_power(&base),
        );
    }
    println!();
    println!(
        "mean performance {} (paper: ~ -18%): blind slowdown costs real speed.",
        pct(mean(&perfs))
    );

    println!();
    println!("perl with only the FP clock slowed 3x (text, section 5.2):");
    let base = run_base(Benchmark::Perl, RUN_INSTS);
    let g = run_gals_dvfs(Benchmark::Perl, RUN_INSTS, plan([1.0, 1.0, 1.0, 3.0, 1.0]));
    println!(
        "  performance {}   energy {:.3}   power {:.3}",
        pct(g.relative_performance(&base)),
        g.relative_energy(&base),
        g.relative_power(&base),
    );
    println!("  (paper: perf -9%, energy -10.8%, power -18%)");
}
