//! **Tables 2 and 3**: the pipeline-stage-to-domain mapping and the
//! microarchitecture configuration of the simulated processors, printed
//! from the same structures the simulator actually runs.

use gals_uarch::UarchConfig;

fn main() {
    println!("Table 2: Pipeline stages and the GALS clock domains involved");
    println!();
    let stages = [
        ("1", "Fetch from I-cache", "1"),
        ("2", "Decode", "2"),
        ("3", "Register rename, regfile read", "2"),
        ("4", "Dispatch into issue queue", "2, 3/4/5"),
        ("5", "Issue to functional unit", "3/4/5"),
        ("6", "Execute", "3/4/5"),
        ("7", "Wakeup, writeback", "3/4/5"),
        ("8", "Regfile write, commit", "3/4/5, 2"),
    ];
    println!("{:<6} {:<34} Domains", "Stage", "Operation");
    for (n, op, d) in stages {
        println!("{:<6} {:<34} {}", n, op, d);
    }

    let c = UarchConfig::default();
    println!();
    println!("Table 3: Microarchitecture details (simulator defaults)");
    println!();
    println!("Fetch and decode rate        {} inst/cycle", c.fetch_width);
    println!("Integer issue queue size     {}", c.int_iq_size);
    println!("FP issue queue size          {}", c.fp_iq_size);
    println!("Memory issue queue size      {}", c.mem_iq_size);
    println!("Integer registers            {}", c.int_phys_regs);
    println!("FP registers                 {}", c.fp_phys_regs);
    println!(
        "L1 data cache                {}KB {}-way, {} cycle latency",
        c.l1d.size_bytes / 1024,
        c.l1d.ways,
        c.l1d.latency
    );
    println!(
        "L1 instruction cache         {}KB {}, {} cycle latency",
        c.l1i.size_bytes / 1024,
        if c.l1i.ways == 1 {
            "direct-mapped".to_string()
        } else {
            format!("{}-way", c.l1i.ways)
        },
        c.l1i.latency
    );
    println!(
        "L2 unified cache             {}KB {}-way, {} cycles latency",
        c.l2.size_bytes / 1024,
        c.l2.ways,
        c.l2.latency
    );
    println!(
        "ALUs                         {} integer, {} FP",
        c.int_alus, c.fp_alus
    );
    println!();
    println!("Additional simulator parameters not listed in the paper's table:");
    println!("Reorder buffer               {} entries", c.rob_size);
    println!("Branch checkpoints           {}", c.max_branches);
    println!("D-cache ports                {}", c.mem_ports);
    println!("Main memory latency          {} cycles", c.mem_latency);
    println!(
        "Branch predictor             gshare {} entries / {} history bits, BTB {}, RAS {}",
        c.bpred.pht_entries, c.bpred.history_bits, c.bpred.btb_entries, c.bpred.ras_depth
    );
    println!(
        "Store buffer                 {} entries",
        c.store_buffer_size
    );
}
