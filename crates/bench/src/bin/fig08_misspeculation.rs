//! **Figure 8**: percentage of mis-speculated (wrong-path, later squashed)
//! instructions among all speculatively executed instructions, base vs
//! GALS; plus the occupancy statistics the paper quotes alongside it.
//!
//! Paper shape: speculation rises in GALS — integer apps go from 13.8% to
//! 16.7% on their average — because the longer recovery pipeline lets more
//! wrong-path instructions enter; in-flight counts and rename-table
//! occupancies rise too ("the integer register allocation table occupancy
//! went up from 15 in base to 24 in GALS for the ijpeg benchmark").

use gals_bench::{mean, pct, run_base, run_gals, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 8: mis-speculated instructions, base vs GALS");
    println!();
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "bench", "base", "gals", "rob(base)", "rob(gals)", "rat(b)", "rat(g)"
    );
    let mut int_base = Vec::new();
    let mut int_gals = Vec::new();
    for bench in Benchmark::ALL {
        let base = run_base(bench, RUN_INSTS);
        let gals = run_gals(bench, RUN_INSTS);
        if bench.is_integer() {
            int_base.push(base.misspeculation_rate());
            int_gals.push(gals.misspeculation_rate());
        }
        println!(
            "{:<10} {:>9} {:>9} {:>10.1} {:>10.1} {:>9.1} {:>9.1}",
            bench.name(),
            pct(base.misspeculation_rate()),
            pct(gals.misspeculation_rate()),
            base.rob_mean_occupancy,
            gals.rob_mean_occupancy,
            base.rat_mean_occupancy,
            gals.rat_mean_occupancy,
        );
    }
    println!();
    println!(
        "integer-suite average: base {} -> gals {}   (paper: 13.8% -> 16.7%)",
        pct(mean(&int_base)),
        pct(mean(&int_gals))
    );
    println!("in-flight (ROB) and rename-table occupancies rise in GALS for the");
    println!("speculation-bound benchmarks, as the paper reports.");
}
