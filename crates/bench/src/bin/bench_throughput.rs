//! Host-throughput tracker: measures simulated instructions per host
//! second on both scheduler paths (the static `ClockSet` fast path of
//! `simulate` and the general-engine oracle `simulate_with_engine`) and
//! writes the results to `BENCH_throughput.json` so the perf trajectory is
//! recorded across PRs.
//!
//! ```text
//! cargo run --release --bin bench_throughput -- \
//!     [--budget N | N] [--out PATH] [--baseline PATH] [--tolerance F]
//! ```
//!
//! * `--budget N` — committed instructions per measured run. A non-default
//!   budget is a smoke/CI run: the checked-in `BENCH_throughput.json`
//!   baseline is **not** overwritten (pass `--out` to capture the fresh
//!   numbers elsewhere, e.g. as a CI artifact).
//! * `--baseline PATH` — the CI perf-regression gate: compare this run's
//!   **mean scheduler speedup** (ClockSet over engine, a same-host ratio
//!   that transfers across machines — absolute insts/s do not) against the
//!   `mean_scheduler_speedup` recorded in the baseline JSON. Exits with
//!   code 1 when the ratio regressed by more than the tolerance (default
//!   15%). Absolute per-configuration insts/s are reported for context but
//!   never gate: CI hosts are not the machine that recorded the baseline.
//! * `--tolerance F` — gate tolerance as a fraction (default `0.15`).

use std::fmt::Write as _;
use std::time::Instant;

use gals_bench::{exit_code, extract_json_numbers, write_atomic, BenchCli};
use gals_core::{simulate, simulate_with_engine, ProcessorConfig, SimLimits};
use gals_workload::{generate, Benchmark};

/// Committed-instruction budget per measured run.
const INSTS: u64 = 50_000;
/// Measured repetitions (the best run is reported, minimising host noise).
const REPS: u32 = 5;

const USAGE: &str =
    "bench_throughput [--budget N | N] [--out PATH] [--baseline PATH] [--tolerance F]";

/// The seed engine-driven baseline, measured once on this hardware by
/// rebuilding the seed sources (commit e8afc34, which predates `ClockSet`
/// and the zero-allocation pipeline) with this workspace's manifests and
/// release profile, then running the same 50k-instruction workloads
/// best-of-REPS. Order matches the measurement loop below:
/// (gcc,sync) (gcc,gals) (fpppp,sync) (fpppp,gals).
const SEED_BASELINE_IPS: [f64; 4] = [742_040.0, 613_159.0, 1_120_988.0, 968_853.0];

struct Row {
    bench: &'static str,
    clocking: &'static str,
    clockset_ips: f64,
    engine_ips: f64,
    seed_ips: f64,
}

fn best_insts_per_sec(mut run: impl FnMut() -> u64) -> f64 {
    // One warm-up, then the fastest of REPS timed runs.
    run();
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let start = Instant::now();
        let committed = run();
        let secs = start.elapsed().as_secs_f64();
        best = best.max(committed as f64 / secs);
    }
    best
}

/// The perf-regression gate: compares the measured mean scheduler speedup
/// against the baseline file's. Returns the process exit code.
fn gate_against_baseline(path: &std::path::Path, mean_speedup: f64, tolerance: f64) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("perf gate: cannot read baseline {}: {e}", path.display());
            return exit_code::USAGE;
        }
    };
    let Some(&baseline) = extract_json_numbers(&json, "mean_scheduler_speedup").first() else {
        eprintln!(
            "perf gate: no mean_scheduler_speedup in {} (not a bench_throughput report?)",
            path.display()
        );
        return exit_code::USAGE;
    };
    let floor = baseline * (1.0 - tolerance);
    println!(
        "perf gate: mean scheduler speedup {mean_speedup:.3}x vs baseline {baseline:.3}x \
         (floor {floor:.3}x at {:.0}% tolerance)",
        tolerance * 100.0
    );
    if mean_speedup < floor {
        eprintln!(
            "perf gate FAILED: scheduler fast path regressed {:.1}% (allowed {:.0}%)",
            (1.0 - mean_speedup / baseline) * 100.0,
            tolerance * 100.0
        );
        exit_code::REGRESSION
    } else {
        println!("perf gate passed");
        exit_code::OK
    }
}

fn main() {
    let cli = BenchCli::parse_or_exit(USAGE);
    let insts = cli.budget_or(INSTS);
    let smoke = insts != INSTS;
    let mut rows = Vec::new();
    for bench in [Benchmark::Gcc, Benchmark::Fpppp] {
        let program = generate(bench, 42);
        for (clocking, cfg) in [
            ("sync", ProcessorConfig::synchronous_1ghz()),
            ("gals", ProcessorConfig::gals_equal_1ghz(1)),
        ] {
            let limits = SimLimits::insts(insts);
            let fast = {
                let cfg = cfg.clone();
                let program = &program;
                best_insts_per_sec(move || {
                    simulate(program, cfg.clone(), limits)
                        .expect("simulation failed")
                        .committed
                })
            };
            let oracle = {
                let program = &program;
                best_insts_per_sec(move || {
                    simulate_with_engine(program, cfg.clone(), limits)
                        .expect("simulation failed")
                        .committed
                })
            };
            let seed_ips = SEED_BASELINE_IPS[rows.len()];
            println!(
                "{:<8} {:<6} clockset {:>12.0} insts/s   engine {:>12.0} insts/s   \
                 vs engine {:>5.2}x   vs seed {:>5.2}x",
                bench.name(),
                clocking,
                fast,
                oracle,
                fast / oracle,
                fast / seed_ips
            );
            rows.push(Row {
                bench: bench.name(),
                clocking,
                clockset_ips: fast,
                engine_ips: oracle,
                seed_ips,
            });
        }
    }

    let mean_speedup: f64 = rows
        .iter()
        .map(|r| r.clockset_ips / r.engine_ips)
        .sum::<f64>()
        / rows.len() as f64;
    let mean_vs_seed: f64 = rows
        .iter()
        .map(|r| r.clockset_ips / r.seed_ips)
        .sum::<f64>()
        / rows.len() as f64;
    println!("mean clockset/engine speedup: {mean_speedup:.2}x");
    println!("mean speedup vs seed baseline: {mean_vs_seed:.2}x");

    // Hand-rolled JSON (the workspace carries no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"insts_per_run\": {insts},");
    let _ = writeln!(json, "  \"mean_scheduler_speedup\": {mean_speedup:.3},");
    let _ = writeln!(json, "  \"mean_speedup_vs_seed\": {mean_vs_seed:.3},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"bench\": \"{}\", \"clocking\": \"{}\", \
             \"clockset_insts_per_sec\": {:.0}, \"engine_insts_per_sec\": {:.0}, \
             \"seed_engine_insts_per_sec\": {:.0}}}{comma}",
            r.bench, r.clocking, r.clockset_ips, r.engine_ips, r.seed_ips
        );
    }
    json.push_str("  ]\n}\n");

    if let Some(out) = &cli.out {
        write_atomic(out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
        println!("wrote {}", out.display());
    }
    if smoke {
        // A non-default budget is a smoke/CI run: the seed comparison and
        // the recorded trajectory are only meaningful at the full budget.
        println!("smoke budget {insts}: not touching BENCH_throughput.json");
    } else if cli.out.is_none() {
        // Atomic (tmp + rename): this is the checked-in baseline the CI
        // perf gate reads — it must never be observable half-written.
        write_atomic(std::path::Path::new("BENCH_throughput.json"), &json)
            .expect("write BENCH_throughput.json");
        println!("wrote BENCH_throughput.json");
    }

    if let Some(baseline) = &cli.baseline {
        std::process::exit(gate_against_baseline(baseline, mean_speedup, cli.tolerance));
    }
}
