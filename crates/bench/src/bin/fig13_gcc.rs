//! **Figure 13**: impact of selective fetch and FP clock slowdown on *gcc*.
//! The fetch clock is slowed 10% (gcc's instruction bandwidth demand is
//! low); the FP clock is slowed 2x (gals-1) and 3x (gals-2). The "ideal"
//! column is the base machine uniformly slowed to the same performance.
//!
//! Paper shape: "gcc can afford to have a slower floating point unit
//! without too much performance hit. Given scaleable voltage supplies, this
//! technique also provides energy savings of 11% and power savings of 21%
//! with a performance loss of 13%" — and GALS *beats* the ideal column,
//! i.e. the per-domain knob is the right one for gcc.

use gals_bench::{pct, plan, run_base, run_base_scaled, run_gals_dvfs, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 13: gcc under fetch 1.1x and FP-clock slowdown");
    println!();
    let base = run_base(Benchmark::Gcc, RUN_INSTS);
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "config", "performance", "energy", "ideal", "power"
    );
    for (label, fp) in [("gals-1", 2.0), ("gals-2", 3.0)] {
        let gals = run_gals_dvfs(Benchmark::Gcc, RUN_INSTS, plan([1.1, 1.0, 1.0, fp, 1.0]));
        let perf = gals.relative_performance(&base);
        let ideal = run_base_scaled(Benchmark::Gcc, RUN_INSTS, 1.0 / perf);
        println!(
            "{:<10} {:>12} {:>10.3} {:>10.3} {:>10.3}",
            label,
            pct(perf),
            gals.relative_energy(&base),
            ideal.relative_energy(&base),
            gals.relative_power(&base),
        );
    }
    println!();
    println!("paper (gals-2): perf -13%, energy -11%, power -21%; GALS energy is");
    println!("at or below the ideal column — slowing the unused FP domain is a");
    println!("good tradeoff, unlike Figure 12's memory-clock sweep on ijpeg.");
}
