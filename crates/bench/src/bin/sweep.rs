//! The parallel scenario-sweep driver: runs the default paper matrix of
//! the `gals-sweep` crate — benchmark × clocking mode × pausible handshake
//! duration × DVFS point × phase seed — across a worker pool and writes the
//! schema-versioned `SWEEP_results.json` report.
//!
//! ```text
//! cargo run --release --bin sweep -- [--budget N] [--threads N] [--out PATH]
//!     [--matrix FILE]
//! ```
//!
//! * `--budget N` — committed instructions per run (default 60 000; CI
//!   smokes with `--budget 2000`). With `--matrix`, overrides the file's
//!   `budget` field.
//! * `--matrix FILE` — load a user-defined matrix from a JSON file (see
//!   `gals_sweep::SweepMatrix::from_json` for the format) instead of the
//!   in-code default. An unreadable or invalid file prints the problem to
//!   stderr and exits with the uniform usage code (2).
//! * `--threads N` — worker threads (default: host parallelism). The
//!   report is **bit-identical for every thread count** (pinned by
//!   `crates/sweep/tests/sweep_determinism.rs`).
//! * `--out PATH` — report path (default `SWEEP_results.json`). The
//!   report is gitignored: unlike `BENCH_throughput.json` it is not a
//!   checked-in comparison baseline, so runs at any budget are free to
//!   (re)write it — CI uploads its smoke report as a workflow artifact.
//!
//! See the `gals-sweep` crate docs for the matrix format and the full JSON
//! schema, and `gals_sweep::SweepMatrix::paper_default` for what the
//! default matrix covers (the section-3.2 handshake sweep, the DVFS
//! energy/performance points, and the wakeup filter/coalescing ablations).

use std::time::Instant;

use gals_bench::{exit_code, BenchCli};
use gals_sweep::{run_sweep, SweepMatrix};

/// Default committed-instruction budget per run. Smaller than the figure
/// binaries' 120k: the default matrix runs 116 configurations (since the
/// latched-vs-rendezvous axis joined), and the derived tables converge
/// well before that.
const SWEEP_INSTS: u64 = 60_000;

const USAGE: &str = "sweep [--budget N | N] [--threads N] [--out PATH] [--matrix FILE]";

fn main() {
    let cli = BenchCli::parse_or_exit(USAGE);
    let threads = cli.threads_or_available();
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("SWEEP_results.json"));

    let matrix = match &cli.matrix {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read matrix file {}: {e}", path.display());
                eprintln!("usage: {USAGE}");
                std::process::exit(exit_code::USAGE);
            });
            let mut matrix = SweepMatrix::from_json(&text, SWEEP_INSTS).unwrap_or_else(|e| {
                eprintln!("error: {} is not a valid matrix file: {e}", path.display());
                eprintln!("usage: {USAGE}");
                std::process::exit(exit_code::USAGE);
            });
            // The command line wins over the file's budget.
            if let Some(budget) = cli.budget {
                matrix.budget = budget;
            }
            matrix
        }
        None => SweepMatrix::paper_default(cli.budget_or(SWEEP_INSTS)),
    };
    let budget = matrix.budget;
    let specs = matrix.expand();
    println!(
        "sweep: {} runs ({} benchmarks x {} modes x {} DVFS points x {} seeds, \
         budget {budget}) on {threads} threads",
        specs.len(),
        matrix.benchmarks.len(),
        matrix.modes.len(),
        matrix.dvfs.len(),
        matrix.phase_seeds.len(),
    );

    let start = Instant::now();
    let results = run_sweep(&matrix, threads);
    let elapsed = start.elapsed();
    let simulated: u64 = results.runs.iter().map(|r| r.committed).sum();
    println!(
        "sweep: {} runs ({simulated} insts) in {:.2}s ({:.0} insts/s aggregate)",
        results.runs.len(),
        elapsed.as_secs_f64(),
        simulated as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    let json = results.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {} ({} bytes)", out.display(), json.len());
    std::process::exit(exit_code::OK);
}
