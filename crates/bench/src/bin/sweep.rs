//! The parallel scenario-sweep driver: runs the default paper matrix of
//! the `gals-sweep` crate — benchmark × clocking mode × pausible handshake
//! duration × DVFS point × phase seed — across a worker pool and writes the
//! schema-versioned `SWEEP_results.json` report.
//!
//! ```text
//! cargo run --release --bin sweep -- [--budget N] [--threads N] [--out PATH]
//!     [--matrix FILE | --check FILE | --serve ADDR] [--journal PATH [--resume]]
//!     [--retries N] [--run-timeout-ms N] [--cache DIR [--cache-cap N]]
//! ```
//!
//! * `--budget N` — committed instructions per run (default 60 000; CI
//!   smokes with `--budget 2000`). With `--matrix`, overrides the file's
//!   `budget` field.
//! * `--matrix FILE` — load a user-defined matrix from a JSON file (see
//!   `gals_sweep::SweepMatrix::from_json` for the format) instead of the
//!   in-code default. An unreadable or invalid file prints the problem to
//!   stderr and exits with the uniform usage code (2).
//! * `--check FILE` — **run nothing**: expand the matrix file and run
//!   the static pre-flight analyzer (`gals-analysis`) over every point,
//!   printing a per-point finding table. Exits 4 (`exit_code::ANALYSIS`)
//!   on any warning-or-worse finding, 0 on a clean matrix; combining
//!   `--check` with `--matrix` is a usage error. The chaos flags compose:
//!   `--check M --chaos-wedge I` vets the *faulted* runs, so a wedge the
//!   runtime watchdog would deadlock on is flagged GA002 statically.
//! * `--threads N` — worker threads (default: host parallelism). The
//!   report is **bit-identical for every thread count** (pinned by
//!   `crates/sweep/tests/sweep_determinism.rs`).
//! * `--out PATH` — report path (default `SWEEP_results.json`), written
//!   atomically (tmp + rename). The report is gitignored: unlike
//!   `BENCH_throughput.json` it is not a checked-in comparison baseline,
//!   so runs at any budget are free to (re)write it — CI uploads its smoke
//!   report as a workflow artifact.
//!
//! ## Fault tolerance
//!
//! Every matrix point runs isolated on its own thread under a wall-clock
//! watchdog: a point that panics, deadlocks, or stalls is recorded with a
//! structured `status` (`panicked` / `deadlocked` / `timed_out`) while the
//! rest of the sweep completes bit-identically. Any failed point turns the
//! exit code into 3 (`exit_code::FAILED_RUNS`) after the report is
//! written.
//!
//! * `--journal PATH` — write-ahead JSONL journal: one line per completed
//!   run, appended atomically, so a killed sweep loses at most the line
//!   being written.
//! * `--resume` — replay the journal and re-run only failed or missing
//!   points. The journal records the matrix identity hash; resuming
//!   against a different matrix is a loud error, while execution-policy
//!   changes (`--retries`, `--run-timeout-ms`, `--threads`) are fine.
//! * `--retries N` — extra in-process attempts per failed point
//!   (overrides the matrix file's `retries`; default 0).
//! * `--run-timeout-ms N` — per-run deadline (overrides the matrix file's
//!   `run_timeout_ms`; default 60 s + 1 ms per budgeted instruction).
//! * `--chaos-panic I[,J..]` / `--chaos-wedge I[,J..]` /
//!   `--chaos-stall I:MS` — deterministic fault injection at the given
//!   matrix indices, for exercising the failure path end-to-end (the CI
//!   chaos smoke job). Only available when built with `--features chaos`;
//!   a plain build rejects them with a pointer to the feature.
//!
//! ## Cache & serve
//!
//! * `--cache DIR` — content-addressed result cache: each successful run
//!   is stored under its `RunKey` (a stable content hash of everything
//!   that determines its output) and looked up before simulating, so a
//!   warm rerun of an unchanged matrix simulates nothing and a sweep
//!   sharing points with any previous one simulates only the novel ones.
//!   The report stays bit-identical either way. A `cache:` summary line
//!   reports hits/misses (CI pins it). `--cache-cap N` bounds the blob
//!   count with deterministic eviction.
//! * `--serve ADDR` — **run no sweep**: bind `ADDR` (e.g.
//!   `127.0.0.1:4601`) and answer newline-delimited JSON sweep requests
//!   until a `{"request": "shutdown"}` arrives — concurrently, one
//!   handler thread per client, all sharing one worker pool and one
//!   cache. `--max-clients N` / `--max-pending-runs N` bound admission
//!   (excess work is shed with retryable in-band errors); shutdown
//!   drains in-flight responses to their `done` trailers before exiting.
//!   Incompatible with `--matrix`/`--check`/`--journal` and the chaos
//!   run-fault flags; see `gals_sweep::SweepServer` and
//!   docs/SWEEP_FORMAT.md §"Cache & serve" for the framing. A
//!   `--features chaos` build additionally accepts
//!   `--chaos-drop-after N [--chaos-drop-times C]` — hard-close C sweep
//!   response streams after N `run` lines, for exercising client retry.
//! * `--submit ADDR` — **simulate nothing locally**: frame the
//!   `--matrix` file as one request to the server at `ADDR`, stream the
//!   response payload (header, `run` lines, `tables` line) to `--out`
//!   or stdout, and retry with capped exponential backoff on connect
//!   failure, admission shedding, or a mid-stream disconnect
//!   (`--submit-retries N` attempts, default 5). `--deadline-ms N`
//!   forwards a per-request deadline the server enforces. The merged
//!   payload is byte-identical to an uninterrupted session; the `done`
//!   trailer's counters go to stderr. Exits 3 if the sweep reported
//!   failed runs, 2 on exhausted retries or a server-side rejection.
//!
//! See the `gals-sweep` crate docs for the matrix format and the full JSON
//! schema, and `gals_sweep::SweepMatrix::paper_default` for what the
//! default matrix covers (the section-3.2 handshake sweep, the DVFS
//! energy/performance points, and the wakeup filter/coalescing ablations).

use std::time::{Duration, Instant};

use gals_bench::{exit_code, submit, write_atomic, BenchCli};
use gals_sweep::{
    sweep, RunStatus, Severity, SweepMatrix, SweepOptions, SweepRequest, SweepServer,
};

/// Default committed-instruction budget per run. Smaller than the figure
/// binaries' 120k: the default matrix runs 116 configurations (since the
/// latched-vs-rendezvous axis joined), and the derived tables converge
/// well before that.
const SWEEP_INSTS: u64 = 60_000;

const USAGE: &str = "sweep [--budget N | N] [--threads N] [--out PATH] \
     [--matrix FILE | --check FILE | --serve ADDR | --submit ADDR --matrix FILE] \
     [--journal PATH [--resume]] [--retries N] [--run-timeout-ms N] \
     [--cache DIR [--cache-cap N]] \
     [--max-clients N] [--max-pending-runs N] \
     [--submit-retries N] [--deadline-ms N] \
     [--chaos-panic I] [--chaos-wedge I] [--chaos-stall I:MS] \
     [--chaos-drop-after N [--chaos-drop-times C]]";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(exit_code::USAGE);
}

/// Builds the harness options from the command line; the chaos flags only
/// arm a fault plan when the binary was built with the `chaos` feature.
fn sweep_options(cli: &BenchCli, matrix: &SweepMatrix) -> SweepOptions {
    let chaos_armed =
        !(cli.chaos_panic.is_empty() && cli.chaos_wedge.is_empty() && cli.chaos_stall.is_empty());
    #[cfg(not(feature = "chaos"))]
    if chaos_armed {
        usage_exit(
            "the --chaos-* flags need a fault-injection build: \
             rebuild with --features chaos",
        );
    }
    #[cfg(feature = "chaos")]
    let faults = gals_sweep::FaultPlan {
        panic_at: cli.chaos_panic.clone(),
        wedge_at: cli.chaos_wedge.clone(),
        stall_at: cli.chaos_stall.clone(),
        ..gals_sweep::FaultPlan::default()
    };
    let _ = chaos_armed;
    let mut opts = SweepOptions::new()
        .threads(cli.threads_or_available())
        .retries(cli.retries.unwrap_or(matrix.retries))
        .resume(cli.resume);
    if let Some(ms) = cli.run_timeout_ms.or(matrix.run_timeout_ms) {
        opts = opts.run_timeout(Duration::from_millis(ms));
    }
    if let Some(path) = &cli.journal {
        opts = opts.journal(path.clone());
    }
    if let Some(dir) = &cli.cache {
        opts = opts.cache(dir.clone());
    }
    if let Some(cap) = cli.cache_cap {
        opts = opts.cache_capacity(cap);
    }
    #[cfg(feature = "chaos")]
    {
        opts = opts.faults(faults);
    }
    opts
}

/// Loads a matrix file, routing problems through [`usage_exit`]; the
/// command line's `--budget` wins over the file's.
fn load_matrix(path: &std::path::Path, cli: &BenchCli) -> SweepMatrix {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        usage_exit(&format!("cannot read matrix file {}: {e}", path.display()))
    });
    let mut matrix = SweepMatrix::from_json(&text, SWEEP_INSTS).unwrap_or_else(|e| {
        usage_exit(&format!(
            "{} is not a valid matrix file: {e}",
            path.display()
        ))
    });
    if let Some(budget) = cli.budget {
        matrix.budget = budget;
    }
    matrix
}

/// The `--check FILE` mode: static pre-flight analysis of every matrix
/// point, zero simulation. Prints one line per finding and a summary;
/// exits with [`exit_code::ANALYSIS`] on any warning-or-worse finding.
fn check_exit(path: &std::path::Path, cli: &BenchCli) -> ! {
    let matrix = load_matrix(path, cli);
    let opts = sweep_options(cli, &matrix);
    let start = Instant::now();
    let checked = gals_sweep::check_matrix(&matrix, &opts);
    let elapsed = start.elapsed();

    let mut blocking = 0usize;
    let mut total = 0usize;
    for (spec, findings) in &checked {
        for f in findings {
            total += 1;
            if f.severity >= Severity::Warning {
                blocking += 1;
            }
            println!(
                "point {:>3} ({} {} {}): {f}",
                spec.index,
                spec.benchmark.name(),
                spec.mode.label(),
                spec.dvfs.label,
            );
        }
    }
    println!(
        "check: {} points vetted in {:.0} ms — {total} finding{} ({blocking} blocking)",
        checked.len(),
        elapsed.as_secs_f64() * 1e3,
        if total == 1 { "" } else { "s" },
    );
    if blocking > 0 {
        std::process::exit(exit_code::ANALYSIS);
    }
    std::process::exit(exit_code::OK);
}

/// The `--serve ADDR` mode: bind, then answer requests until shutdown.
/// The server owns the cache (if any) across every request; per-request
/// execution policy arrives in the requests themselves.
fn serve_exit(addr: &str, cli: &BenchCli) -> ! {
    if cli.matrix.is_some() || cli.check.is_some() {
        usage_exit("--serve answers requests; pass matrices over the socket, not --matrix/--check");
    }
    if cli.journal.is_some() || cli.resume {
        usage_exit("--serve is incompatible with --journal/--resume (a journal describes one matrix; the cache is the server's memory)");
    }
    if !(cli.chaos_panic.is_empty() && cli.chaos_wedge.is_empty() && cli.chaos_stall.is_empty()) {
        usage_exit(
            "--serve is incompatible with the --chaos-panic/--chaos-wedge/--chaos-stall flags",
        );
    }
    if cli.submit_retries.is_some() || cli.deadline_ms.is_some() {
        usage_exit("--submit-retries/--deadline-ms belong to --submit, not --serve");
    }
    #[cfg(not(feature = "chaos"))]
    if cli.chaos_drop_after.is_some() || cli.chaos_drop_times.is_some() {
        usage_exit(
            "--chaos-drop-after needs a fault-injection build: rebuild with --features chaos",
        );
    }
    if cli.chaos_drop_times.is_some() && cli.chaos_drop_after.is_none() {
        usage_exit("--chaos-drop-times needs --chaos-drop-after");
    }
    let mut opts = SweepOptions::new().threads(cli.threads_or_available());
    if let Some(dir) = &cli.cache {
        opts = opts.cache(dir.clone());
    }
    if let Some(cap) = cli.cache_cap {
        opts = opts.cache_capacity(cap);
    }
    let mut server = SweepServer::bind(addr, cli.budget_or(SWEEP_INSTS), opts)
        .unwrap_or_else(|e| usage_exit(&e));
    if let Some(limit) = cli.max_clients {
        server = server.max_clients(limit);
    }
    if let Some(limit) = cli.max_pending_runs {
        server = server.max_pending_runs(limit);
    }
    #[cfg(feature = "chaos")]
    if cli.chaos_drop_after.is_some() {
        server = server.chaos(gals_sweep::ServerChaos {
            drop_after_runs: cli.chaos_drop_after,
            drop_times: cli.chaos_drop_times.unwrap_or(1),
        });
    }
    let bound = server.local_addr().unwrap_or_else(|e| usage_exit(&e));
    println!("sweep: serving on {bound}");
    match server.serve() {
        Ok(()) => {
            println!("sweep: shutdown requested, exiting");
            std::process::exit(exit_code::OK);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code::USAGE);
        }
    }
}

/// The `--submit ADDR` mode: frame the `--matrix` file as one request
/// to a running server, merge the (possibly retried) response, and
/// write the payload. The matrix is validated locally first, so a typo
/// earns a usage error here instead of a round trip.
fn submit_exit(addr: &str, cli: &BenchCli) -> ! {
    let Some(path) = &cli.matrix else {
        usage_exit("--submit sends a matrix file: add --matrix FILE");
    };
    if cli.check.is_some() || cli.journal.is_some() || cli.resume {
        usage_exit("--submit is incompatible with --check/--journal/--resume");
    }
    if cli.cache.is_some() || cli.cache_cap.is_some() {
        usage_exit("--submit is incompatible with --cache/--cache-cap (the server owns the cache)");
    }
    if cli.budget.is_some() || cli.threads.is_some() {
        usage_exit(
            "--submit is incompatible with --budget/--threads; set the matrix file's \
             own budget (execution policy is the server's)",
        );
    }
    if !(cli.chaos_panic.is_empty() && cli.chaos_wedge.is_empty() && cli.chaos_stall.is_empty())
        || cli.chaos_drop_after.is_some()
        || cli.chaos_drop_times.is_some()
    {
        usage_exit("--submit is incompatible with the --chaos-* flags");
    }
    if cli.max_clients.is_some() || cli.max_pending_runs.is_some() {
        usage_exit("--max-clients/--max-pending-runs belong to --serve, not --submit");
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        usage_exit(&format!("cannot read matrix file {}: {e}", path.display()))
    });
    // Validate locally before bothering the server — same parser, same
    // default budget, so anything we accept here the server accepts too.
    SweepMatrix::from_json(&text, SWEEP_INSTS).unwrap_or_else(|e| {
        usage_exit(&format!(
            "{} is not a valid matrix file: {e}",
            path.display()
        ))
    });
    let matrix_json: String = text
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    let mut request = submit::SubmitRequest::new(addr, matrix_json);
    request.deadline_ms = cli.deadline_ms;
    if let Some(attempts) = cli.submit_retries {
        request.attempts = attempts;
    }
    let outcome = submit::submit(&request).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(exit_code::USAGE);
    });
    match &cli.out {
        Some(out) => {
            write_atomic(out, &outcome.payload)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
            eprintln!(
                "submit: wrote {} ({} bytes)",
                out.display(),
                outcome.payload.len()
            );
        }
        None => print!("{}", outcome.payload),
    }
    eprintln!(
        "submit: {} failed, {} simulated, {} cache hits, {} misses ({} attempt{})",
        outcome.failed_count,
        outcome.simulated,
        outcome.cache_hits,
        outcome.cache_misses,
        outcome.attempts_used,
        if outcome.attempts_used == 1 { "" } else { "s" },
    );
    if outcome.failed_count > 0 {
        std::process::exit(exit_code::FAILED_RUNS);
    }
    std::process::exit(exit_code::OK);
}

fn main() {
    let cli = BenchCli::parse_or_exit(USAGE);
    if cli.serve.is_some() && cli.submit.is_some() {
        usage_exit("--serve and --submit are different ends of the socket; pick one");
    }
    if let Some(addr) = &cli.serve {
        serve_exit(addr, &cli);
    }
    if let Some(addr) = &cli.submit {
        submit_exit(addr, &cli);
    }
    if cli.max_clients.is_some()
        || cli.max_pending_runs.is_some()
        || cli.chaos_drop_after.is_some()
        || cli.chaos_drop_times.is_some()
    {
        usage_exit("--max-clients/--max-pending-runs/--chaos-drop-* need --serve");
    }
    if cli.submit_retries.is_some() || cli.deadline_ms.is_some() {
        usage_exit("--submit-retries/--deadline-ms need --submit ADDR");
    }
    if let Some(check) = &cli.check {
        if cli.matrix.is_some() {
            usage_exit(
                "--check runs nothing; pass the matrix file to --check itself, not --matrix",
            );
        }
        check_exit(check, &cli);
    }
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("SWEEP_results.json"));

    let matrix = match &cli.matrix {
        Some(path) => load_matrix(path, &cli),
        None => SweepMatrix::paper_default(cli.budget_or(SWEEP_INSTS)),
    };
    let opts = sweep_options(&cli, &matrix);
    let budget = matrix.budget;
    let specs = matrix.expand();
    println!(
        "sweep: {} runs ({} benchmarks x {} modes x {} DVFS points x {} seeds, \
         budget {budget}) on {} threads{}",
        specs.len(),
        matrix.benchmarks.len(),
        matrix.modes.len(),
        matrix.dvfs.len(),
        matrix.phase_seeds.len(),
        opts.threads,
        if opts.resume { " (resuming)" } else { "" },
    );

    let start = Instant::now();
    let cache_armed = opts.cache.is_some();
    let request = SweepRequest::new(matrix).with_options(opts);
    let response = sweep(&request).unwrap_or_else(|e| usage_exit(&e));
    let results = &response.results;
    let elapsed = start.elapsed();
    let insts: u64 = results.runs.iter().map(|r| r.committed).sum();
    println!(
        "sweep: {} runs ({insts} insts) in {:.2}s ({:.0} insts/s aggregate)",
        results.runs.len(),
        elapsed.as_secs_f64(),
        insts as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if cache_armed {
        println!(
            "cache: {} hits, {} misses, {} stored ({} simulated)",
            response.cache.hits, response.cache.misses, response.cache.stores, response.simulated,
        );
    }

    let json = results.to_json();
    write_atomic(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {} ({} bytes)", out.display(), json.len());

    let failed = results.failed_count();
    if failed > 0 {
        eprintln!("sweep: {failed} of {} runs FAILED:", results.runs.len());
        for r in &results.runs {
            match &r.status {
                RunStatus::Ok => {}
                status => eprintln!(
                    "  point {} ({} {} {}): {}",
                    r.spec.index,
                    r.spec.benchmark.name(),
                    r.spec.mode.label(),
                    r.spec.dvfs.label,
                    status.label(),
                ),
            }
        }
        if cli.journal.is_some() {
            eprintln!("  re-run with --resume to retry only the failed points");
        }
        std::process::exit(exit_code::FAILED_RUNS);
    }
    std::process::exit(exit_code::OK);
}
