//! **Figure 12**: impact of selective fetch, memory and FP clock slowdown
//! on *ijpeg*. Fetch is slowed 10% and FP 20% throughout; the memory clock
//! is swept through no slowdown (gals-00), 10% (gals-10), 20% (gals-20)
//! and 50% (gals-50). The "ideal" column is the base (synchronous) machine
//! uniformly slowed (clock + voltage) to the same performance.
//!
//! Paper shape: energy savings of 4-13% for performance drops of 15-25%;
//! slowing the *memory* clock is a poor trade for this benchmark because
//! ijpeg has "a very low proportion of memory accesses" — the ideal column
//! beats GALS, i.e. the memory-domain knob is the wrong one here.

use gals_bench::{pct, plan, run_base, run_base_scaled, run_gals_dvfs, RUN_INSTS};
use gals_workload::Benchmark;

fn main() {
    println!("Figure 12: ijpeg under fetch 1.1x, FP 1.2x, memory-clock sweep");
    println!();
    let base = run_base(Benchmark::Ijpeg, RUN_INSTS);
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "config", "performance", "energy", "ideal", "power"
    );
    for (label, mem) in [
        ("gals-00", 1.0),
        ("gals-10", 1.1),
        ("gals-20", 1.2),
        ("gals-50", 1.5),
    ] {
        let gals = run_gals_dvfs(Benchmark::Ijpeg, RUN_INSTS, plan([1.1, 1.0, 1.0, 1.2, mem]));
        let perf = gals.relative_performance(&base);
        // "Ideal": base machine uniformly slowed to the same performance
        // penalty, with the single supply scaled to match.
        let ideal = run_base_scaled(Benchmark::Ijpeg, RUN_INSTS, 1.0 / perf);
        println!(
            "{:<10} {:>12} {:>10.3} {:>10.3} {:>10.3}",
            label,
            pct(perf),
            gals.relative_energy(&base),
            ideal.relative_energy(&base),
            gals.relative_power(&base),
        );
    }
    println!();
    println!("paper: energy savings 4-13% at performance drops 15-25%; the ideal");
    println!("(uniformly slowed base) column shows slowing ijpeg's memory clock is");
    println!("not a good performance-energy tradeoff.");
}
